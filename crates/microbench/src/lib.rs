//! A Criterion-compatible micro-benchmark harness with zero
//! dependencies.
//!
//! The workspace builds hermetically (no registry access), so the
//! `crates/bench` suites use this shim instead of the real `criterion`
//! crate. It reproduces the subset of the API the suites use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`Bencher::iter_custom`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! fixed-batch measurement loop: a warm-up phase to stabilize caches
//! and frequency, then repeated timed batches from which it reports
//! median and mean per-iteration time.
//!
//! Measurements are also recorded in-process so callers (the
//! `repro-hotpath` binary) can collect results programmatically via
//! [`Criterion::take_measurements`] instead of scraping stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under the name benches import.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One completed benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` path identifying the benchmark.
    pub id: String,
    /// Median per-iteration time across timed batches.
    pub median: Duration,
    /// Mean per-iteration time across timed batches.
    pub mean: Duration,
    /// Total iterations executed during the timed phase.
    pub iterations: u64,
}

impl Measurement {
    /// Median per-iteration time in nanoseconds.
    #[must_use]
    pub fn median_ns(&self) -> f64 {
        self.median.as_secs_f64() * 1e9
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_count: usize,
    measurements: Vec<Measurement>,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honor the CLI filter argument cargo-bench forwards
        // (`cargo bench --bench x -- substring`) plus the `--bench`
        // flag cargo appends; everything else is accepted and ignored
        // so Criterion-style invocations keep working.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(800),
            sample_count: 20,
            measurements: Vec::new(),
            filter,
        }
    }
}

impl Criterion {
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    /// Run a single ungrouped benchmark (Criterion allows this directly
    /// on the top-level handle).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = id.into_benchmark_id().0;
        let samples = self.sample_count;
        let mut bencher = Bencher::new();
        self.run_one(full, samples, &mut bencher, f);
        self
    }

    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: None,
        }
    }

    /// Drain all measurements recorded so far.
    pub fn take_measurements(&mut self) -> Vec<Measurement> {
        std::mem::take(&mut self.measurements)
    }

    fn run_one(
        &mut self,
        id: String,
        sample_count: usize,
        bencher: &mut Bencher,
        f: impl FnOnce(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        bencher.warm_up_time = self.warm_up_time;
        bencher.measurement_time = self.measurement_time;
        bencher.sample_count = sample_count;
        f(bencher);
        let m = bencher.finish(id);
        println!(
            "bench {:<58} median {:>12.1} ns/iter  mean {:>12.1} ns/iter  ({} iters)",
            m.id,
            m.median_ns(),
            m.mean.as_secs_f64() * 1e9,
            m.iterations
        );
        self.measurements.push(m);
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(2));
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.warm_up_time = t;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        let mut bencher = Bencher::new();
        self.criterion.run_one(full, samples, &mut bencher, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    #[must_use]
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_owned())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Per-benchmark measurement driver, mirroring `criterion::Bencher`.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_count: usize,
    samples: Vec<Duration>,
    iterations: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(800),
            sample_count: 20,
            samples: Vec::new(),
            iterations: 0,
        }
    }

    /// Time `routine`, called repeatedly in batches. The return value
    /// is passed through `black_box` so the work cannot be elided.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also estimates the per-iteration cost so the timed
        // batches each hold roughly measurement_time / sample_count.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch_target = self.measurement_time.as_secs_f64() / self.sample_count as f64;
        let batch_iters = ((batch_target / per_iter.max(1e-9)) as u64).max(1);

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(Self::per_iter_sample(elapsed, batch_iters));
            self.iterations += batch_iters;
        }
    }

    /// Criterion's escape hatch: the routine receives an iteration
    /// count and must return the elapsed time for exactly that many
    /// iterations (allowing setup to be excluded from the timing).
    pub fn iter_custom<R>(&mut self, mut routine: R)
    where
        R: FnMut(u64) -> Duration,
    {
        // Calibrate with a single iteration.
        let once = routine(1).max(Duration::from_nanos(1));
        let batch_target = self.measurement_time.as_secs_f64() / self.sample_count as f64;
        let batch_iters = ((batch_target / once.as_secs_f64()) as u64).max(1);
        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine(batch_iters.min(16)));
        }
        for _ in 0..self.sample_count {
            let elapsed = routine(batch_iters);
            self.samples
                .push(Self::per_iter_sample(elapsed, batch_iters));
            self.iterations += batch_iters;
        }
    }

    /// Divide a batch's elapsed time by its iteration count, flooring
    /// the result at 1 ns: in release builds a trivial routine can run
    /// a whole batch inside one clock tick, and a literal-zero sample
    /// would make medians/means of real (just sub-resolution) work
    /// report as zero.
    fn per_iter_sample(elapsed: Duration, batch_iters: u64) -> Duration {
        let per = elapsed / u32::try_from(batch_iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX);
        per.max(Duration::from_nanos(1))
    }

    fn finish(&mut self, id: String) -> Measurement {
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted
            .get(sorted.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let total: Duration = sorted.iter().sum();
        let mean = if sorted.is_empty() {
            Duration::ZERO
        } else {
            total / u32::try_from(sorted.len()).unwrap_or(1)
        };
        self.samples.clear();
        Measurement {
            id,
            median,
            mean,
            iterations: std::mem::take(&mut self.iterations),
        }
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function that runs
/// each listed benchmark function against a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        c.filter = None;
        c.sample_count = 4;
        c
    }

    #[test]
    fn iter_records_a_measurement() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        // black_box the range bound so release builds cannot
        // constant-fold the body to a zero-duration iteration.
        g.bench_function("sum", |b| b.iter(|| (0..black_box(100u64)).sum::<u64>()));
        g.finish();
        let ms = c.take_measurements();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].id, "g/sum");
        assert!(ms[0].iterations > 0);
        assert!(ms[0].median > Duration::ZERO);
    }

    #[test]
    fn iter_custom_controls_timing() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.bench_function(BenchmarkId::new("fixed", 7), |b| {
            b.iter_custom(|iters| {
                Duration::from_nanos(100) * u32::try_from(iters).unwrap_or(u32::MAX)
            })
        });
        g.finish();
        let ms = c.take_measurements();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].id, "g/fixed/7");
        // Per-iteration time should come out near the synthetic 100ns.
        assert!(ms[0].median_ns() >= 50.0 && ms[0].median_ns() <= 200.0);
    }

    #[test]
    fn sub_resolution_samples_floor_at_one_nanosecond() {
        // A routine reporting zero elapsed time (sub-tick batches in
        // release builds) must still yield a nonzero median — the
        // 1 ns floor is the deflake contract for
        // `iter_records_a_measurement`.
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.bench_function("zero", |b| b.iter_custom(|_| Duration::ZERO));
        g.finish();
        let ms = c.take_measurements();
        assert_eq!(ms[0].median, Duration::from_nanos(1));
        assert!(ms[0].mean >= Duration::from_nanos(1));
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert_eq!(c.take_measurements()[0].id, "g/42");
    }
}
