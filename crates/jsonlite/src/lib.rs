//! Minimal JSON support: a [`Value`] tree, a recursive-descent parser,
//! and a writer.
//!
//! The workspace builds in hermetic environments with no registry
//! access, so run specs (`hspec run --spec file.json`) and the
//! machine-readable benchmark bundles (`repro-all`, `repro-hotpath`)
//! use this crate instead of an external JSON library. The dialect is
//! strict RFC 8259 JSON minus only the corners the repo never emits:
//! numbers parse via `f64::from_str` (covering integers, decimals and
//! exponents), strings support the standard escape set including
//! `\uXXXX` (with surrogate pairs).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Objects use a [`BTreeMap`] so serialization order is deterministic
/// (sorted by key), which keeps committed benchmark baselines diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` for absent keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Parse a JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON document"));
        }
        Ok(value)
    }

    /// Compact single-line rendering.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing
    /// newline, matching what the repro bundles commit to disk.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => out.push_str(&format_number(*n)),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(f64::from(n))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Incremental builder for `Value::Object`, replacing the ergonomics of
/// external `json!` macros at the few construction sites that need it.
#[derive(Debug, Default, Clone)]
pub struct ObjectBuilder {
    members: BTreeMap<String, Value>,
}

impl ObjectBuilder {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.members.insert(key.to_owned(), value.into());
        self
    }

    #[must_use]
    pub fn build(self) -> Value {
        Value::Object(self.members)
    }
}

/// Render a float the way the rest of the tooling expects: integers
/// without a fraction, everything else via the shortest round-trip
/// representation Rust produces.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional degradation.
        return "null".to_owned();
    }
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        format!("{}", n as i64)
    } else if n != 0.0 && !(1e-5..1e16).contains(&n.abs()) {
        // Display never uses scientific notation, so huge/tiny values
        // would render as hundreds of digits; `{:e}` is also shortest
        // round-trip.
        format!("{n:e}")
    } else {
        // `{}` on f64 is the shortest string that round-trips.
        format!("{n}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a following \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str so the
                    // sequence is valid; copy it through byte-wise.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    self.pos = start + len;
                    let slice = &self.bytes[start..self.pos];
                    out.push_str(std::str::from_utf8(slice).expect("input was valid UTF-8"));
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(Value::parse("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(
            Value::parse("\"hi\\nthere\"").unwrap(),
            Value::String("hi\nthere".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("[1] trailing").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Value::parse(r#""é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{e9} \u{1f600}"));
    }

    #[test]
    fn round_trips_through_pretty_and_compact() {
        let v = ObjectBuilder::new()
            .field("bins", 512usize)
            .field("label", "hot path")
            .field("ratio", 1.75f64)
            .field("flags", vec![true, false])
            .build();
        for rendered in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Value::parse(&rendered).unwrap(), v);
        }
    }

    #[test]
    fn object_order_is_deterministic() {
        let a = Value::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let b = Value::parse(r#"{"a": 2, "z": 1}"#).unwrap();
        assert_eq!(a.to_compact(), b.to_compact());
        assert_eq!(a.to_compact(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn numbers_render_precisely() {
        assert_eq!(Value::Number(1e300).to_compact(), "1e300");
        assert_eq!(Value::Number(3.0).to_compact(), "3");
        let n = 0.1 + 0.2;
        let round = Value::parse(&Value::Number(n).to_compact()).unwrap();
        assert_eq!(round.as_f64(), Some(n));
    }
}
