//! Regenerate `BENCH_autotune.json`: acceptance gates for the
//! measured-cost feedback loop and the resident online tuner.
//!
//! Three gates, all deterministic (virtual time and modeled cost — no
//! wall clock), so they are asserted in smoke and full runs alike:
//!
//! 1. **Adaptive vs. best fixed** — the real [`OnlineTuner`] drives
//!    the live knob block against a drifting workload model (element-
//!    mix shift → device degradation → load ramp, each phase with its
//!    own latency optimum per knob). The controller must beat the best
//!    *fixed* configuration from a dense grid by ≥ 1.15x on p95
//!    latency or throughput, and must re-settle within a bounded
//!    number of epochs after every drift.
//! 2. **Measured-cost placement** — on a mispredicted class mix (two
//!    task classes with identical static cost but 8x different true
//!    cost), blending online measured cost into placement must cut the
//!    device imbalance of true seconds by ≥ 1.2x vs. static-only cost.
//!    Uses the real [`Scheduler`] and [`CostModel`].
//! 3. **Bitwise parity** — with the tuner *and* measured-cost
//!    placement live, every Exact-mode engine ion partial stays
//!    bitwise identical to the serial reference across GPU counts and
//!    both placement policies, with zero leaked grants.
//!
//! `--smoke` shrinks the parity workload for CI; gates stay asserted.

use std::sync::mpsc::channel;
use std::sync::Arc;

use atomdb::{AtomDatabase, DatabaseConfig};
use gpu_sim::{DeviceRule, Precision};
use hybrid_sched::{
    CostKey, CostModel, Knob, OnlineTuner, SchedPolicy, Scheduler, TunerDim, TunerKnobs,
    TuningConfig,
};
use hybrid_spectral::engine::{Engine, EngineConfig, IonJob, IonOutcome};
use jsonlite::ObjectBuilder;
use quadrature::MathMode;
use rrc_spectral::{EnergyGrid, GridPoint, Integrator, SerialCalculator};

// ------------------------------------------------------------------
// Gate 1: adaptive controller vs. the best fixed configuration
// ------------------------------------------------------------------

/// One stationary stretch of the drifting workload: a base service
/// time and the knob values that minimize latency during it.
struct Phase {
    name: &'static str,
    base_s: f64,
    opt_batch: f64,
    opt_window: f64,
    opt_ranks: f64,
    epochs: usize,
}

/// The drift schedule: each phase moves the optimum of at least one
/// knob, so no fixed configuration is good everywhere.
fn drift_schedule() -> Vec<Phase> {
    vec![
        Phase {
            // Many tiny ions: coalescing wide batches amortizes
            // per-launch overhead; few CPU ranks are needed.
            name: "element_mix_shift",
            base_s: 1.0,
            opt_batch: 24.0,
            opt_window: 6.0,
            opt_ranks: 2.0,
            epochs: 80,
        },
        Phase {
            // A degraded device: shallow windows bound the blast
            // radius and work shifts back to CPU ranks.
            name: "device_degradation",
            base_s: 1.6,
            opt_batch: 8.0,
            opt_window: 2.0,
            opt_ranks: 6.0,
            epochs: 80,
        },
        Phase {
            // Load ramp: widest batches and windows win again.
            name: "load_ramp",
            base_s: 2.4,
            opt_batch: 32.0,
            opt_window: 8.0,
            opt_ranks: 4.0,
            epochs: 80,
        },
    ]
}

/// Unimodal penalty for running knob value `x` away from the phase
/// optimum: `1` at the optimum, symmetric in log-space.
fn bowl(x: f64, opt: f64) -> f64 {
    0.5 * (x / opt + opt / x)
}

/// The modeled per-request latency of one epoch under `(batch,
/// window, ranks)` during `phase`.
fn epoch_latency(phase: &Phase, batch: f64, window: f64, ranks: f64) -> f64 {
    phase.base_s
        * bowl(batch, phase.opt_batch)
        * bowl(window, phase.opt_window)
        * bowl(ranks, phase.opt_ranks)
}

fn p95(latencies: &[f64]) -> f64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64 * 0.95).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn throughput(latencies: &[f64]) -> f64 {
    latencies.iter().map(|l| 1.0 / l).sum()
}

struct PhaseConvergence {
    name: &'static str,
    epochs_to_settle: Option<usize>,
}

/// Run the real controller over the drift schedule; returns the
/// per-epoch latencies it achieved and when it settled in each phase.
fn run_adaptive(tuning: TuningConfig) -> (Vec<f64>, Vec<PhaseConvergence>) {
    let knobs = Arc::new(TunerKnobs::new(0, 4, 0, 8, 4));
    let tuner = OnlineTuner::new(Arc::clone(&knobs), tuning.patience);
    tuner.add_dim(TunerDim {
        knob: Knob::MaxBatch,
        min: 1,
        max: 32,
        step: 4,
    });
    tuner.add_dim(TunerDim {
        knob: Knob::AsyncWindow,
        min: 1,
        max: 8,
        step: 1,
    });
    tuner.add_dim(TunerDim {
        knob: Knob::ActiveRanks,
        min: 1,
        max: 8,
        step: 1,
    });
    let mut latencies = Vec::new();
    let mut convergence = Vec::new();
    for phase in drift_schedule() {
        let mut settled_at = None;
        for epoch in 0..phase.epochs {
            let lat = epoch_latency(
                &phase,
                knobs.max_batch() as f64,
                knobs.async_window() as f64,
                knobs.active_ranks() as f64,
            );
            latencies.push(lat);
            tuner.observe_epoch(lat);
            if settled_at.is_none() && tuner.settled() {
                settled_at = Some(epoch + 1);
            }
        }
        convergence.push(PhaseConvergence {
            name: phase.name,
            epochs_to_settle: settled_at,
        });
    }
    (latencies, convergence)
}

/// Evaluate one frozen configuration over the same drift schedule.
fn run_fixed(batch: f64, window: f64, ranks: f64) -> Vec<f64> {
    drift_schedule()
        .iter()
        .flat_map(|phase| {
            std::iter::repeat_n(epoch_latency(phase, batch, window, ranks), phase.epochs)
        })
        .collect()
}

// ------------------------------------------------------------------
// Gate 2: measured-cost placement on a mispredicted class mix
// ------------------------------------------------------------------

/// Drive alternating heavy/light waves through the real scheduler and
/// return the imbalance (max/min) of *true* seconds across 2 devices.
/// `blend` = `None` places on raw static cost; `Some(model)` places on
/// the blended estimate and feeds each settled task's measured
/// seconds back in — exactly the engine's pump-loop protocol.
fn placement_imbalance(blend: Option<&CostModel>, waves: usize, tasks_per_wave: usize) -> f64 {
    // Two classes with the *same* static cost: the static model cannot
    // tell them apart, but the heavy class truly costs 8x more.
    let heavy = (CostKey::bucketed(2, 1, 16), 10u64, 8.0e-3f64);
    let light = (CostKey::bucketed(20, 1, 16), 10u64, 1.0e-3f64);
    let scheduler = Scheduler::new(2, tasks_per_wave as u64);
    let mut device_true_s = [0.0f64; 2];
    for _ in 0..waves {
        let mut in_flight = Vec::new();
        for t in 0..tasks_per_wave {
            let (key, static_units, true_s) = if t % 2 == 0 { &heavy } else { &light };
            let cost = blend.map_or(*static_units, |m| m.blended(key, *static_units));
            let grant = scheduler
                .alloc_cost(cost)
                .expect("queue bound sized for the whole wave");
            device_true_s[grant.device.0] += true_s;
            in_flight.push((grant, *key, *static_units, *true_s));
        }
        for (grant, key, static_units, true_s) in in_flight {
            if let Some(model) = blend {
                model.observe(&key, static_units, true_s);
            }
            scheduler.free(grant);
        }
    }
    assert_eq!(scheduler.in_flight(), 0, "placement wave leaked grants");
    let hi = device_true_s[0].max(device_true_s[1]);
    let lo = device_true_s[0].min(device_true_s[1]).max(1e-12);
    hi / lo
}

// ------------------------------------------------------------------
// Gate 3: bitwise parity with the tuner and measured cost live
// ------------------------------------------------------------------

fn tuned_engine_config(db: &Arc<AtomDatabase>, gpus: usize, policy: SchedPolicy) -> EngineConfig {
    EngineConfig {
        db: Arc::clone(db),
        workers: 3,
        gpus,
        max_queue_len: 4,
        policy,
        gpu_rule: DeviceRule::Simpson { panels: 64 },
        gpu_precision: Precision::Double,
        cpu_integrator: Integrator::Simpson { panels: 64 },
        fused: true,
        async_window: 2,
        queue_depth: 8,
        deterministic_kernel: true,
        math: MathMode::Exact,
        pack_threshold: 8,
        pack_max: 8,
        resilience: hybrid_spectral::ResilienceConfig::default(),
        // Tiny epochs so the controller provably moves during the run.
        tuning: TuningConfig {
            epoch_tasks: 4,
            ..TuningConfig::enabled()
        },
    }
}

fn parity_point() -> GridPoint {
    GridPoint {
        temperature_k: 1.0e7,
        density_cm3: 1.0,
        time_s: 0.0,
        index: 0,
    }
}

/// Run `waves` full-table waves through a tuned engine and check every
/// partial bitwise against the serial reference. Returns (tuner
/// epochs, cost observations) so the caller can assert both loops ran.
fn parity_run(
    db: &Arc<AtomDatabase>,
    grid: &EnergyGrid,
    reference: &[Vec<f64>],
    gpus: usize,
    policy: SchedPolicy,
    waves: u64,
) -> (u64, u64) {
    let engine = Engine::start(tuned_engine_config(db, gpus, policy));
    let bins = Arc::new(grid.bin_pairs());
    let (tx, rx) = channel();
    let mut submitted = 0u64;
    for wave in 0..waves {
        for ion_index in 0..db.ions().len() {
            let levels = db.levels_by_index(ion_index).len();
            engine
                .submit(IonJob {
                    ion_index,
                    level_range: 0..levels,
                    point: parity_point(),
                    grid: grid.clone(),
                    bins: Arc::clone(&bins),
                    tag: wave,
                    deadline: f64::INFINITY,
                    reply: tx.clone(),
                })
                .ok()
                .expect("engine accepts the parity workload");
            submitted += 1;
        }
    }
    drop(tx);
    let outcomes: Vec<IonOutcome> = rx.iter().collect();
    assert_eq!(outcomes.len() as u64, submitted, "every task must reply");
    for outcome in &outcomes {
        let want = &reference[outcome.ion_index];
        assert_eq!(outcome.partial.len(), want.len());
        for (bin, (&a, &r)) in outcome.partial.iter().zip(want).enumerate() {
            assert_eq!(
                a.to_bits(),
                r.to_bits(),
                "gpus={gpus} policy={policy:?} ion {} bin {bin}",
                outcome.ion_index
            );
        }
    }
    let snapshot = engine.scheduler_snapshot();
    let tuner_epochs = snapshot.tuner.as_ref().map_or(0, |t| t.epoch);
    let observations = snapshot.cost_observations;
    let report = engine.shutdown();
    assert_eq!(report.leaked_grants, 0, "tuned engine leaked a grant");
    (tuner_epochs, observations)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // ------------------------------------------- gate 1: adaptive vs fixed
    eprintln!("driving the online tuner over the drift schedule ...");
    let tuning = TuningConfig::enabled();
    let (adaptive_lats, convergence) = run_adaptive(tuning);
    let adaptive_p95 = p95(&adaptive_lats);
    let adaptive_tp = throughput(&adaptive_lats);

    let mut best_fixed: Option<(f64, f64, f64, f64, f64)> = None; // (b, w, r, p95, tp)
    for &b in &[1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0] {
        for &w in &[1.0, 2.0, 4.0, 6.0, 8.0] {
            for &r in &[1.0, 2.0, 4.0, 6.0, 8.0] {
                let lats = run_fixed(b, w, r);
                let tp = throughput(&lats);
                if best_fixed.is_none_or(|(.., best_tp)| tp > best_tp) {
                    best_fixed = Some((b, w, r, p95(&lats), tp));
                }
            }
        }
    }
    let (fixed_b, fixed_w, fixed_r, fixed_p95, fixed_tp) = best_fixed.expect("grid is non-empty");
    let tp_ratio = adaptive_tp / fixed_tp;
    let p95_ratio = fixed_p95 / adaptive_p95;
    let adaptive_pass = tp_ratio >= 1.15 || p95_ratio >= 1.15;
    assert!(
        adaptive_pass,
        "adaptive gate: throughput ratio {tp_ratio:.3}x, p95 ratio {p95_ratio:.3}x (< 1.15x)"
    );

    // Bounded-epoch re-convergence after every drift.
    let settle_bound = 60usize;
    let mut convergence_pass = true;
    for phase in &convergence {
        let ok = phase.epochs_to_settle.is_some_and(|e| e <= settle_bound);
        convergence_pass &= ok;
        assert!(
            ok,
            "convergence gate: phase {} settled at {:?} (bound {settle_bound})",
            phase.name, phase.epochs_to_settle
        );
    }

    // -------------------------------------- gate 2: measured-cost placement
    eprintln!("comparing static vs blended placement on the mispredicted mix ...");
    let placement_waves = 6;
    let tasks_per_wave = 64;
    let static_imbalance = placement_imbalance(None, placement_waves, tasks_per_wave);
    let model = CostModel::new();
    let blended_imbalance = placement_imbalance(Some(&model), placement_waves, tasks_per_wave);
    let imbalance_ratio = static_imbalance / blended_imbalance.max(1e-12);
    let measured_pass = imbalance_ratio >= 1.2;
    assert!(
        measured_pass,
        "measured-cost gate: imbalance improved only {imbalance_ratio:.2}x \
         (static {static_imbalance:.2}, blended {blended_imbalance:.2})"
    );

    // ------------------------------------------------ gate 3: bitwise parity
    eprintln!("checking Exact-mode bitwise parity with the tuner live ...");
    let db = Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: if smoke { 5 } else { 8 },
        ..DatabaseConfig::default()
    }));
    let grid = EnergyGrid::linear(50.0, 2000.0, if smoke { 32 } else { 64 });
    let serial = SerialCalculator::new(
        (*db).clone(),
        grid.clone(),
        Integrator::Simpson { panels: 64 },
    );
    let reference: Vec<Vec<f64>> = (0..db.ions().len())
        .map(|i| serial.ion_spectrum(i, &parity_point()).bins().to_vec())
        .collect();
    let gpu_counts: &[usize] = if smoke { &[2] } else { &[0, 1, 2] };
    let waves = if smoke { 3 } else { 4 };
    let mut parity_runs = 0u64;
    let mut max_tuner_epochs = 0u64;
    let mut max_observations = 0u64;
    for &gpus in gpu_counts {
        for policy in [SchedPolicy::CostAware, SchedPolicy::PaperCount] {
            let (epochs, observations) = parity_run(&db, &grid, &reference, gpus, policy, waves);
            max_tuner_epochs = max_tuner_epochs.max(epochs);
            max_observations = max_observations.max(observations);
            parity_runs += 1;
        }
    }
    assert!(max_tuner_epochs > 0, "tuner never saw an epoch");
    assert!(
        max_observations > 0,
        "no measured-cost observation reached the model"
    );
    let parity_pass = true; // asserted bitwise above

    // ---------------------------------------------------------------- report
    let pass = adaptive_pass && convergence_pass && measured_pass && parity_pass;
    let convergence_rows = jsonlite::Value::Array(
        convergence
            .iter()
            .map(|phase| {
                ObjectBuilder::new()
                    .field("phase", phase.name)
                    .field(
                        "epochs_to_settle",
                        phase.epochs_to_settle.map_or(-1.0, |e| e as f64),
                    )
                    .field("bound", settle_bound)
                    .field(
                        "pass",
                        phase.epochs_to_settle.is_some_and(|e| e <= settle_bound),
                    )
                    .build()
            })
            .collect(),
    );
    let bundle = ObjectBuilder::new()
        .field("smoke", smoke)
        .field(
            "adaptive",
            ObjectBuilder::new()
                .field("epochs", adaptive_lats.len())
                .field("patience", tuning.patience)
                .field("adaptive_p95_s", adaptive_p95)
                .field("adaptive_throughput", adaptive_tp)
                .field(
                    "best_fixed",
                    ObjectBuilder::new()
                        .field("max_batch", fixed_b)
                        .field("async_window", fixed_w)
                        .field("active_ranks", fixed_r)
                        .field("p95_s", fixed_p95)
                        .field("throughput", fixed_tp)
                        .build(),
                )
                .field("throughput_ratio", tp_ratio)
                .field("p95_ratio", p95_ratio)
                .field("gate", 1.15)
                .field("pass", adaptive_pass)
                .build(),
        )
        .field("convergence", convergence_rows)
        .field(
            "measured_cost",
            ObjectBuilder::new()
                .field("waves", placement_waves as u64)
                .field("static_imbalance", static_imbalance)
                .field("blended_imbalance", blended_imbalance)
                .field("improvement", imbalance_ratio)
                .field("gate", 1.2)
                .field("pass", measured_pass)
                .build(),
        )
        .field(
            "parity",
            ObjectBuilder::new()
                .field("bitwise", true)
                .field("runs", parity_runs)
                .field("tuner_epochs", max_tuner_epochs)
                .field("cost_observations", max_observations)
                .field("leaked_grants", 0u64)
                .field("pass", parity_pass)
                .build(),
        )
        .field("pass", pass)
        .build();

    let path = "BENCH_autotune.json";
    std::fs::write(path, bundle.to_pretty()).expect("write results");
    println!("wrote {path}");
    println!(
        "adaptive vs best fixed ({fixed_b:.0}/{fixed_w:.0}/{fixed_r:.0}): \
         throughput {tp_ratio:.2}x, p95 {p95_ratio:.2}x"
    );
    println!(
        "measured-cost placement imbalance: static {static_imbalance:.2} -> \
         blended {blended_imbalance:.2} ({imbalance_ratio:.2}x)"
    );
    println!("parity: {parity_runs} tuned runs bitwise-identical to serial");
}
