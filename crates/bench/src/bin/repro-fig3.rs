//! Regenerate paper Fig. 3: speedup over serial APEC vs GPU count, for
//! Ion vs Level task granularity, plus the §IV baselines.

use hybrid_spectral::experiments::granularity;
use spectral_bench::{f1, paper_inputs, pct, render_table};

fn main() {
    let (workload, calib) = paper_inputs();
    let report = granularity::run(&workload, &calib);

    println!("== Fig. 3: speedup on different task granularities ==\n");
    println!(
        "serial baseline: {} s for 24 grid points ({} ion tasks)",
        f1(report.serial_s),
        workload.total_tasks(hybrid_spectral::Granularity::Ion)
    );
    println!(
        "24-rank MPI-only: {} s -> speedup {} (paper: 13.5)\n",
        f1(report.mpi_s),
        f1(report.mpi_speedup)
    );

    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.gpus.to_string(),
                f1(r.ion_speedup),
                f1(r.paper_ion),
                f1(r.level_speedup),
                f1(r.paper_level),
                pct(r.ion_gpu_ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "GPUs",
                "Ion (ours)",
                "Ion (paper)",
                "Level (ours)",
                "Level (paper)",
                "Ion GPU ratio",
            ],
            &rows
        )
    );
    println!("(1- and 4-GPU Ion/Level values are calibration anchors; 2- and 3-GPU");
    println!(" values and all ratios are emergent from the discrete-event replica.)");
}
