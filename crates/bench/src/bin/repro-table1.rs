//! Regenerate paper Table I: the task distribution between GPU and CPU
//! with different computational complexities (2 GPUs, queue length 6).

use hybrid_spectral::experiments::romberg_load::{self, PAPER_TABLE1};
use spectral_bench::{paper_inputs, pct, render_table};

fn main() {
    let (workload, calib) = paper_inputs();
    let report = romberg_load::run(&workload, &calib);

    println!("== Table I: task distribution ratio on GPU vs computation amount ==\n");
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .zip(PAPER_TABLE1.iter())
        .map(|(r, &(_, p_tasks, p_ratio, p_ge3))| {
            vec![
                format!("2^{}", r.k),
                r.tasks_on_gpu.to_string(),
                p_tasks.to_string(),
                pct(r.gpu_ratio_percent),
                pct(p_ratio),
                pct(r.load_ge3_percent),
                pct(p_ge3),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "work/task",
                "GPU tasks (ours)",
                "GPU tasks (paper)",
                "GPU ratio (ours)",
                "GPU ratio (paper)",
                "load>=3 (ours)",
                "load>=3 (paper)",
            ],
            &rows
        )
    );
    println!("(our totals differ from the paper's — their Table I run used a smaller");
    println!(" task census — so compare the ratio columns: the GPU share collapses as");
    println!(" per-task complexity grows, because the CPU fallback stays QAGS-priced.)");
}
