//! Bonus figure: the queue-depth *trajectory* of GPU device 0 over the
//! run — the time-resolved view behind Fig. 6's aggregate histogram,
//! rendered as an ASCII strip per Romberg complexity.

use hybrid_spectral::desmodel::{self, spectral_config};
use hybrid_spectral::Granularity;
use spectral_bench::paper_inputs;

fn main() {
    let (workload, calib) = paper_inputs();
    println!("== Device-0 queue depth over time (2 GPUs, qlen 6) ==\n");
    for k in [7u32, 13] {
        let report = desmodel::run(spectral_config(
            &workload,
            &calib,
            Granularity::Ion,
            2,
            6,
            Some(k),
        ));
        let samples = report.device0_timeline.resample(0.0, report.makespan_s, 64);
        let glyphs = [' ', '.', ':', '-', '=', '#', '@'];
        let strip: String = samples
            .iter()
            .map(|&(_, v)| glyphs[(v as usize).min(6)])
            .collect();
        println!(
            "k = {k:2} (makespan {:7.1} s)  |{strip}|",
            report.makespan_s
        );
    }
    println!("\nglyph = load level 0..6 ( ' '=idle, '@'=full queue ); heavier tasks");
    println!("pin the queue at its bound for most of the run, as Fig. 6 aggregates.");
}
