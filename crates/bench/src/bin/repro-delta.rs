//! Regenerate `BENCH_delta.json`: acceptance gates for device-resident
//! spectra with delta recalculation.
//!
//! Four legs, all on the deterministic single-chunk kernel with the
//! same Simpson-64 rule on both paths:
//!
//! 1. **Tolerance-0 parity matrix** — a short sweep at tolerance 0
//!    across {0, 1, 2} GPUs × both scheduling policies. Gate: every
//!    `recalc` result is **bitwise identical** to a fresh full compute
//!    of the same point, and no trial leaks a device grant.
//! 2. **Drift sweep** — many small temperature steps (ΔT/T = 1e-15) at
//!    the default 1e-12 tolerance. Gates: the delta path actually
//!    reuses resident partials, and the swept spectrum's relative
//!    deviation from a fresh full compute stays ≤ the tolerance.
//! 3. **Speedup** — median per-step latency of the delta sweep vs the
//!    same sweep recomputed from scratch every step. Gate: ≥ 5×.
//! 4. **Device loss** — both devices are force-lost mid-sweep. Gates:
//!    the next `recalc` reports invalidation + full recompute, its
//!    bits match a fault-free reference, and nothing leaks.
//!
//! `--smoke` shrinks the database and the sweeps for CI; every gate
//! stays asserted and the JSON is still written.

use std::sync::Arc;
use std::time::Instant;

use atomdb::{AtomDatabase, DatabaseConfig};
use gpu_sim::{DeviceRule, Precision};
use hybrid_sched::SchedPolicy;
use hybrid_spectral::engine::{Engine, EngineConfig};
use hybrid_spectral::{ResidentSpectrum, ResilienceConfig};
use jsonlite::ObjectBuilder;
use quadrature::MathMode;
use rrc_spectral::{EnergyGrid, GridPoint, Integrator};

fn engine_config(db: &Arc<AtomDatabase>, gpus: usize, policy: SchedPolicy) -> EngineConfig {
    EngineConfig {
        db: Arc::clone(db),
        workers: 3,
        gpus,
        max_queue_len: 4,
        policy,
        gpu_rule: DeviceRule::Simpson { panels: 64 },
        gpu_precision: Precision::Double,
        cpu_integrator: Integrator::Simpson { panels: 64 },
        fused: true,
        async_window: 1,
        queue_depth: 8,
        deterministic_kernel: true,
        math: MathMode::Exact,
        pack_threshold: 0,
        pack_max: 8,
        resilience: ResilienceConfig::default(),
        tuning: hybrid_sched::TuningConfig::default(),
    }
}

fn point_at(temperature_k: f64, index: usize) -> GridPoint {
    GridPoint {
        temperature_k,
        density_cm3: 1.0,
        time_s: 0.0,
        index,
    }
}

fn bitwise_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Largest per-bin relative deviation between two spectra.
fn max_rel_deviation(got: &[f64], want: &[f64]) -> f64 {
    got.iter()
        .zip(want)
        .map(|(g, w)| ((g - w) / w.abs().max(f64::MIN_POSITIVE)).abs())
        .fold(0.0, f64::max)
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (max_z, bins, steps): (u8, usize, usize) = if smoke { (5, 32, 10) } else { (8, 64, 24) };
    let db = Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z,
        ..DatabaseConfig::default()
    }));
    let grid = EnergyGrid::linear(50.0, 2000.0, bins);
    let base_t = 1.0e7;

    // -- 1. tolerance-0 parity matrix ---------------------------------------
    eprintln!("tolerance-0 parity across gpus x policy ...");
    let parity_points = [base_t, base_t * (1.0 + 1e-15), 1.4e7];
    let mut parity_trials: Vec<jsonlite::Value> = Vec::new();
    let mut parity_pass = true;
    for gpus in [0usize, 1, 2] {
        for policy in [SchedPolicy::CostAware, SchedPolicy::PaperCount] {
            let engine = Engine::start(engine_config(&db, gpus, policy));
            let mut trial_bitwise = true;
            {
                let mut resident = ResidentSpectrum::new(&engine, grid.clone()).with_tolerance(0.0);
                let mut fresh = ResidentSpectrum::new(&engine, grid.clone());
                for (i, &t) in parity_points.iter().enumerate() {
                    let point = point_at(t, i);
                    resident.recalc(&point).expect("recalc");
                    fresh.compute(&point).expect("full compute");
                    let equal = bitwise_equal(
                        resident.spectrum().expect("swept"),
                        fresh.spectrum().expect("computed"),
                    );
                    trial_bitwise &= equal;
                }
            }
            let report = engine.shutdown();
            let pass = trial_bitwise && report.leaked_grants == 0;
            parity_pass &= pass;
            eprintln!(
                "  gpus={gpus} policy={policy:?}: bitwise {trial_bitwise}  leaked {}",
                report.leaked_grants
            );
            assert!(pass, "tolerance-0 parity: gpus={gpus} policy={policy:?}");
            parity_trials.push(
                ObjectBuilder::new()
                    .field("gpus", gpus as u64)
                    .field("policy", format!("{policy:?}"))
                    .field("bitwise", trial_bitwise)
                    .field("leaked_grants", report.leaked_grants)
                    .field("pass", pass)
                    .build(),
            );
        }
    }

    // -- 2 + 3. drift sweep: accuracy and per-step latency ------------------
    eprintln!("drift sweep ({steps} steps of dT/T = 1e-15) ...");
    let drift = 1e-15;
    let engine = Engine::start(engine_config(&db, 2, SchedPolicy::CostAware));
    let mut delta_ms: Vec<f64> = Vec::new();
    let mut full_ms: Vec<f64> = Vec::new();
    let (reused_total, recomputed_total, deviation);
    {
        let mut resident = ResidentSpectrum::new(&engine, grid.clone());
        let mut fresh = ResidentSpectrum::new(&engine, grid.clone());
        // Cold fill outside the timed sweep: the gate compares steady
        // sweep steps, not first-touch cost.
        resident.compute(&point_at(base_t, 0)).expect("cold fill");
        fresh.compute(&point_at(base_t, 0)).expect("cold fill");
        let mut reused = 0u64;
        let mut recomputed = 0u64;
        for step in 1..=steps {
            let point = point_at(base_t * (1.0 + drift * step as f64), step);
            let started = Instant::now();
            let summary = resident.recalc(&point).expect("delta step");
            delta_ms.push(started.elapsed().as_secs_f64() * 1e3);
            reused += summary.reused as u64;
            recomputed += summary.recomputed as u64;
            let started = Instant::now();
            fresh.compute(&point).expect("full step");
            full_ms.push(started.elapsed().as_secs_f64() * 1e3);
        }
        deviation = max_rel_deviation(
            resident.spectrum().expect("swept"),
            fresh.spectrum().expect("computed"),
        );
        (reused_total, recomputed_total) = (reused, recomputed);
    }
    let sweep_report = engine.shutdown();
    let median_delta = median_ms(&mut delta_ms);
    let median_full = median_ms(&mut full_ms);
    let speedup = median_full / median_delta.max(1e-6);
    let tolerance = resident_tolerance();
    let accuracy_pass = deviation <= tolerance && reused_total > 0;
    let speedup_pass = speedup >= 5.0;
    let sweep_leaks = sweep_report.leaked_grants;
    eprintln!(
        "  reused {reused_total} / recomputed {recomputed_total} ion-steps; \
         deviation {deviation:.3e} (tolerance {tolerance:.0e})"
    );
    eprintln!(
        "  median step: delta {median_delta:.3} ms vs full {median_full:.3} ms \
         ({speedup:.1}x)"
    );
    assert!(
        accuracy_pass,
        "drift sweep: deviation {deviation:.3e} > {tolerance:.0e} or nothing reused"
    );
    assert!(speedup_pass, "delta speedup {speedup:.1}x below 5x");
    assert_eq!(sweep_leaks, 0, "drift sweep leaked grants");

    // -- 4. device loss: invalidate + recover -------------------------------
    eprintln!("device loss mid-sweep ...");
    let engine = Engine::start(engine_config(&db, 2, SchedPolicy::CostAware));
    let reference = Engine::start(engine_config(&db, 0, SchedPolicy::CostAware));
    let (loss_invalidated, loss_full, loss_bitwise);
    {
        let mut resident = ResidentSpectrum::new(&engine, grid.clone());
        resident.compute(&point_at(base_t, 0)).expect("warm");
        for d in 0..2 {
            engine.device_faults(d).expect("device exists").force_lose();
        }
        let after = point_at(base_t * 1.01, 1);
        let summary = resident.recalc(&after).expect("recovery recalc");
        loss_invalidated = summary.invalidated;
        loss_full = summary.full;
        let mut want = ResidentSpectrum::new(&reference, grid.clone());
        want.compute(&after).expect("reference");
        loss_bitwise = bitwise_equal(
            resident.spectrum().expect("recovered"),
            want.spectrum().expect("reference"),
        );
    }
    let loss_report = engine.shutdown();
    let reference_report = reference.shutdown();
    let loss_pass = loss_invalidated
        && loss_full
        && loss_bitwise
        && loss_report.resident_invalidations >= 1
        && loss_report.leaked_grants == 0
        && reference_report.leaked_grants == 0;
    eprintln!(
        "  invalidated {loss_invalidated}  full {loss_full}  bitwise {loss_bitwise}  \
         leaked {}",
        loss_report.leaked_grants
    );
    assert!(loss_pass, "device-loss invalidation/recovery gate");

    // -- bundle -------------------------------------------------------------
    let bundle = ObjectBuilder::new()
        .field("smoke", smoke)
        .field(
            "workload",
            ObjectBuilder::new()
                .field("max_z", u64::from(max_z))
                .field("bins", bins as u64)
                .field("ions", db.ions().len() as u64)
                .field("sweep_steps", steps as u64)
                .field("drift_per_step", drift)
                .field("tolerance", tolerance)
                .field(
                    "kernel",
                    "deterministic single-chunk, Simpson 64 both paths",
                )
                .build(),
        )
        .field("tolerance_zero_parity", parity_trials)
        .field(
            "drift_sweep",
            ObjectBuilder::new()
                .field("reused_ion_steps", reused_total)
                .field("recomputed_ion_steps", recomputed_total)
                .field("max_rel_deviation", deviation)
                .field("median_delta_step_ms", median_delta)
                .field("median_full_step_ms", median_full)
                .field("speedup", speedup)
                .field("delta_recalcs", sweep_report.resident_delta_recalcs)
                .field("full_recomputes", sweep_report.resident_full_recomputes)
                .field("resident_bytes_peak", sweep_report.resident_bytes_peak)
                .field("leaked_grants", sweep_leaks)
                .build(),
        )
        .field(
            "device_loss",
            ObjectBuilder::new()
                .field("invalidated", loss_invalidated)
                .field("full_recompute", loss_full)
                .field("bitwise_recovery", loss_bitwise)
                .field("invalidations", loss_report.resident_invalidations)
                .field("leaked_grants", loss_report.leaked_grants)
                .field("pass", loss_pass)
                .build(),
        )
        .field(
            "gates",
            ObjectBuilder::new()
                .field(
                    "tolerance_zero_bitwise",
                    ObjectBuilder::new().field("pass", parity_pass).build(),
                )
                .field(
                    "deviation_within_tolerance",
                    ObjectBuilder::new()
                        .field("deviation", deviation)
                        .field("tolerance", tolerance)
                        .field("pass", accuracy_pass)
                        .build(),
                )
                .field(
                    "median_step_speedup_5x",
                    ObjectBuilder::new()
                        .field("speedup", speedup)
                        .field("pass", speedup_pass)
                        .build(),
                )
                .field(
                    "device_loss_recovery",
                    ObjectBuilder::new().field("pass", loss_pass).build(),
                )
                .field(
                    "zero_leaked_grants",
                    ObjectBuilder::new()
                        .field("pass", sweep_leaks == 0 && loss_pass)
                        .build(),
                )
                .build(),
        )
        .build();

    let path = "BENCH_delta.json";
    std::fs::write(path, bundle.to_pretty()).expect("write results");
    println!("wrote {path}");
    println!(
        "delta acceptance: bitwise at tolerance 0 across 6 configs, deviation \
         {deviation:.2e} <= {tolerance:.0e}, median step speedup {speedup:.1}x (>= 5x), \
         loss invalidation + bitwise recovery, zero leaked grants"
    );
}

/// The default tolerance the sweep runs at (mirrors
/// [`hybrid_spectral::resident::DEFAULT_TOLERANCE`]).
fn resident_tolerance() -> f64 {
    hybrid_spectral::resident::DEFAULT_TOLERANCE
}
