//! Strong scaling over MPI ranks: the companion sweep to the paper's
//! "13.5x at 24 ranks" quote, for the pure-MPI and the hybrid versions.

use hybrid_spectral::experiments::rank_scaling;
use spectral_bench::{f1, f2, paper_inputs, render_table};

fn main() {
    let (workload, calib) = paper_inputs();
    let report = rank_scaling::run(&workload, &calib);

    println!("== Strong scaling over MPI ranks (2 GPUs for the hybrid column) ==\n");
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.ranks.to_string(),
                f2(r.mpi_speedup),
                f2(r.mpi_model),
                f1(r.hybrid_speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["ranks", "MPI speedup", "contention model", "hybrid speedup"],
            &rows
        )
    );
    println!("(the MPI column must track k/(1 + alpha(k-1)) with alpha fitted to the");
    println!(" paper's 13.5x anchor; the hybrid column saturates at device capacity.)");
}
