//! Run the design-choice ablations (tie-break rule, asynchronous
//! submission window, Hyper-Q concurrency) and print the comparison.

use hybrid_spectral::experiments::ablation;
use spectral_bench::{f1, paper_inputs, pct, render_table};

fn main() {
    let (workload, calib) = paper_inputs();
    let report = ablation::run(&workload, &calib);

    let table = |title: &str, rows: &[ablation::AblationRow]| {
        println!("== {title} ==\n");
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    f1(r.total_s),
                    pct(r.gpu_ratio_percent),
                    format!("{:.3}", r.history_imbalance),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["variant", "total (s)", "GPU share", "history max/min"],
                &body
            )
        );
    };

    table(
        "Ablation 1: tie-break rule (2 GPUs, qlen 6)",
        &report.tie_break,
    );
    table(
        "Ablation 2: submission window on heavy k=13 tasks (paper SV future work)",
        &report.async_window,
    );
    table(
        "Ablation 3: per-device active tasks (Fermi=1 vs Hyper-Q)",
        &report.hyper_q,
    );
    table(
        "Ablation 4: count-based vs work-aware selection (paper SV ongoing work; k=11 tasks)",
        &report.work_aware,
    );
}
