//! Regenerate `BENCH_chaos.json`: acceptance gates for the fault
//! ladder — deterministic fault injection, bounded retries, health
//! quarantine, and graceful degradation to the CPU path.
//!
//! Four trials, every one against the same workload (every ion of a
//! reduced database, several waves, deterministic single-chunk
//! kernel):
//!
//! 1. **Baseline** — fault-free run; its sorted outcome bits are the
//!    reference every chaos trial must reproduce exactly.
//! 2. **Rate sweep** — seeded mixed fault plans (launch errors, kernel
//!    panics, DMA errors, stalls) at rates up to 30%. Gates per rate:
//!    100% completion, bitwise parity with the baseline, zero leaked
//!    grants, per-task attempts within the configured retry bound.
//! 3. **Sticky loss** — one of two devices dies for good mid-run.
//!    Gates: 100% completion, parity, the lost device ends
//!    quarantined.
//! 4. **Quarantine cycle** — a flapping device fails its first
//!    launches, quarantines, and must earn its way back through
//!    probation to `Healthy`. Gate: at least one full
//!    `Quarantined → Probation → Healthy` cycle observed.
//!
//! `--smoke` shrinks the workload and the sweep for CI; every gate
//! stays asserted and the JSON is still written.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

use atomdb::{AtomDatabase, DatabaseConfig};
use gpu_sim::{DeviceRule, FaultKind, FaultOp, FaultPlan, Precision};
use hybrid_sched::{HealthConfig, HealthState, SchedPolicy};
use hybrid_spectral::engine::{Engine, EngineConfig, EngineReport, IonJob, IonOutcome};
use hybrid_spectral::ResilienceConfig;
use jsonlite::ObjectBuilder;
use quadrature::MathMode;
use rrc_spectral::{EnergyGrid, GridPoint, Integrator};

fn point() -> GridPoint {
    GridPoint {
        temperature_k: 1.0e7,
        density_cm3: 1.0,
        time_s: 0.0,
        index: 0,
    }
}

fn engine_config(
    db: &Arc<AtomDatabase>,
    gpus: usize,
    resilience: ResilienceConfig,
) -> EngineConfig {
    EngineConfig {
        db: Arc::clone(db),
        workers: 3,
        gpus,
        max_queue_len: 4,
        policy: SchedPolicy::CostAware,
        gpu_rule: DeviceRule::Simpson { panels: 64 },
        gpu_precision: Precision::Double,
        cpu_integrator: Integrator::Simpson { panels: 64 },
        fused: true,
        async_window: 1,
        queue_depth: 8,
        deterministic_kernel: true,
        math: MathMode::Exact,
        pack_threshold: 0,
        pack_max: 8,
        resilience,
        tuning: hybrid_sched::TuningConfig::default(),
    }
}

/// Microsecond-scale backoff so the sweep spends its time computing,
/// not sleeping.
fn fast_ladder() -> ResilienceConfig {
    ResilienceConfig {
        backoff: Duration::from_micros(20),
        backoff_cap: Duration::from_micros(200),
        ..ResilienceConfig::default()
    }
}

/// Submit every ion `waves` times, collect all outcomes sorted
/// (wave, ion) so runs are comparable position-by-position.
fn run_all_ions(engine: &Engine, grid: &EnergyGrid, waves: u64) -> Vec<IonOutcome> {
    let bins = Arc::new(grid.bin_pairs());
    let ions = engine.config().db.ions().len();
    let (tx, rx) = channel();
    for wave in 0..waves {
        for ion_index in 0..ions {
            let levels = engine.config().db.levels_by_index(ion_index).len();
            let accepted = engine.submit(IonJob {
                ion_index,
                level_range: 0..levels,
                point: point(),
                grid: grid.clone(),
                bins: Arc::clone(&bins),
                tag: wave,
                deadline: f64::INFINITY,
                reply: tx.clone(),
            });
            assert!(accepted.is_ok(), "engine accepts while live");
        }
    }
    drop(tx);
    let mut outcomes: Vec<IonOutcome> = rx.iter().collect();
    outcomes.sort_by_key(|o| (o.tag, o.ion_index));
    outcomes
}

/// Position-by-position bitwise comparison against the baseline run.
fn bitwise_equal(outcomes: &[IonOutcome], baseline: &[IonOutcome]) -> bool {
    outcomes.len() == baseline.len()
        && outcomes.iter().zip(baseline).all(|(a, b)| {
            a.ion_index == b.ion_index
                && a.partial.len() == b.partial.len()
                && a.partial
                    .iter()
                    .zip(&b.partial)
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

struct Trial {
    label: String,
    answered: u64,
    expected: u64,
    parity: bool,
    report: EngineReport,
    retry_bound: u64,
}

impl Trial {
    fn completion_pass(&self) -> bool {
        self.answered == self.expected
    }
    fn leak_pass(&self) -> bool {
        self.report.leaked_grants == 0
    }
    fn retry_pass(&self) -> bool {
        self.report.max_task_attempts <= self.retry_bound
    }
    fn pass(&self) -> bool {
        self.completion_pass() && self.parity && self.leak_pass() && self.retry_pass()
    }

    fn json(&self) -> jsonlite::Value {
        let r = &self.report;
        ObjectBuilder::new()
            .field("label", self.label.as_str())
            .field("answered", self.answered)
            .field("expected", self.expected)
            .field("bitwise_parity", self.parity)
            .field("gpu_tasks", r.gpu_tasks)
            .field("cpu_tasks", r.cpu_tasks)
            .field("leaked_grants", r.leaked_grants)
            .field("task_faults", r.task_faults)
            .field("task_retries", r.task_retries)
            .field("task_timeouts", r.task_timeouts)
            .field("fault_cpu_fallbacks", r.fault_cpu_fallbacks)
            .field("max_task_attempts", r.max_task_attempts)
            .field("retry_bound", self.retry_bound)
            .field("worker_panics", r.worker_panics)
            .field("quarantines", r.quarantines)
            .field("probations", r.probations)
            .field("recoveries", r.recoveries)
            .field(
                "device_health",
                r.device_health
                    .iter()
                    .map(|h| format!("{h:?}"))
                    .collect::<Vec<_>>(),
            )
            .field("pass", self.pass())
            .build()
    }
}

/// Run one chaos trial and gate it against the baseline.
fn trial(
    label: String,
    db: &Arc<AtomDatabase>,
    gpus: usize,
    resilience: ResilienceConfig,
    grid: &EnergyGrid,
    waves: u64,
    baseline: &[IonOutcome],
) -> Trial {
    let retry_bound = u64::from(resilience.max_retries) + 1;
    let engine = Engine::start(engine_config(db, gpus, resilience));
    let outcomes = run_all_ions(&engine, grid, waves);
    let report = engine.shutdown();
    let expected = waves * db.ions().len() as u64;
    let t = Trial {
        parity: bitwise_equal(&outcomes, baseline),
        answered: outcomes.len() as u64,
        expected,
        report,
        retry_bound,
        label,
    };
    eprintln!(
        "  {:<18} answered {}/{}  parity {}  faults {}  retries {}  cpu-fallbacks {}  \
         attempts {}/{}  leaked {}",
        t.label,
        t.answered,
        t.expected,
        t.parity,
        t.report.task_faults,
        t.report.task_retries,
        t.report.fault_cpu_fallbacks,
        t.report.max_task_attempts,
        t.retry_bound,
        t.report.leaked_grants,
    );
    assert!(
        t.completion_pass(),
        "{}: answered {}/{}",
        t.label,
        t.answered,
        t.expected
    );
    assert!(
        t.parity,
        "{}: bitwise parity vs fault-free baseline",
        t.label
    );
    assert!(
        t.leak_pass(),
        "{}: leaked {} grants",
        t.label,
        t.report.leaked_grants
    );
    assert!(
        t.retry_pass(),
        "{}: attempts {} exceed bound {}",
        t.label,
        t.report.max_task_attempts,
        t.retry_bound
    );
    t
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (max_z, bins, waves): (u8, usize, u64) = if smoke { (5, 32, 2) } else { (8, 64, 3) };
    let rates: Vec<f64> = if smoke {
        vec![0.10, 0.30]
    } else {
        vec![0.05, 0.10, 0.20, 0.30]
    };
    let db = Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z,
        ..DatabaseConfig::default()
    }));
    let grid = EnergyGrid::linear(50.0, 2000.0, bins);

    // -- 1. fault-free baseline -------------------------------------------
    eprintln!("baseline (fault-free) ...");
    let engine = Engine::start(engine_config(&db, 2, ResilienceConfig::default()));
    let baseline = run_all_ions(&engine, &grid, waves);
    let baseline_report = engine.shutdown();
    assert_eq!(baseline.len() as u64, waves * db.ions().len() as u64);
    assert_eq!(baseline_report.leaked_grants, 0);

    // -- 2. fault-rate sweep ----------------------------------------------
    eprintln!("fault-rate sweep {rates:?} ...");
    let mut sweep: Vec<Trial> = Vec::new();
    for &rate in &rates {
        let mut resilience = fast_ladder();
        resilience.faults = (0..2)
            .map(|d| {
                FaultPlan::seeded(101 + d)
                    .launch_error_rate(rate)
                    .kernel_panic_rate(rate / 2.0)
                    .dma_error_rate(rate / 2.0)
                    .stall_rate(rate / 4.0, 1)
            })
            .collect();
        sweep.push(trial(
            format!("rate={rate:.2}"),
            &db,
            2,
            resilience,
            &grid,
            waves,
            &baseline,
        ));
    }

    // -- 3. sticky device loss --------------------------------------------
    eprintln!("sticky loss of device 1 of 2 ...");
    let mut resilience = fast_ladder();
    resilience.faults = vec![FaultPlan::default(), FaultPlan::default().lose_device_at(4)];
    let sticky = trial(
        "sticky-loss".into(),
        &db,
        2,
        resilience,
        &grid,
        waves,
        &baseline,
    );
    let sticky_lost = sticky.report.device_faults[1].lost;
    let sticky_quarantined = sticky.report.device_health[1] == HealthState::Quarantined;
    assert!(sticky_lost, "device 1 must be sticky-lost");
    assert!(sticky_quarantined, "a lost device stays quarantined");

    // -- 4. quarantine → probation → healthy cycle -------------------------
    eprintln!("quarantine/probation cycle ...");
    let mut resilience = fast_ladder();
    resilience.health = HealthConfig {
        degraded_after: 1,
        quarantine_after: 2,
        probation_cooldown: Duration::from_millis(2),
        probation_successes: 1,
        ..HealthConfig::default()
    };
    resilience.faults = vec![
        FaultPlan::default()
            .fire_at(FaultOp::Launch, 0, FaultKind::LaunchError)
            .fire_at(FaultOp::Launch, 1, FaultKind::LaunchError),
        FaultPlan::default(),
    ];
    let retry_bound = u64::from(resilience.max_retries) + 1;
    let engine = Engine::start(engine_config(&db, 2, resilience));
    let mut cycle_answered = 0u64;
    let mut cycle_waves = 0u64;
    // Keep feeding single waves (with the cooldown lapsing in between)
    // until the ladder reports a full recovery, bounded at 25 rounds.
    for _ in 0..25 {
        cycle_answered += run_all_ions(&engine, &grid, 1).len() as u64;
        cycle_waves += 1;
        std::thread::sleep(Duration::from_millis(4));
        let snap = engine.scheduler_snapshot();
        if snap.recoveries >= 1 && cycle_waves >= 2 {
            break;
        }
    }
    let cycle_report = engine.shutdown();
    let cycle_expected = cycle_waves * db.ions().len() as u64;
    let cycle_pass = cycle_report.quarantines >= 1
        && cycle_report.probations >= 1
        && cycle_report.recoveries >= 1
        && cycle_answered == cycle_expected
        && cycle_report.leaked_grants == 0;
    eprintln!(
        "  cycle: waves {cycle_waves}  quarantines {}  probations {}  recoveries {}",
        cycle_report.quarantines, cycle_report.probations, cycle_report.recoveries
    );
    assert!(
        cycle_pass,
        "full quarantine cycle not observed: {cycle_report:?}"
    );

    // -- bundle -------------------------------------------------------------
    let all_retries_bounded = sweep.iter().all(Trial::retry_pass)
        && sticky.retry_pass()
        && cycle_report.max_task_attempts <= retry_bound;
    let all_leak_free = sweep.iter().all(Trial::leak_pass)
        && sticky.leak_pass()
        && baseline_report.leaked_grants == 0
        && cycle_report.leaked_grants == 0;
    let sweep_parity = sweep.iter().all(|t| t.parity);

    let bundle = ObjectBuilder::new()
        .field("smoke", smoke)
        .field(
            "workload",
            ObjectBuilder::new()
                .field("max_z", u64::from(max_z))
                .field("bins", bins as u64)
                .field("waves", waves)
                .field("ions", db.ions().len() as u64)
                .field("gpus", 2u64)
                .field("fault_rates", rates.clone())
                .field(
                    "kernel",
                    "deterministic single-chunk, Simpson 64 both paths",
                )
                .build(),
        )
        .field(
            "baseline",
            ObjectBuilder::new()
                .field("answered", baseline.len() as u64)
                .field("gpu_tasks", baseline_report.gpu_tasks)
                .field("cpu_tasks", baseline_report.cpu_tasks)
                .field("leaked_grants", baseline_report.leaked_grants)
                .build(),
        )
        .field("sweep", sweep.iter().map(Trial::json).collect::<Vec<_>>())
        .field("sticky_loss", sticky.json())
        .field(
            "quarantine_cycle",
            ObjectBuilder::new()
                .field("waves", cycle_waves)
                .field("answered", cycle_answered)
                .field("expected", cycle_expected)
                .field("quarantines", cycle_report.quarantines)
                .field("probations", cycle_report.probations)
                .field("recoveries", cycle_report.recoveries)
                .field("leaked_grants", cycle_report.leaked_grants)
                .field("pass", cycle_pass)
                .build(),
        )
        .field(
            "gates",
            ObjectBuilder::new()
                .field(
                    "bitwise_parity_all_rates",
                    ObjectBuilder::new().field("pass", sweep_parity).build(),
                )
                .field(
                    "completion_under_sticky_loss",
                    ObjectBuilder::new()
                        .field("answered", sticky.answered)
                        .field("expected", sticky.expected)
                        .field("device_lost", sticky_lost)
                        .field("device_quarantined", sticky_quarantined)
                        .field("pass", sticky.pass() && sticky_lost && sticky_quarantined)
                        .build(),
                )
                .field(
                    "zero_leaked_grants",
                    ObjectBuilder::new().field("pass", all_leak_free).build(),
                )
                .field(
                    "bounded_retries",
                    ObjectBuilder::new()
                        .field("pass", all_retries_bounded)
                        .build(),
                )
                .field(
                    "full_quarantine_cycle",
                    ObjectBuilder::new().field("pass", cycle_pass).build(),
                )
                .build(),
        )
        .build();

    let path = "BENCH_chaos.json";
    std::fs::write(path, bundle.to_pretty()).expect("write results");
    println!("wrote {path}");
    println!(
        "chaos acceptance: parity at all {} rates, sticky-loss completion {}/{}, \
         zero leaked grants, retries bounded, full quarantine cycle observed",
        sweep.len(),
        sticky.answered,
        sticky.expected,
    );
}
