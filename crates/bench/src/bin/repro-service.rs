//! Regenerate `BENCH_service.json`: the spectral query service's
//! acceptance gates, per 0/1/2-GPU configuration.
//!
//! For each device count this driver checks, with a fixed seed:
//!
//! 1. **Bitwise cache parity** — the same request set answered by a
//!    cache-on and a cache-off service must agree to the bit (the
//!    cached partial is the original allocation; the fold order is
//!    fixed; the engine kernel is the deterministic single-chunk
//!    launch).
//! 2. **Cache throughput** — a repeated-query closed-loop workload
//!    must run at least 5x faster against a warm cache than with the
//!    cache disabled (full runs only; `--smoke` checks hit-rate > 0
//!    instead of timing).
//! 3. **Overload boundedness** — an open-loop Poisson burst far above
//!    capacity must shed (typed `Overloaded`) under the shed policy
//!    while the observed queue depth never exceeds the configured
//!    bound, and must complete everything under caller-runs.
//! 4. **Clean shutdown** — every service drains with zero leaked
//!    scheduler grants.
//!
//! `--smoke` shrinks the workload for CI and skips the timing gate
//! (counters and parity stay asserted, and the JSON is still written).

use std::sync::Arc;

use atomdb::{AtomDatabase, DatabaseConfig};
use jsonlite::ObjectBuilder;
use rrc_service::{
    cycling_requests, poisson_arrivals, run_closed_loop, run_open_loop, AdmissionPolicy,
    ServiceConfig, ServiceReport, SpectralService, SpectrumRequest,
};
use rrc_spectral::{EnergyGrid, GridPoint};

const SEED: u64 = 0x05EC_72A1; // fixed: every schedule below derives from it

struct Scale {
    max_z: u8,
    bins: usize,
    distinct_points: usize,
    throughput_requests: usize,
    overload_requests: usize,
}

impl Scale {
    fn full() -> Scale {
        Scale {
            max_z: 8,
            bins: 96,
            distinct_points: 4,
            throughput_requests: 64,
            overload_requests: 96,
        }
    }

    fn smoke() -> Scale {
        Scale {
            max_z: 5,
            bins: 32,
            distinct_points: 3,
            throughput_requests: 18,
            overload_requests: 40,
        }
    }
}

fn db(scale: &Scale) -> Arc<AtomDatabase> {
    Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: scale.max_z,
        ..DatabaseConfig::default()
    }))
}

fn points(scale: &Scale) -> Vec<GridPoint> {
    (0..scale.distinct_points)
        .map(|i| GridPoint {
            temperature_k: 9.0e6 + 6.1e5 * i as f64,
            density_cm3: 1.0,
            time_s: 0.0,
            index: i,
        })
        .collect()
}

fn config(scale: &Scale, gpus: usize, cache_capacity: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::deterministic(
        db(scale),
        vec![EnergyGrid::linear(50.0, 2000.0, scale.bins)],
    );
    cfg.engine.gpus = gpus;
    cfg.cache_capacity = cache_capacity;
    cfg
}

fn answer_all(service: &SpectralService, requests: Vec<SpectrumRequest>) -> Vec<Vec<f64>> {
    requests
        .into_iter()
        .map(|r| {
            service
                .submit(r)
                .expect("admitted")
                .wait()
                .expect("answered")
                .bins
        })
        .collect()
}

fn assert_drained(label: &str, report: &ServiceReport) {
    assert_eq!(
        report.engine.leaked_grants, 0,
        "{label}: shutdown must free every grant"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let pts = points(&scale);
    let mut configs = Vec::new();

    for gpus in [0usize, 1, 2] {
        eprintln!("[gpus={gpus}] cache parity ...");
        // -- 1. bitwise cache parity -------------------------------------
        // Two passes so the cached service answers pass 2 from the cache;
        // every answer must equal the uncached service's bit for bit.
        let reqs = cycling_requests(&pts, 0, 2 * scale.distinct_points + 3);
        let cached = SpectralService::start(config(&scale, gpus, 4096));
        let uncached = SpectralService::start(config(&scale, gpus, 0));
        let from_cached = answer_all(&cached, reqs.clone());
        let from_uncached = answer_all(&uncached, reqs.clone());
        let mut parity_cases = 0u64;
        for (i, (a, b)) in from_cached.iter().zip(&from_uncached).enumerate() {
            for (j, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "gpus={gpus} request {i} bin {j}: cache-on {x} vs cache-off {y}"
                );
                parity_cases += 1;
            }
        }
        let cached_report = cached.shutdown();
        assert_drained("parity cached", &cached_report);
        assert!(
            cached_report.cache.hits > 0,
            "repeated queries must hit the cache: {:?}",
            cached_report.cache
        );
        assert_drained("parity uncached", &uncached.shutdown());

        // -- 2. cache throughput -----------------------------------------
        eprintln!("[gpus={gpus}] throughput ...");
        let warm = SpectralService::start(config(&scale, gpus, 4096));
        // Warm pass: every distinct state once, filling the cache.
        let _ = answer_all(&warm, cycling_requests(&pts, 0, pts.len()));
        let warm_run = run_closed_loop(
            &warm,
            cycling_requests(&pts, 0, scale.throughput_requests),
            4,
        );
        let warm_report = warm.shutdown();
        assert_drained("throughput cached", &warm_report);

        let cold = SpectralService::start(config(&scale, gpus, 0));
        let cold_run = run_closed_loop(
            &cold,
            cycling_requests(&pts, 0, scale.throughput_requests),
            4,
        );
        assert_drained("throughput uncached", &cold.shutdown());

        let speedup = warm_run.throughput_rps() / cold_run.throughput_rps().max(1e-12);
        assert_eq!(warm_run.completed, scale.throughput_requests as u64);
        assert_eq!(cold_run.completed, scale.throughput_requests as u64);
        assert!(
            warm_report.cache.hit_rate() > 0.0,
            "warm run saw no cache hits"
        );
        if !smoke {
            assert!(
                speedup >= 5.0,
                "gpus={gpus}: cache speedup gate: expected >= 5x, got {speedup:.2}x"
            );
        }

        // -- 3. overload boundedness -------------------------------------
        eprintln!("[gpus={gpus}] overload ...");
        let mut shed_cfg = config(&scale, gpus, 0);
        shed_cfg.request_queue_depth = 8;
        shed_cfg.admission = AdmissionPolicy::Shed;
        let depth = shed_cfg.request_queue_depth;
        let shed_svc = SpectralService::start(shed_cfg);
        // Offered far above capacity: the whole burst arrives in ~a few
        // milliseconds while each request costs whole milliseconds.
        let arrivals = poisson_arrivals(20_000.0, scale.overload_requests, SEED);
        let shed_run = run_open_loop(
            &shed_svc,
            cycling_requests(&pts, 0, scale.overload_requests),
            &arrivals,
        );
        let shed_report = shed_svc.shutdown();
        assert_drained("overload shed", &shed_report);
        assert!(
            shed_run.shed > 0,
            "burst at 20 kHz must overflow a depth-{depth} queue"
        );
        assert_eq!(
            shed_run.completed + shed_run.shed,
            scale.overload_requests as u64
        );
        assert!(
            shed_report.metrics.queue_depth_peak <= depth as u64,
            "queue depth {} exceeded bound {depth}",
            shed_report.metrics.queue_depth_peak
        );

        let mut inline_cfg = config(&scale, gpus, 0);
        inline_cfg.request_queue_depth = 8;
        inline_cfg.admission = AdmissionPolicy::CallerRuns;
        let inline_svc = SpectralService::start(inline_cfg);
        let inline_run = run_open_loop(
            &inline_svc,
            cycling_requests(&pts, 0, scale.overload_requests),
            &arrivals,
        );
        let inline_report = inline_svc.shutdown();
        assert_drained("overload caller-runs", &inline_report);
        assert_eq!(
            inline_run.completed, scale.overload_requests as u64,
            "caller-runs answers everything"
        );

        configs.push(
            ObjectBuilder::new()
                .field("gpus", gpus as u64)
                .field(
                    "cache_parity",
                    ObjectBuilder::new()
                        .field("bitwise_equal", true)
                        .field("bins_compared", parity_cases)
                        .field("cache_hits", cached_report.cache.hits)
                        .field("cache_hit_rate", cached_report.cache.hit_rate())
                        .build(),
                )
                .field(
                    "throughput",
                    ObjectBuilder::new()
                        .field("requests", scale.throughput_requests as u64)
                        .field("cache_on_rps", warm_run.throughput_rps())
                        .field("cache_off_rps", cold_run.throughput_rps())
                        .field("speedup", speedup)
                        .field("gate_5x_enforced", !smoke)
                        .field("warm_hit_rate", warm_report.cache.hit_rate())
                        .field("total_p50_s", warm_report.metrics.total.p50_s)
                        .field("total_p95_s", warm_report.metrics.total.p95_s)
                        .field("total_p99_s", warm_report.metrics.total.p99_s)
                        .build(),
                )
                .field(
                    "overload",
                    ObjectBuilder::new()
                        .field("offered", shed_run.offered)
                        .field("shed", shed_run.shed)
                        .field("completed", shed_run.completed)
                        .field("queue_depth_bound", depth as u64)
                        .field("queue_depth_peak", shed_report.metrics.queue_depth_peak)
                        .field("caller_runs_completed", inline_run.completed)
                        .field("caller_runs_inline", inline_run.caller_ran)
                        .build(),
                )
                .field(
                    "engine",
                    ObjectBuilder::new()
                        .field("gpu_tasks", cached_report.engine.gpu_tasks)
                        .field("cpu_tasks", cached_report.engine.cpu_tasks)
                        .field("leaked_grants", 0u64)
                        .build(),
                )
                .build(),
        );
    }

    let bundle = ObjectBuilder::new()
        .field("seed", SEED)
        .field("smoke", smoke)
        .field(
            "workload",
            ObjectBuilder::new()
                .field("max_z", u64::from(scale.max_z))
                .field("bins", scale.bins as u64)
                .field("distinct_points", scale.distinct_points as u64)
                .field("rule", "simpson_64_deterministic_kernel")
                .build(),
        )
        .field("configs", jsonlite::Value::Array(configs))
        .build();

    let path = "BENCH_service.json";
    std::fs::write(path, bundle.to_pretty()).expect("write results");
    println!("wrote {path}");
    println!("service acceptance: parity bitwise, overload bounded, zero leaked grants");
}
