//! Regenerate `BENCH_slo.json`: acceptance gates for request-level
//! resilience — deadline propagation, SLO-driven admission with
//! priority tiers, hedged re-scatter against stragglers, and
//! per-replica circuit breakers.
//!
//! Five legs, all on the deterministic single-chunk kernel with the
//! same Simpson rule on both paths:
//!
//! 1. **Hedged parity matrix** — hedging + priorities + deadlines +
//!    breakers under universal lane stalls answer **bitwise
//!    identically** (tolerance 0) to the unhedged, fault-free tier
//!    across {1, 2, 4} shards × both routing policies (affinity
//!    on/off). Hedging may reorder timing, never bits.
//! 2. **Tail-latency rescue** — one lane out of eight (a 4-shard ×
//!    2-replica tier) carries a persistent slow-replica skew. Gates:
//!    hedged p99 beats unhedged p99 by ≥ 1.5×, and the token bucket is
//!    never exhausted (zero denials, tokens left over).
//! 3. **Overload protection** — a bulk flood several times past the
//!    bulk queue's capacity runs while interactive traffic is
//!    measured. Gates: interactive p95 stays within 2× of the
//!    unloaded tier, interactive sheds nothing while bulk absorbs all
//!    shedding; separately, every infeasible-deadline request is
//!    refused with the typed error at admission before any fan-out
//!    (zero batches — zero wasted compute).
//! 4. **Breaker starvation + probe** — a replica whose lane drops
//!    every delivery trips its breaker, serves **zero** requests while
//!    open, is re-admitted through a single half-open probe after the
//!    cooldown, and rejoins the rotation.
//! 5. **Zero leaked grants** across every tier and service above.
//!
//! `--smoke` shrinks the database and the load for CI; every gate
//! stays asserted and the JSON is still written.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atomdb::{AtomDatabase, DatabaseConfig};
use desim::{Deadline, Priority, VirtualClock};
use hybrid_sched::BreakerState;
use jsonlite::ObjectBuilder;
use mpi_sim::LaneFaultPlan;
use rrc_router::{RouterConfig, ShardRouter};
use rrc_service::{
    ElementSelection, ServiceConfig, ServiceError, SpectralService, SpectrumRequest,
};
use rrc_spectral::{EnergyGrid, GridPoint};

struct Scale {
    max_z: u8,
    bins: usize,
    parity_points: usize,
    tail_requests: usize,
    interactive_requests: usize,
    bulk_flood: usize,
    infeasible_requests: usize,
}

fn scale(smoke: bool) -> Scale {
    if smoke {
        Scale {
            max_z: 5,
            bins: 32,
            parity_points: 2,
            tail_requests: 12,
            interactive_requests: 6,
            bulk_flood: 24,
            infeasible_requests: 4,
        }
    } else {
        Scale {
            max_z: 7,
            bins: 48,
            parity_points: 3,
            tail_requests: 40,
            interactive_requests: 12,
            bulk_flood: 48,
            infeasible_requests: 8,
        }
    }
}

fn point_at(index: usize) -> GridPoint {
    GridPoint {
        temperature_k: 8.8e6 + 6.3e5 * index as f64,
        density_cm3: 1.0,
        time_s: 0.0,
        index,
    }
}

fn all_request(index: usize) -> SpectrumRequest {
    SpectrumRequest::new(point_at(index), ElementSelection::All, 0)
}

/// Parity traffic exercises the whole request envelope: alternating
/// priority tiers, every request under a generous (feasible) absolute
/// deadline that must survive propagation without changing bits.
fn enveloped_request(index: usize) -> SpectrumRequest {
    let priority = if index.is_multiple_of(2) {
        Priority::Interactive
    } else {
        Priority::Bulk
    };
    all_request(index)
        .with_priority(priority)
        .with_deadline(Deadline::at(1.0e9))
}

fn bitwise_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Nearest-rank percentile of a latency sample (q in (0, 1]).
fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = scale(smoke);
    let db = Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: s.max_z,
        ..DatabaseConfig::default()
    }));
    let grids = vec![EnergyGrid::paper_waveband(s.bins)];
    let mut leaked_total = 0u64;

    // -- 1. hedged parity matrix ---------------------------------------------
    eprintln!("hedged parity across shards x policy under universal stalls ...");
    let parity_requests: Vec<SpectrumRequest> =
        (0..s.parity_points).map(enveloped_request).collect();
    let mut parity_trials: Vec<jsonlite::Value> = Vec::new();
    let mut parity_pass = true;
    let mut parity_hedges = 0u64;
    for shards in [1usize, 2, 4] {
        for affinity in [false, true] {
            let mut base_cfg = RouterConfig::deterministic(Arc::clone(&db), grids.clone());
            base_cfg.shards = shards;
            base_cfg.replicas = 2;
            base_cfg.affinity = affinity;
            let baseline = ShardRouter::start(base_cfg.clone());
            let want: Vec<Vec<f64>> = parity_requests
                .iter()
                .map(|r| baseline.query(r).expect("baseline answers").bins)
                .collect();
            let base_report = baseline.shutdown();
            leaked_total += base_report.leaked_grants;

            let mut hedged_cfg = base_cfg;
            hedged_cfg.hedge_quantile = 0.5;
            hedged_cfg.hedge_min_wait = Duration::from_millis(1);
            let hedged = ShardRouter::start(hedged_cfg);
            // Every lane straggles past the hedge trigger: every slot
            // re-scatters to its sibling and first-writer-wins decides.
            for lane in 0..shards * 2 {
                hedged.set_lane_faults(
                    lane,
                    LaneFaultPlan::seeded(17 + lane as u64).stall_rate(1.0, 6),
                );
            }
            let mut trial_bitwise = true;
            for (req, want) in parity_requests.iter().zip(&want) {
                let got = hedged.query(req).expect("hedged answers");
                trial_bitwise &= bitwise_equal(&got.bins, want);
            }
            let hedges = hedged.snapshot().counters.hedges;
            parity_hedges += hedges;
            let report = hedged.shutdown();
            leaked_total += report.leaked_grants;
            let pass = trial_bitwise && hedges >= 1 && report.leaked_grants == 0;
            parity_pass &= pass;
            eprintln!(
                "  shards={shards} affinity={affinity}: bitwise {trial_bitwise}  \
                 hedges {hedges}  leaked {}",
                report.leaked_grants
            );
            assert!(pass, "hedged parity: shards={shards} affinity={affinity}");
            parity_trials.push(
                ObjectBuilder::new()
                    .field("shards", shards as u64)
                    .field("affinity", affinity)
                    .field("bitwise", trial_bitwise)
                    .field("hedges", hedges)
                    .field("leaked_grants", report.leaked_grants)
                    .field("pass", pass)
                    .build(),
            );
        }
    }

    // -- 2. tail-latency rescue under slow-replica skew ----------------------
    eprintln!("tail rescue: 1 of 8 lanes skewed, hedged vs unhedged p99 ...");
    let run_skewed = |hedge: bool| -> (Vec<f64>, u64, u64, f64, u64) {
        let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids.clone());
        cfg.shards = 4;
        cfg.replicas = 2;
        cfg.affinity = false;
        cfg.cache_capacity = 0; // cold computes: every request fans out
        if hedge {
            // The floor sits above normal part latency and well below
            // the injected skew, and the bucket is sized for the
            // tier's worst-case hedge volume: only genuinely
            // straggling parts spend tokens, and the budget never
            // runs dry.
            cfg.hedge_quantile = 0.5;
            cfg.hedge_min_wait = Duration::from_millis(15);
            cfg.hedge_tokens = 128.0;
            cfg.hedge_refill_per_sec = 32.0;
        }
        let tier = ShardRouter::start(cfg);
        // Lane 0 (segment 0, replica 0) is the persistent straggler:
        // every delivery it serves arrives late by a fixed skew.
        tier.set_lane_faults(0, LaneFaultPlan::seeded(29).delay(60));
        let mut lat = Vec::with_capacity(s.tail_requests);
        for i in 0..s.tail_requests {
            let started = Instant::now();
            let _ = tier.query(&all_request(i)).expect("skewed tier answers");
            lat.push(started.elapsed().as_secs_f64());
        }
        let snapshot = tier.snapshot();
        let tokens_left = tier.hedge_tokens_available();
        let report = tier.shutdown();
        (
            lat,
            snapshot.counters.hedges,
            snapshot.counters.hedge_denied,
            tokens_left,
            report.leaked_grants,
        )
    };
    let (unhedged_lat, _, _, _, unhedged_leaked) = run_skewed(false);
    let (hedged_lat, tail_hedges, tail_denied, tokens_left, hedged_leaked) = run_skewed(true);
    leaked_total += unhedged_leaked + hedged_leaked;
    let p99_unhedged = percentile(&unhedged_lat, 0.99);
    let p99_hedged = percentile(&hedged_lat, 0.99);
    let tail_ratio = p99_unhedged / p99_hedged.max(1e-9);
    let tail_pass = tail_ratio >= 1.5
        && tail_hedges >= 1
        && tail_denied == 0
        && tokens_left > 0.0
        && unhedged_leaked + hedged_leaked == 0;
    eprintln!(
        "  p99 unhedged {:.1}ms vs hedged {:.1}ms ({tail_ratio:.2}x); \
         hedges {tail_hedges}, denied {tail_denied}, tokens left {tokens_left:.1}",
        p99_unhedged * 1e3,
        p99_hedged * 1e3
    );
    assert!(
        tail_pass,
        "tail rescue {tail_ratio:.2}x below 1.5x (denied {tail_denied})"
    );

    // -- 3. overload protection ----------------------------------------------
    eprintln!("overload: bulk flood vs measured interactive p95 ...");
    let service_cfg = || {
        let mut cfg = ServiceConfig::deterministic(Arc::clone(&db), grids.clone());
        cfg.cache_capacity = 0; // cold computes: load is real
        cfg.request_queue_depth = 64;
        cfg.bulk_queue_depth = 2;
        cfg.max_batch = 2;
        cfg.interactive_weight = 4;
        cfg
    };
    let measure_interactive = |service: &SpectralService, base: usize| -> u64 {
        let mut answered = 0u64;
        for i in 0..s.interactive_requests {
            let response = service
                .submit(all_request(base + i).with_priority(Priority::Interactive))
                .expect("interactive must never shed here")
                .wait()
                .expect("interactive answered");
            assert!(response.bins.iter().all(|b| b.is_finite()));
            answered += 1;
        }
        answered
    };

    // Unloaded reference tier.
    let unloaded = SpectralService::start(service_cfg());
    measure_interactive(&unloaded, 0);
    let p95_unloaded = unloaded.metrics().per_priority[Priority::Interactive.index()].p95_s;
    let unloaded_report = unloaded.shutdown();
    leaked_total += unloaded_report.engine.leaked_grants;

    // Loaded tier: a background bulk flood several times past the bulk
    // queue's depth runs for the whole interactive measurement.
    let loaded = Arc::new(SpectralService::start(service_cfg()));
    let stop = Arc::new(AtomicBool::new(false));
    let bulk_refused = Arc::new(AtomicU64::new(0));
    let flood = {
        let service = Arc::clone(&loaded);
        let stop = Arc::clone(&stop);
        let bulk_refused = Arc::clone(&bulk_refused);
        let flood_len = s.bulk_flood;
        std::thread::spawn(move || {
            let mut tickets = Vec::new();
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) || i < flood_len {
                // Cheap single-element sweeps: the flood saturates the
                // bulk queue without monopolizing the device.
                let req = SpectrumRequest::new(
                    point_at(10_000 + i),
                    ElementSelection::Elements(vec![1]),
                    0,
                )
                .with_priority(Priority::Bulk);
                match service.submit(req) {
                    Ok(ticket) => tickets.push(ticket),
                    Err(ServiceError::Overloaded) => {
                        bulk_refused.fetch_add(1, Ordering::AcqRel);
                    }
                    Err(e) => panic!("flood may only shed on capacity, got {e}"),
                }
                i += 1;
                // Paced overload, not a busy-loop: the arrival rate
                // stays several times past the bulk queue's drain rate
                // without the flood thread itself monopolizing a core.
                std::thread::sleep(Duration::from_micros(400));
            }
            for ticket in tickets {
                let _ = ticket.wait().expect("admitted bulk answered");
            }
        })
    };
    measure_interactive(&loaded, 1_000);
    stop.store(true, Ordering::Release);
    flood.join().expect("flood worker");
    let loaded_metrics = loaded.metrics();
    let p95_loaded = loaded_metrics.per_priority[Priority::Interactive.index()].p95_s;
    let loaded_report = Arc::try_unwrap(loaded)
        .ok()
        .expect("flood joined")
        .shutdown();
    leaked_total += loaded_report.engine.leaked_grants;
    let p95_ratio = p95_loaded / p95_unloaded.max(1e-9);
    let bulk_shed = bulk_refused.load(Ordering::Acquire);
    let overload_pass = p95_ratio <= 2.0
        && bulk_shed >= 1
        && loaded_metrics.shed_queue_full == bulk_shed
        && loaded_metrics.shed_infeasible == 0
        && loaded_report.engine.leaked_grants == 0;
    eprintln!(
        "  interactive p95 unloaded {:.2}ms vs loaded {:.2}ms ({p95_ratio:.2}x); \
         bulk shed {bulk_shed}, interactive shed 0",
        p95_unloaded * 1e3,
        p95_loaded * 1e3
    );
    assert!(
        overload_pass,
        "overload: interactive p95 {p95_ratio:.2}x above 2x (bulk shed {bulk_shed})"
    );

    // Infeasible deadlines never reach the fan-out: a fresh tier
    // refuses every one with the typed error and runs zero batches.
    let gated = SpectralService::start(service_cfg());
    for i in 0..s.infeasible_requests {
        let outcome = gated.submit(all_request(i).with_deadline(Deadline::at(0.0)));
        assert!(
            matches!(outcome, Err(ServiceError::DeadlineInfeasible)),
            "expired deadline must shed typed"
        );
    }
    let gated_metrics = gated.metrics();
    let gated_report = gated.shutdown();
    leaked_total += gated_report.engine.leaked_grants;
    let infeasible_pass = gated_metrics.shed_infeasible == s.infeasible_requests as u64
        && gated_metrics.submitted == 0
        && gated_metrics.batches == 0
        && gated_report.engine.leaked_grants == 0;
    eprintln!(
        "  infeasible deadlines: {} refused typed, {} batches (zero wasted fan-outs)",
        gated_metrics.shed_infeasible, gated_metrics.batches
    );
    assert!(infeasible_pass, "infeasible-deadline admission gate");

    // -- 4. breaker starvation + half-open probe -----------------------------
    eprintln!("breaker: drop-everything lane trips, starves, probes, rejoins ...");
    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids.clone());
    cfg.shards = 1;
    cfg.replicas = 2;
    cfg.affinity = false;
    cfg.cache_capacity = 0;
    cfg.clock = VirtualClock::manual();
    let tier = ShardRouter::start(cfg);
    tier.set_lane_faults(0, LaneFaultPlan::seeded(3).drop_rate(1.0));
    let mut sent = 0usize;
    while tier.breaker(0, 0).state() != BreakerState::Open {
        assert!(sent < 64, "breaker should trip within a few dozen drops");
        let _ = tier.query(&all_request(sent)).expect("sibling covers");
        sent += 1;
    }
    // Heal the lane; the open breaker must still starve the replica.
    tier.set_lane_faults(0, LaneFaultPlan::default());
    let frozen = tier.replica(0, 0).metrics().responded;
    for i in 0..8 {
        let _ = tier.query(&all_request(100 + i)).expect("replica 1 serves");
    }
    let starved = tier.replica(0, 0).metrics().responded == frozen
        && tier.breaker(0, 0).state() == BreakerState::Open;
    // Past the cooldown the next request carries the half-open probe.
    tier.clock().advance(1.0);
    let _ = tier.query(&all_request(200)).expect("probe succeeds");
    let probed = tier.breaker(0, 0).state() == BreakerState::Closed
        && tier.replica(0, 0).metrics().responded == frozen + 1;
    for i in 0..8 {
        let _ = tier.query(&all_request(300 + i)).expect("both serve");
    }
    let rejoined = tier.replica(0, 0).metrics().responded > frozen + 1;
    let transitions = tier.breaker(0, 0).counters();
    let breaker_skips = tier.snapshot().counters.breaker_skips;
    let breaker_report = tier.shutdown();
    leaked_total += breaker_report.leaked_grants;
    let breaker_pass = starved
        && probed
        && rejoined
        && transitions.opens >= 1
        && transitions.half_opens >= 1
        && transitions.closes >= 1
        && breaker_report.leaked_grants == 0;
    eprintln!(
        "  tripped after {sent} requests; starved {starved}, probe closed {probed}, \
         rejoined {rejoined} ({transitions:?}, {breaker_skips} open-skips)"
    );
    assert!(breaker_pass, "breaker starvation/probe gate");

    // -- 5. zero leaked grants everywhere ------------------------------------
    let leak_pass = leaked_total == 0;
    assert!(leak_pass, "leaked {leaked_total} grants across the run");

    // -- bundle --------------------------------------------------------------
    let bundle = ObjectBuilder::new()
        .field("smoke", smoke)
        .field(
            "workload",
            ObjectBuilder::new()
                .field("max_z", u64::from(s.max_z))
                .field("bins", s.bins as u64)
                .field("ions", db.ions().len() as u64)
                .field(
                    "kernel",
                    "deterministic single-chunk, Simpson rule both paths",
                )
                .build(),
        )
        .field("parity", parity_trials)
        .field(
            "tail_rescue",
            ObjectBuilder::new()
                .field("requests", s.tail_requests as u64)
                .field("skewed_lanes", 1u64)
                .field("lanes", 8u64)
                .field("p99_unhedged_s", p99_unhedged)
                .field("p99_hedged_s", p99_hedged)
                .field("ratio", tail_ratio)
                .field("hedges", tail_hedges)
                .field("hedge_denied", tail_denied)
                .field("hedge_tokens_left", tokens_left)
                .build(),
        )
        .field(
            "overload",
            ObjectBuilder::new()
                .field("interactive_requests", s.interactive_requests as u64)
                .field("interactive_p95_unloaded_s", p95_unloaded)
                .field("interactive_p95_loaded_s", p95_loaded)
                .field("p95_ratio", p95_ratio)
                .field("bulk_shed", bulk_shed)
                .field("interactive_shed", 0u64)
                .field("infeasible_refused", gated_metrics.shed_infeasible)
                .field("infeasible_batches", gated_metrics.batches)
                .build(),
        )
        .field(
            "breaker",
            ObjectBuilder::new()
                .field("requests_to_trip", sent as u64)
                .field("starved_while_open", starved)
                .field("probe_closed", probed)
                .field("rejoined", rejoined)
                .field("opens", transitions.opens)
                .field("half_opens", transitions.half_opens)
                .field("closes", transitions.closes)
                .field("open_skips", breaker_skips)
                .build(),
        )
        .field(
            "gates",
            ObjectBuilder::new()
                .field(
                    "hedged_bitwise_parity",
                    ObjectBuilder::new()
                        .field("hedges", parity_hedges)
                        .field("pass", parity_pass)
                        .build(),
                )
                .field(
                    "tail_rescue_1_5x",
                    ObjectBuilder::new()
                        .field("ratio", tail_ratio)
                        .field("pass", tail_pass)
                        .build(),
                )
                .field(
                    "interactive_p95_within_2x",
                    ObjectBuilder::new()
                        .field("ratio", p95_ratio)
                        .field("pass", overload_pass)
                        .build(),
                )
                .field(
                    "infeasible_shed_before_fanout",
                    ObjectBuilder::new().field("pass", infeasible_pass).build(),
                )
                .field(
                    "breaker_starves_until_probe",
                    ObjectBuilder::new().field("pass", breaker_pass).build(),
                )
                .field(
                    "zero_leaked_grants",
                    ObjectBuilder::new().field("pass", leak_pass).build(),
                )
                .build(),
        )
        .build();

    let path = "BENCH_slo.json";
    std::fs::write(path, bundle.to_pretty()).expect("write results");
    println!("wrote {path}");
    println!(
        "slo acceptance: hedged bitwise parity across 6 shard/policy configs, tail p99 \
         rescue {tail_ratio:.2}x (>= 1.5x) with zero hedge denials, interactive p95 \
         {p95_ratio:.2}x (<= 2x) under bulk flood with typed infeasible shedding before \
         fan-out, breaker starves its replica until the half-open probe, zero leaked grants"
    );
}
