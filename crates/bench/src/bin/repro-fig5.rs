//! Regenerate paper Fig. 5: percentage of tasks achieved by GPUs vs
//! the maximum queue length, for 1–4 GPUs.

use hybrid_spectral::experiments::qlen_sweep::{self, PAPER_FIG5, QLENS};
use spectral_bench::{paper_inputs, pct, render_table};

fn main() {
    let (workload, calib) = paper_inputs();
    let report = qlen_sweep::run(&workload, &calib);

    println!("== Fig. 5: task ratio on GPUs vs maximum queue length ==\n");
    let mut rows = Vec::new();
    for gpus in 1..=4usize {
        let series = report.series(gpus);
        let mut ours = vec![format!("{gpus} GPU(s) ours")];
        ours.extend(series.iter().map(|c| pct(c.gpu_ratio_percent)));
        rows.push(ours);
        let mut paper = vec![format!("{gpus} GPU(s) paper")];
        paper.extend(PAPER_FIG5[gpus - 1].iter().map(|&v| pct(v)));
        rows.push(paper);
    }
    let mut headers = vec!["GPU task ratio".to_string()];
    headers.extend(QLENS.iter().map(|q| format!("qlen {q}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&headers_ref, &rows));
    println!("(ratio = tasks achieved by GPUs / total tasks; rises with queue length");
    println!(" and with device count, saturating at 100% — same shape as the paper.)");
}
