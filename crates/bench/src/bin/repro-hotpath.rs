//! Regenerate `BENCH_hotpath.json`: the fused hot-path A/B.
//!
//! Times the same Ion-task workload (10 levels x 512 bins, Simpson-64)
//! through the seed pipeline — `BinIntegrationKernel` over closures that
//! recompute the Maxwellian prefactor per sample — and through the fused
//! pipeline — `FusedBinKernel` over [`PreparedIntegrand`]s — plus the
//! host-side per-bin vs `integrate_bins_sampled` pair, and writes both
//! throughput numbers (legacy-equivalent integrand evaluations per
//! second over the identical workload) to `BENCH_hotpath.json`.
//!
//! Acceptance gate for the hot-path work: `kernel.speedup >= 1.5`.

use std::time::Duration;

use gpu_sim::{BinIntegrationKernel, DeviceRule, FusedBinKernel, LaunchConfig, Precision};
use jsonlite::ObjectBuilder;
use microbench::Criterion;
use quadrature::{integrate_bins_sampled, simpson, BinRule};
use rrc_spectral::RrcIntegrand;

fn ion_levels() -> Vec<RrcIntegrand> {
    (1..=10u16)
        .map(|n| RrcIntegrand::new(862.0, 13.6 * 64.0 / f64::from(n * n), n, 1.0, 1e-4))
        .collect()
}

fn ion_bins() -> Vec<(f64, f64)> {
    (0..512)
        .map(|i| (100.0 + 3.0 * f64::from(i), 103.0 + 3.0 * f64::from(i)))
        .collect()
}

struct Lane {
    median_ns: f64,
    evals: u64,
}

fn lane_json(lane: &Lane, seed_evals: u64) -> jsonlite::Value {
    // Throughput counts legacy-equivalent work: the seed path's
    // evaluation count over the same workload, divided by this lane's
    // time — so the ratio of throughputs is exactly the speedup.
    let evals_per_s = seed_evals as f64 / (lane.median_ns * 1e-9);
    ObjectBuilder::new()
        .field("median_ns_per_task", lane.median_ns)
        .field("integrand_evals_per_task", lane.evals)
        .field("legacy_equivalent_evals_per_sec", evals_per_s)
        .build()
}

fn main() {
    let levels = ion_levels();
    let bins = ion_bins();
    let windows: Vec<(f64, f64)> = levels
        .iter()
        .map(|f| (f.binding_ev, f.binding_ev + 40.0 * f.kt_ev))
        .collect();
    let seed_closures: Vec<_> = levels
        .iter()
        .map(|f| {
            let f = *f;
            move |e: f64| f.evaluate_unprepared(e)
        })
        .collect();
    let prepared: Vec<_> = levels.iter().map(RrcIntegrand::prepare).collect();
    let cfg = LaunchConfig::new(8, 64);

    let mut c = Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1500))
        .sample_size(30);

    // -- SIMT kernel lanes ------------------------------------------------
    let seed_kernel = BinIntegrationKernel {
        integrands: &seed_closures,
        bins: &bins,
        precision: Precision::Double,
        windows: Some(&windows),
        rule: DeviceRule::Simpson { panels: 64 },
    };
    let mut emi = vec![0.0; bins.len()];
    let seed_evals = seed_kernel.execute(cfg, &mut emi);
    let seed_out = emi.clone();

    let fused_kernel = FusedBinKernel {
        integrands: &prepared,
        bins: &bins,
        precision: Precision::Double,
        windows: Some(&windows),
        rule: DeviceRule::Simpson { panels: 64 },
        math: quadrature::MathMode::Exact,
    };
    let fused_evals = fused_kernel.execute(cfg, &mut emi);

    // Cross-check before timing anything: the fused pipeline must agree
    // with the seed numerics within the documented 1e-12 budget.
    let mut max_rel = 0.0f64;
    for (a, b) in seed_out.iter().zip(&emi) {
        if *a != 0.0 {
            max_rel = max_rel.max(((a - b) / a).abs());
        }
    }
    assert!(max_rel <= 1e-12, "fused/seed disagree: {max_rel:e}");

    eprintln!("timing kernel lanes ...");
    c.bench_function("kernel/seed_per_bin", |b| {
        b.iter(|| {
            let mut emi = vec![0.0; bins.len()];
            seed_kernel.execute(cfg, &mut emi)
        })
    });
    c.bench_function("kernel/fused", |b| {
        let mut emi = vec![0.0; bins.len()];
        b.iter(|| fused_kernel.execute(cfg, &mut emi))
    });

    // -- host quadrature lanes (single level, 512 bins) -------------------
    let f = levels[0];
    let mut p = f.prepare();
    eprintln!("timing host quadrature lanes ...");
    c.bench_function("quadrature/seed_per_bin", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(lo, hi) in &bins {
                acc += simpson(|e| f.evaluate_unprepared(e), lo, hi, 64).value;
            }
            acc
        })
    });
    let mut out = vec![0.0; bins.len()];
    c.bench_function("quadrature/fused_bins", |b| {
        b.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            integrate_bins_sampled(BinRule::Simpson { panels: 64 }, &mut p, &bins, &mut out)
        })
    });

    let ms = c.take_measurements();
    let by_id = |id: &str| -> f64 {
        ms.iter()
            .find(|m| m.id == id)
            .unwrap_or_else(|| panic!("missing measurement {id}"))
            .median_ns()
    };
    let kernel_seed = Lane {
        median_ns: by_id("kernel/seed_per_bin"),
        evals: seed_evals,
    };
    let kernel_fused = Lane {
        median_ns: by_id("kernel/fused"),
        evals: fused_evals,
    };
    let quad_seed_evals = 512 * (2 * 64 + 1) as u64;
    let quad_seed = Lane {
        median_ns: by_id("quadrature/seed_per_bin"),
        evals: quad_seed_evals,
    };
    let quad_fused = Lane {
        median_ns: by_id("quadrature/fused_bins"),
        evals: 2 * 64 + 1 + 511 * (2 * 64) as u64,
    };

    let kernel_speedup = kernel_seed.median_ns / kernel_fused.median_ns;
    let quad_speedup = quad_seed.median_ns / quad_fused.median_ns;

    let bundle = ObjectBuilder::new()
        .field(
            "workload",
            ObjectBuilder::new()
                .field("levels", levels.len() as u64)
                .field("bins", bins.len() as u64)
                .field("rule", "simpson_64")
                .field("threads", 512u64)
                .build(),
        )
        .field(
            "kernel",
            ObjectBuilder::new()
                .field("seed_per_bin", lane_json(&kernel_seed, seed_evals))
                .field("fused", lane_json(&kernel_fused, seed_evals))
                .field("speedup", kernel_speedup)
                .build(),
        )
        .field(
            "quadrature",
            ObjectBuilder::new()
                .field("seed_per_bin", lane_json(&quad_seed, quad_seed_evals))
                .field("fused_bins", lane_json(&quad_fused, quad_seed_evals))
                .field("speedup", quad_speedup)
                .build(),
        )
        .field("max_relative_deviation", max_rel)
        .build();

    let path = "BENCH_hotpath.json";
    std::fs::write(path, bundle.to_pretty()).expect("write results");
    println!("wrote {path}");
    println!("kernel speedup (fused vs seed per-bin): {kernel_speedup:.2}x");
    println!("quadrature speedup (fused vs seed per-bin): {quad_speedup:.2}x");
    assert!(
        kernel_speedup >= 1.5,
        "hot-path acceptance: expected >= 1.5x, got {kernel_speedup:.2}x"
    );
}
