//! Regenerate `BENCH_route.json`: acceptance gates for the locality
//! tier (`rrc-router`'s route cache, single-flight, state affinity,
//! hot-state replication, and migration cache handoff).
//!
//! Four legs, all on the deterministic single-chunk kernel with the
//! same Simpson-64 rule on both paths:
//!
//! 1. **Parity matrix** — with affinity on and the router-tier route
//!    cache enabled, the tier answers **bitwise identically**
//!    (tolerance 0) to the single-engine `SpectralService` across
//!    {1, 2, 4} shards × both scheduling policies, on the cold
//!    fan-out AND on the cached replay, with exact per-ion accounting
//!    and no leaked grants.
//! 2. **Hot-state throughput** — a Zipf-skewed workload (a few hot
//!    plasma states dominate) served by the full locality tier
//!    (affinity + route cache + hot-state replication) vs the same
//!    tier with every locality feature off. A route hit replays the
//!    assembled spectrum without any scatter/gather, so the wall-clock
//!    ratio is the honest figure here (the compute itself is identical
//!    and shard-cache-served on both sides). Gate: ≥ 3×.
//! 3. **Warm hand-over** — a skewed ring is rebalanced after the tier
//!    is warm. With the migration handoff on, the donor's cached
//!    partials arrive at the new owner before the drain, so the
//!    post-migration hit rate must be at least the no-handoff
//!    baseline's (in practice: 100% vs a forced recompute).
//! 4. **Zero leaked grants** across every leg.
//!
//! `--smoke` shrinks the database and the load for CI; every gate
//! stays asserted and the JSON is still written.

use std::sync::Arc;
use std::time::Instant;

use atomdb::{AtomDatabase, DatabaseConfig};
use hybrid_sched::SchedPolicy;
use jsonlite::ObjectBuilder;
use rrc_router::{splitmix64, RouterConfig, ShardRouter};
use rrc_service::{ElementSelection, ServiceConfig, SpectralService, SpectrumRequest};
use rrc_spectral::{EnergyGrid, GridPoint};

struct Scale {
    max_z: u8,
    bins: usize,
    parity_points: usize,
    zipf_states: usize,
    zipf_requests: usize,
}

fn scale(smoke: bool) -> Scale {
    if smoke {
        Scale {
            max_z: 5,
            bins: 32,
            parity_points: 2,
            zipf_states: 8,
            zipf_requests: 120,
        }
    } else {
        Scale {
            max_z: 8,
            bins: 64,
            parity_points: 3,
            zipf_states: 12,
            zipf_requests: 360,
        }
    }
}

fn point_at(index: usize) -> GridPoint {
    GridPoint {
        temperature_k: 9.0e6 + 6.7e5 * index as f64,
        density_cm3: 1.0,
        time_s: 0.0,
        index,
    }
}

fn all_request(index: usize) -> SpectrumRequest {
    SpectrumRequest::new(point_at(index), ElementSelection::All, 0)
}

fn bitwise_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Single-engine ground truth, leak-checked.
fn baseline(
    db: &Arc<AtomDatabase>,
    grids: &[EnergyGrid],
    requests: &[SpectrumRequest],
) -> Vec<Vec<f64>> {
    let service =
        SpectralService::start(ServiceConfig::deterministic(Arc::clone(db), grids.to_vec()));
    let out = requests
        .iter()
        .map(|r| {
            service
                .submit(r.clone())
                .expect("baseline submit")
                .wait()
                .expect("baseline response")
                .bins
        })
        .collect();
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0, "baseline leaked grants");
    out
}

/// A deterministic Zipf(s=1.1)-skewed sequence of state indices in
/// `[0, states)`: rank r is drawn with weight 1/(r+1)^1.1, shuffled by
/// a fixed-seed splitmix stream so hot states interleave with cold.
fn zipf_workload(states: usize, requests: usize) -> Vec<usize> {
    let weights: Vec<f64> = (0..states)
        .map(|r| 1.0 / ((r + 1) as f64).powf(1.1))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(states);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..requests)
        .map(|i| {
            let u = (splitmix64(0xD1CE ^ i as u64) >> 11) as f64 / (1u64 << 53) as f64;
            cdf.iter().position(|&c| u < c).unwrap_or(states - 1)
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = scale(smoke);
    let db = Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: s.max_z,
        ..DatabaseConfig::default()
    }));
    let grids = vec![EnergyGrid::paper_waveband(s.bins)];
    let total_ions = db.ions().len() as u64;
    let mut leaked_total = 0u64;

    // -- 1. parity matrix (affinity + route cache on) ------------------------
    eprintln!("locality parity across shards x policy ...");
    let parity_requests: Vec<SpectrumRequest> = (0..s.parity_points).map(all_request).collect();
    let expected = baseline(&db, &grids, &parity_requests);
    let mut parity_trials: Vec<jsonlite::Value> = Vec::new();
    let mut parity_pass = true;
    for shards in [1usize, 2, 4] {
        for policy in [SchedPolicy::CostAware, SchedPolicy::PaperCount] {
            let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids.clone());
            cfg.shards = shards;
            cfg.replicas = 2;
            cfg.engine.policy = policy;
            cfg.route_cache_capacity = 64;
            let router = ShardRouter::start(cfg);
            let mut trial_bitwise = true;
            let mut trial_exact = true;
            let mut replay_zero_compute = true;
            // Cold fan-out, then the cached replay of the same states.
            for pass in 0..2 {
                for (req, want) in parity_requests.iter().zip(&expected) {
                    let got = router.query(req).expect("locality response");
                    trial_bitwise &= bitwise_equal(&got.bins, want);
                    trial_exact &= got.ions_computed + got.ions_from_cache == total_ions;
                    if pass == 1 {
                        replay_zero_compute &= got.ions_computed == 0;
                    }
                }
            }
            let report = router.shutdown();
            leaked_total += report.leaked_grants;
            let hits = report.snapshot.counters.route_hits;
            let pass = trial_bitwise
                && trial_exact
                && replay_zero_compute
                && hits >= s.parity_points as u64
                && report.leaked_grants == 0;
            parity_pass &= pass;
            eprintln!(
                "  shards={shards} policy={policy:?}: bitwise {trial_bitwise}  \
                 exact {trial_exact}  replay-no-compute {replay_zero_compute}  \
                 hits {hits}  leaked {}",
                report.leaked_grants
            );
            assert!(pass, "locality parity: shards={shards} policy={policy:?}");
            parity_trials.push(
                ObjectBuilder::new()
                    .field("shards", shards as u64)
                    .field("policy", format!("{policy:?}"))
                    .field("bitwise", trial_bitwise)
                    .field("exact_accounting", trial_exact)
                    .field("replay_zero_compute", replay_zero_compute)
                    .field("route_hits", hits)
                    .field("leaked_grants", report.leaked_grants)
                    .field("pass", pass)
                    .build(),
            );
        }
    }

    // -- 2. Zipf hot-state throughput ----------------------------------------
    eprintln!("zipf hot-state throughput: locality tier on vs off ...");
    let workload = zipf_workload(s.zipf_states, s.zipf_requests);
    let run_tier = |locality: bool| -> (f64, rrc_router::RouterReport) {
        let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids.clone());
        cfg.shards = 2;
        cfg.replicas = 2;
        cfg.affinity = locality;
        cfg.route_cache_capacity = if locality { 256 } else { 0 };
        cfg.hot_state_k = if locality { 4 } else { 0 };
        let router = ShardRouter::start(cfg);
        // Identical warmup on both sides: every distinct state served
        // once, so the timed section compares steady-state serving,
        // not first-touch compute.
        for state in 0..s.zipf_states {
            router.query(&all_request(state)).expect("warmup");
        }
        let started = Instant::now();
        for &state in &workload {
            let got = router.query(&all_request(state)).expect("zipf request");
            assert_eq!(got.ions_computed + got.ions_from_cache, total_ions);
        }
        (started.elapsed().as_secs_f64(), router.shutdown())
    };
    let (elapsed_off, report_off) = run_tier(false);
    let (elapsed_on, report_on) = run_tier(true);
    leaked_total += report_off.leaked_grants + report_on.leaked_grants;
    let throughput_ratio = elapsed_off / elapsed_on.max(1e-12);
    let on_hits = report_on.snapshot.counters.route_hits + report_on.snapshot.counters.coalesced;
    let throughput_pass = throughput_ratio >= 3.0
        && on_hits >= s.zipf_requests as u64
        && report_off.leaked_grants == 0
        && report_on.leaked_grants == 0;
    eprintln!(
        "  {} requests over {} states: off {elapsed_off:.4}s vs on {elapsed_on:.4}s \
         ({throughput_ratio:.1}x), {on_hits} route hits",
        s.zipf_requests, s.zipf_states
    );
    assert!(
        throughput_pass,
        "zipf throughput {throughput_ratio:.2}x below 3x with the locality tier on"
    );

    // -- 3. warm hand-over across a rebalance --------------------------------
    eprintln!("migration cache handoff: warm hit rate vs no-handoff control ...");
    let probe: Vec<SpectrumRequest> = (0..s.parity_points).map(all_request).collect();
    let probe_expected = baseline(&db, &grids, &probe);
    let run_migration = |handoff: bool| -> (u64, f64, u64) {
        let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids.clone());
        cfg.shards = 2;
        cfg.vnodes = 1; // coarse ring: guaranteed skew for the rebalancer
        cfg.rebalance_factor = 1.0;
        cfg.migration_handoff = handoff;
        let router = ShardRouter::start(cfg);
        for (req, want) in probe.iter().zip(&probe_expected) {
            let got = router.query(req).expect("warming query");
            assert!(bitwise_equal(&got.bins, want), "warming parity");
        }
        let mut handed_off = 0u64;
        let mut passes = 0u32;
        while let Some(report) = router.rebalance() {
            handed_off += report.handed_off;
            passes += 1;
            if passes >= 32 {
                break;
            }
        }
        assert!(passes > 0, "the skewed ring must trigger a migration");
        let mut cached = 0u64;
        for (req, want) in probe.iter().zip(&probe_expected) {
            let got = router.query(req).expect("post-migration query");
            assert!(bitwise_equal(&got.bins, want), "post-migration parity");
            assert_eq!(got.ions_computed + got.ions_from_cache, total_ions);
            cached += got.ions_from_cache;
        }
        let hit_rate = cached as f64 / (total_ions * probe.len() as u64) as f64;
        let report = router.shutdown();
        (handed_off, hit_rate, report.leaked_grants)
    };
    let (handed_off, warm_rate, leaked_warm) = run_migration(true);
    let (control_handed, cold_rate, leaked_cold) = run_migration(false);
    leaked_total += leaked_warm + leaked_cold;
    let handoff_pass = handed_off > 0
        && control_handed == 0
        && warm_rate >= cold_rate
        && (warm_rate - 1.0).abs() < f64::EPSILON
        && leaked_warm + leaked_cold == 0;
    eprintln!(
        "  handed off {handed_off} partial(s); post-migration hit rate \
         {warm_rate:.3} (handoff) vs {cold_rate:.3} (control)"
    );
    assert!(handoff_pass, "migration handoff gate");

    // -- 4. zero leaked grants -----------------------------------------------
    let leaks_pass = leaked_total == 0;
    assert!(leaks_pass, "{leaked_total} grants leaked across the legs");

    // -- bundle --------------------------------------------------------------
    let bundle = ObjectBuilder::new()
        .field("smoke", smoke)
        .field(
            "workload",
            ObjectBuilder::new()
                .field("max_z", u64::from(s.max_z))
                .field("bins", s.bins as u64)
                .field("ions", total_ions)
                .field(
                    "kernel",
                    "deterministic single-chunk, Simpson 64 both paths",
                )
                .build(),
        )
        .field("parity", parity_trials)
        .field(
            "zipf_throughput",
            ObjectBuilder::new()
                .field("states", s.zipf_states as u64)
                .field("requests", s.zipf_requests as u64)
                .field("elapsed_off_s", elapsed_off)
                .field("elapsed_on_s", elapsed_on)
                .field("ratio", throughput_ratio)
                .field("route_hits", report_on.snapshot.counters.route_hits)
                .field("coalesced", report_on.snapshot.counters.coalesced)
                .field("fanouts", report_on.snapshot.counters.fanouts)
                .field("affinity_picks", report_on.snapshot.counters.affinity_picks)
                .build(),
        )
        .field(
            "handoff",
            ObjectBuilder::new()
                .field("handed_off_partials", handed_off)
                .field("warm_hit_rate", warm_rate)
                .field("control_hit_rate", cold_rate)
                .build(),
        )
        .field(
            "gates",
            ObjectBuilder::new()
                .field(
                    "locality_bitwise_parity",
                    ObjectBuilder::new().field("pass", parity_pass).build(),
                )
                .field(
                    "zipf_hot_state_3x",
                    ObjectBuilder::new()
                        .field("ratio", throughput_ratio)
                        .field("pass", throughput_pass)
                        .build(),
                )
                .field(
                    "warm_handoff_hit_rate",
                    ObjectBuilder::new()
                        .field("warm", warm_rate)
                        .field("cold", cold_rate)
                        .field("pass", handoff_pass)
                        .build(),
                )
                .field(
                    "zero_leaked_grants",
                    ObjectBuilder::new().field("pass", leaks_pass).build(),
                )
                .build(),
        )
        .build();

    let path = "BENCH_route.json";
    std::fs::write(path, bundle.to_pretty()).expect("write results");
    println!("wrote {path}");
    println!(
        "route acceptance: bitwise parity (cold + replay) across 6 shard/policy \
         configs, zipf hot-state serving {throughput_ratio:.1}x (>= 3x) with the \
         locality tier on, {handed_off} cached partials handed over a migration \
         (hit rate {warm_rate:.2} vs {cold_rate:.2} control), zero leaked grants"
    );
}
