//! Regenerate `BENCH_shard.json`: acceptance gates for the sharded
//! multi-engine service tier (`rrc-router`).
//!
//! Four legs, all on the deterministic single-chunk kernel with the
//! same Simpson-64 rule on both paths:
//!
//! 1. **Parity matrix** — the sharded tier answers **bitwise
//!    identically** (tolerance 0) to the single-engine
//!    `SpectralService` across {1, 2, 4} shards × both scheduling
//!    policies, with exact per-ion accounting and no leaked grants.
//! 2. **Aggregate throughput** — a cache-cold, mixed-element,
//!    open-loop load on 4 single-device shards vs 1. The host has too
//!    few cores to time 5 simulated engines honestly in wall-clock,
//!    so the gate compares **modeled makespans**: the maximum device
//!    `virtual_busy_seconds` across each tier's engines (devices and
//!    engines run concurrently; the busiest device bounds the tier).
//!    Gate: ≥ 1.8× at 4 shards.
//! 3. **Quarantine chaos** — every device of one replica is
//!    sticky-lost under concurrent load. Gates: 100% of in-flight and
//!    subsequent requests complete (replica re-route, CPU fallback as
//!    last resort), the victim demotes out of selection, zero leaked
//!    grants.
//! 4. **Rebalance** — a deliberately skewed ring (one vnode per
//!    segment) is levelled by the capacity rebalancer under
//!    concurrent load. Gates: ions migrate, the capacity skew
//!    narrows, no request is lost or double-computed (exact per-ion
//!    accounting + bitwise responses throughout), zero leaked grants.
//!
//! `--smoke` shrinks the database and the load for CI; every gate
//! stays asserted and the JSON is still written.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use atomdb::{AtomDatabase, DatabaseConfig};
use hybrid_sched::SchedPolicy;
use jsonlite::ObjectBuilder;
use rrc_router::{RouterConfig, RouterReport, ShardRouter};
use rrc_service::{ElementSelection, ServiceConfig, SpectralService, SpectrumRequest};
use rrc_spectral::{EnergyGrid, GridPoint};

struct Scale {
    max_z: u8,
    bins: usize,
    parity_points: usize,
    throughput_requests: usize,
    chaos_requests_per_worker: usize,
}

fn scale(smoke: bool) -> Scale {
    if smoke {
        Scale {
            max_z: 5,
            bins: 32,
            parity_points: 2,
            throughput_requests: 10,
            chaos_requests_per_worker: 6,
        }
    } else {
        Scale {
            max_z: 8,
            bins: 64,
            parity_points: 3,
            throughput_requests: 24,
            chaos_requests_per_worker: 12,
        }
    }
}

fn point_at(index: usize) -> GridPoint {
    GridPoint {
        temperature_k: 9.0e6 + 6.7e5 * index as f64,
        density_cm3: 1.0,
        time_s: 0.0,
        index,
    }
}

fn all_request(index: usize) -> SpectrumRequest {
    SpectrumRequest::new(point_at(index), ElementSelection::All, 0)
}

/// Mixed-element open-loop load: rotate between the full selection and
/// light/heavy element subsets, every request at a distinct plasma
/// state (cache-cold by construction).
fn mixed_request(index: usize, max_z: u8) -> SpectrumRequest {
    let elements = match index % 3 {
        0 => ElementSelection::All,
        1 => ElementSelection::Elements((1..=max_z / 2).collect()),
        _ => ElementSelection::Elements((max_z / 2 + 1..=max_z).collect()),
    };
    SpectrumRequest::new(point_at(index), elements, 0)
}

fn bitwise_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Single-engine ground truth, leak-checked.
fn baseline(
    db: &Arc<AtomDatabase>,
    grids: &[EnergyGrid],
    requests: &[SpectrumRequest],
) -> Vec<Vec<f64>> {
    let service =
        SpectralService::start(ServiceConfig::deterministic(Arc::clone(db), grids.to_vec()));
    let out = requests
        .iter()
        .map(|r| {
            service
                .submit(r.clone())
                .expect("baseline submit")
                .wait()
                .expect("baseline response")
                .bins
        })
        .collect();
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0, "baseline leaked grants");
    out
}

/// The modeled tier makespan: devices within an engine and engines
/// within the tier run concurrently, so the busiest device bounds the
/// whole tier's virtual completion time.
fn modeled_makespan(report: &RouterReport) -> f64 {
    report
        .engines
        .iter()
        .flat_map(|e| e.device_virtual_seconds.iter().copied())
        .fold(0.0, f64::max)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = scale(smoke);
    let db = Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: s.max_z,
        ..DatabaseConfig::default()
    }));
    let grids = vec![EnergyGrid::paper_waveband(s.bins)];
    let total_ions = db.ions().len() as u64;

    // -- 1. parity matrix ----------------------------------------------------
    eprintln!("parity across shards x policy ...");
    let parity_requests: Vec<SpectrumRequest> = (0..s.parity_points).map(all_request).collect();
    let expected = baseline(&db, &grids, &parity_requests);
    let mut parity_trials: Vec<jsonlite::Value> = Vec::new();
    let mut parity_pass = true;
    for shards in [1usize, 2, 4] {
        for policy in [SchedPolicy::CostAware, SchedPolicy::PaperCount] {
            let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids.clone());
            cfg.shards = shards;
            cfg.engine.policy = policy;
            let router = ShardRouter::start(cfg);
            let mut trial_bitwise = true;
            let mut trial_exact = true;
            for (req, want) in parity_requests.iter().zip(&expected) {
                let got = router.query(req).expect("sharded response");
                trial_bitwise &= bitwise_equal(&got.bins, want);
                trial_exact &= got.ions_computed + got.ions_from_cache == total_ions;
            }
            let report = router.shutdown();
            let pass = trial_bitwise && trial_exact && report.leaked_grants == 0;
            parity_pass &= pass;
            eprintln!(
                "  shards={shards} policy={policy:?}: bitwise {trial_bitwise}  \
                 exact {trial_exact}  leaked {}",
                report.leaked_grants
            );
            assert!(pass, "parity: shards={shards} policy={policy:?}");
            parity_trials.push(
                ObjectBuilder::new()
                    .field("shards", shards as u64)
                    .field("policy", format!("{policy:?}"))
                    .field("bitwise", trial_bitwise)
                    .field("exact_accounting", trial_exact)
                    .field("leaked_grants", report.leaked_grants)
                    .field("pass", pass)
                    .build(),
            );
        }
    }

    // -- 2. aggregate throughput (modeled makespan) --------------------------
    eprintln!("cache-cold mixed-element throughput, 4 shards vs 1 ...");
    let run_tier = |shards: usize| -> (u64, RouterReport) {
        let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids.clone());
        cfg.shards = shards;
        cfg.engine.gpus = 1; // one device per shard: resources scale with shards
        cfg.engine.max_queue_len = 100_000; // keep every task device-placed
        cfg.cache_capacity = 0; // cache-cold
        let router = ShardRouter::start(cfg);
        // Level ring skew from the capacity model before the timed
        // load so the 4-shard figure measures sharding, not ring luck.
        let mut passes = 0u32;
        while router.rebalance().is_some() && passes < 32 {
            passes += 1;
        }
        let mut served = 0u64;
        for i in 0..s.throughput_requests {
            let got = router
                .query(&mixed_request(i, s.max_z))
                .expect("throughput request");
            assert!(got.bins.iter().all(|b| b.is_finite()));
            served += 1;
        }
        (served, router.shutdown())
    };
    let (served_1, report_1) = run_tier(1);
    let (served_4, report_4) = run_tier(4);
    let makespan_1 = modeled_makespan(&report_1);
    let makespan_4 = modeled_makespan(&report_4);
    let throughput_ratio = makespan_1 / makespan_4.max(1e-12);
    let throughput_pass = served_1 == s.throughput_requests as u64
        && served_4 == s.throughput_requests as u64
        && report_1.leaked_grants == 0
        && report_4.leaked_grants == 0
        && throughput_ratio >= 1.8;
    eprintln!(
        "  modeled makespan: 1 shard {makespan_1:.3}s vs 4 shards {makespan_4:.3}s \
         ({throughput_ratio:.2}x)"
    );
    assert!(
        throughput_pass,
        "aggregate throughput {throughput_ratio:.2}x below 1.8x at 4 shards"
    );

    // -- 3. quarantine chaos -------------------------------------------------
    eprintln!("quarantine chaos: sticky-lose one replica under load ...");
    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids.clone());
    cfg.shards = 2;
    cfg.replicas = 2;
    cfg.cache_capacity = 0;
    let router = Arc::new(ShardRouter::start(cfg));
    let victim_gpus = router.replica(0, 0).engine().gpus();
    let fault_dropped = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let router = Arc::clone(&router);
            let fault_dropped = Arc::clone(&fault_dropped);
            let per_worker = s.chaos_requests_per_worker;
            std::thread::spawn(move || {
                let mut completed = 0u64;
                for i in 0..per_worker {
                    // Drop the fault mid-load from worker 0: requests
                    // already in flight and everything after must
                    // still complete.
                    if w == 0 && i == per_worker / 3 {
                        for d in 0..victim_gpus {
                            router
                                .replica(0, 0)
                                .engine()
                                .device_faults(d)
                                .expect("device exists")
                                .force_lose();
                        }
                        fault_dropped.store(true, Ordering::Release);
                    }
                    let req = all_request(w * per_worker + i);
                    let got = router.query(&req).expect("request completes under chaos");
                    assert_eq!(
                        got.ions_computed + got.ions_from_cache,
                        total_ions,
                        "exact accounting under chaos"
                    );
                    completed += 1;
                }
                completed
            })
        })
        .collect();
    let completed: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    assert!(fault_dropped.load(Ordering::Acquire));
    // The victim may need one more routed request to notice both
    // losses; poke until the ladder demotes it (bounded).
    let mut demoted = router.replica(0, 0).demoted();
    let mut pokes = 0;
    while !demoted && pokes < 16 {
        let _ = router.query(&all_request(1000 + pokes)).expect("poke");
        demoted = router.replica(0, 0).demoted();
        pokes += 1;
    }
    let issued = 2 * s.chaos_requests_per_worker as u64;
    let chaos_report = Arc::try_unwrap(router)
        .ok()
        .expect("chaos workers joined")
        .shutdown();
    let chaos_pass = completed == issued
        && demoted
        && chaos_report.leaked_grants == 0
        && chaos_report.snapshot.counters.device_failed == 0;
    eprintln!(
        "  completed {completed}/{issued}  demoted {demoted}  leaked {}  refused {}",
        chaos_report.leaked_grants, chaos_report.snapshot.counters.device_failed
    );
    assert!(chaos_pass, "quarantine chaos gate");

    // -- 4. rebalance under load ---------------------------------------------
    eprintln!("capacity rebalance under concurrent load ...");
    let probe: Vec<SpectrumRequest> = (0..s.parity_points).map(all_request).collect();
    let probe_expected = baseline(&db, &grids, &probe);
    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids.clone());
    cfg.shards = 2;
    cfg.vnodes = 1; // coarse ring: guaranteed skew for the rebalancer
    cfg.rebalance_factor = 1.0;
    let router = Arc::new(ShardRouter::start(cfg));
    let skew = |r: &ShardRouter| -> u64 {
        let costs: Vec<u64> = r
            .snapshot()
            .segments
            .iter()
            .map(|g| g.capacity_cost)
            .collect();
        costs.iter().max().unwrap() - costs.iter().min().unwrap()
    };
    let skew_before = skew(&router);
    let stop = Arc::new(AtomicBool::new(false));
    let served_counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let load: Vec<_> = (0..2)
        .map(|w| {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let served_counter = Arc::clone(&served_counter);
            let probe = probe.clone();
            let expected = probe_expected.clone();
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut ok = true;
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let slot = i % probe.len();
                    let got = router.query(&probe[slot]).expect("query during rebalance");
                    ok &= bitwise_equal(&got.bins, &expected[slot]);
                    ok &= got.ions_computed + got.ions_from_cache == total_ions;
                    served += 1;
                    served_counter.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                (served, ok)
            })
        })
        .collect();
    let mut migrated = 0u64;
    let mut passes = 0u64;
    while let Some(report) = router.rebalance() {
        migrated += report.ions.len() as u64;
        passes += 1;
        if passes >= 32 {
            break;
        }
    }
    // The rebalancer may converge before the load threads complete a
    // single request; keep the concurrent load alive until a few
    // responses have actually raced the (already migrated) table.
    while served_counter.load(Ordering::Relaxed) < 4 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    let mut served_during = 0u64;
    let mut load_ok = true;
    for handle in load {
        let (served, ok) = handle.join().expect("load worker");
        served_during += served;
        load_ok &= ok;
    }
    let skew_after = skew(&router);
    // Post-migration probes must still match the single-engine bits.
    let mut post_ok = true;
    for (req, want) in probe.iter().zip(&probe_expected) {
        let got = router.query(req).expect("post-migration response");
        post_ok &= bitwise_equal(&got.bins, want);
    }
    let rebalance_report = Arc::try_unwrap(router)
        .ok()
        .expect("load workers joined")
        .shutdown();
    let rebalance_pass = migrated > 0
        && skew_after < skew_before
        && served_during > 0
        && load_ok
        && post_ok
        && rebalance_report.leaked_grants == 0
        && rebalance_report.snapshot.counters.device_failed == 0;
    eprintln!(
        "  migrated {migrated} ions over {passes} passes; skew {skew_before} -> {skew_after}; \
         {served_during} concurrent requests all exact+bitwise: {load_ok}"
    );
    assert!(rebalance_pass, "rebalance gate");

    // -- bundle --------------------------------------------------------------
    let bundle = ObjectBuilder::new()
        .field("smoke", smoke)
        .field(
            "workload",
            ObjectBuilder::new()
                .field("max_z", u64::from(s.max_z))
                .field("bins", s.bins as u64)
                .field("ions", total_ions)
                .field(
                    "kernel",
                    "deterministic single-chunk, Simpson 64 both paths",
                )
                .build(),
        )
        .field("parity", parity_trials)
        .field(
            "throughput",
            ObjectBuilder::new()
                .field("requests", s.throughput_requests as u64)
                .field("modeled_makespan_1_shard_s", makespan_1)
                .field("modeled_makespan_4_shards_s", makespan_4)
                .field("ratio", throughput_ratio)
                .field(
                    "leaked_grants",
                    report_1.leaked_grants + report_4.leaked_grants,
                )
                .build(),
        )
        .field(
            "quarantine",
            ObjectBuilder::new()
                .field("issued", issued)
                .field("completed", completed)
                .field("victim_demoted", demoted)
                .field("refused", chaos_report.snapshot.counters.device_failed)
                .field("reroutes", chaos_report.snapshot.counters.reroutes)
                .field(
                    "demoted_skips",
                    chaos_report.snapshot.counters.demoted_skips,
                )
                .field("leaked_grants", chaos_report.leaked_grants)
                .build(),
        )
        .field(
            "rebalance",
            ObjectBuilder::new()
                .field("migrated_ions", migrated)
                .field("passes", passes)
                .field("capacity_skew_before", skew_before)
                .field("capacity_skew_after", skew_after)
                .field("concurrent_requests", served_during)
                .field("leaked_grants", rebalance_report.leaked_grants)
                .build(),
        )
        .field(
            "gates",
            ObjectBuilder::new()
                .field(
                    "sharded_bitwise_parity",
                    ObjectBuilder::new().field("pass", parity_pass).build(),
                )
                .field(
                    "aggregate_throughput_1_8x",
                    ObjectBuilder::new()
                        .field("ratio", throughput_ratio)
                        .field("pass", throughput_pass)
                        .build(),
                )
                .field(
                    "quarantine_full_completion",
                    ObjectBuilder::new().field("pass", chaos_pass).build(),
                )
                .field(
                    "rebalance_exactly_once",
                    ObjectBuilder::new().field("pass", rebalance_pass).build(),
                )
                .field(
                    "zero_leaked_grants",
                    ObjectBuilder::new()
                        .field(
                            "pass",
                            report_1.leaked_grants
                                + report_4.leaked_grants
                                + chaos_report.leaked_grants
                                + rebalance_report.leaked_grants
                                == 0,
                        )
                        .build(),
                )
                .build(),
        )
        .build();

    let path = "BENCH_shard.json";
    std::fs::write(path, bundle.to_pretty()).expect("write results");
    println!("wrote {path}");
    println!(
        "shard acceptance: bitwise parity across 6 shard/policy configs, modeled \
         aggregate throughput {throughput_ratio:.2}x (>= 1.8x) at 4 shards, quarantine \
         chaos {completed}/{issued} completed with demotion, rebalance migrated \
         {migrated} ions exactly-once, zero leaked grants"
    );
}
