//! Regenerate paper Table II: the NEI workload's speedup on 1–4 GPUs
//! relative to the 24-rank pure-MPI version.

use hybrid_spectral::experiments::nei_scaling::{self};
use hybrid_spectral::Calibration;
use spectral_bench::{f1, pct, render_table};

fn main() {
    let calib = Calibration::paper();
    // 4000 tasks per rank: a 1/1042 subset of the paper's 10^8 tasks,
    // projected back (steady-state scaling; see the driver docs).
    let report = nei_scaling::run(&calib, 4000);

    println!("== Table II: NEI speedup on different numbers of GPUs ==\n");
    println!(
        "pure-MPI baseline at paper scale: {} s (anchor: 8784 s)\n",
        f1(report.mpi_s)
    );
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.gpus.to_string(),
                f1(r.speedup),
                f1(r.paper_speedup),
                f1(r.time_s),
                f1(r.paper_time_s),
                pct(r.gpu_ratio_percent),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "GPUs",
                "speedup (ours)",
                "speedup (paper)",
                "time s (ours)",
                "time s (paper)",
                "GPU ratio",
            ],
            &rows
        )
    );
    println!("(the paper's 1->4 GPU scaling is superlinear (5.4x), which a");
    println!(" work-conserving queueing model cannot produce; we reproduce the");
    println!(" monotone scaling and the magnitude of the hybrid-vs-MPI win.)");
}
