//! Run every experiment and write a machine-readable bundle
//! (`repro_results.json`) for `EXPERIMENTS.md` bookkeeping.

use hybrid_spectral::experiments::{accuracy, granularity, nei_scaling, qlen_sweep, romberg_load};
use hybrid_spectral::Calibration;
use spectral_bench::paper_inputs;

fn main() {
    let (workload, calib) = paper_inputs();

    eprintln!("fig3: granularity speedups ...");
    let fig3 = granularity::run(&workload, &calib);
    eprintln!("fig4/fig5: queue-length sweep ...");
    let qlen = qlen_sweep::run(&workload, &calib);
    eprintln!("fig6/table1: Romberg load sweep ...");
    let romberg = romberg_load::run(&workload, &calib);
    eprintln!("table2: NEI scaling ...");
    let nei = nei_scaling::run(&Calibration::paper(), 4000);
    eprintln!("fig7/fig8: accuracy (real numerics, this takes the longest) ...");
    let acc = accuracy::run(accuracy::AccuracyConfig::default());

    let bundle = serde_json::json!({
        "fig3": fig3,
        "fig4_fig5": qlen,
        "fig6_table1": romberg,
        "table2": nei,
        "fig7_fig8": {
            "error_min_percent": acc.min_error,
            "error_max_percent": acc.max_error,
            "within_0_0005_percent": acc.within_half_milli_percent,
            "gpu_ratio_percent": acc.gpu_ratio_percent,
            "bins": acc.errors_percent.len(),
        },
    });
    let path = "repro_results.json";
    std::fs::write(path, serde_json::to_string_pretty(&bundle).expect("serialize"))
        .expect("write results");
    println!("wrote {path}");
}
