//! Run every experiment and write a machine-readable bundle
//! (`repro_results.json`) for `EXPERIMENTS.md` bookkeeping.

use hybrid_spectral::experiments::{accuracy, granularity, nei_scaling, qlen_sweep, romberg_load};
use hybrid_spectral::Calibration;
use jsonlite::{ObjectBuilder, Value};
use spectral_bench::paper_inputs;

fn fig3_json(r: &granularity::Fig3Report) -> Value {
    ObjectBuilder::new()
        .field("serial_s", r.serial_s)
        .field("mpi_s", r.mpi_s)
        .field("mpi_speedup", r.mpi_speedup)
        .field(
            "rows",
            r.rows
                .iter()
                .map(|row| {
                    ObjectBuilder::new()
                        .field("gpus", row.gpus)
                        .field("ion_speedup", row.ion_speedup)
                        .field("level_speedup", row.level_speedup)
                        .field("paper_ion", row.paper_ion)
                        .field("paper_level", row.paper_level)
                        .field("ion_gpu_ratio", row.ion_gpu_ratio)
                        .build()
                })
                .collect::<Vec<_>>(),
        )
        .build()
}

fn qlen_json(r: &qlen_sweep::QlenReport) -> Value {
    ObjectBuilder::new()
        .field(
            "cells",
            r.cells
                .iter()
                .map(|c| {
                    ObjectBuilder::new()
                        .field("gpus", c.gpus)
                        .field("qlen", c.qlen as f64)
                        .field("total_s", c.total_s)
                        .field("gpu_ratio_percent", c.gpu_ratio_percent)
                        .build()
                })
                .collect::<Vec<_>>(),
        )
        .field(
            "tuned_qlen",
            r.tuned_qlen
                .iter()
                .map(|&(gpus, qlen)| {
                    ObjectBuilder::new()
                        .field("gpus", gpus)
                        .field("qlen", qlen as f64)
                        .build()
                })
                .collect::<Vec<_>>(),
        )
        .build()
}

fn romberg_json(r: &romberg_load::RombergReport) -> Value {
    ObjectBuilder::new()
        .field(
            "rows",
            r.rows
                .iter()
                .map(|row| {
                    ObjectBuilder::new()
                        .field("k", row.k)
                        .field("tasks_on_gpu", row.tasks_on_gpu as f64)
                        .field("gpu_ratio_percent", row.gpu_ratio_percent)
                        .field("load_percent", row.load_percent.to_vec())
                        .field("total_s", row.total_s)
                        .build()
                })
                .collect::<Vec<_>>(),
        )
        .build()
}

fn nei_json(r: &nei_scaling::Table2Report) -> Value {
    ObjectBuilder::new()
        .field("mpi_s", r.mpi_s)
        .field(
            "rows",
            r.rows
                .iter()
                .map(|row| {
                    ObjectBuilder::new()
                        .field("gpus", row.gpus)
                        .field("time_s", row.time_s)
                        .field("speedup", row.speedup)
                        .field("paper_time_s", row.paper_time_s)
                        .field("paper_speedup", row.paper_speedup)
                        .field("gpu_ratio_percent", row.gpu_ratio_percent)
                        .build()
                })
                .collect::<Vec<_>>(),
        )
        .build()
}

fn main() {
    let (workload, calib) = paper_inputs();

    eprintln!("fig3: granularity speedups ...");
    let fig3 = granularity::run(&workload, &calib);
    eprintln!("fig4/fig5: queue-length sweep ...");
    let qlen = qlen_sweep::run(&workload, &calib);
    eprintln!("fig6/table1: Romberg load sweep ...");
    let romberg = romberg_load::run(&workload, &calib);
    eprintln!("table2: NEI scaling ...");
    let nei = nei_scaling::run(&Calibration::paper(), 4000);
    eprintln!("fig7/fig8: accuracy (real numerics, this takes the longest) ...");
    let acc = accuracy::run(accuracy::AccuracyConfig::default());

    let bundle = ObjectBuilder::new()
        .field("fig3", fig3_json(&fig3))
        .field("fig4_fig5", qlen_json(&qlen))
        .field("fig6_table1", romberg_json(&romberg))
        .field("table2", nei_json(&nei))
        .field(
            "fig7_fig8",
            ObjectBuilder::new()
                .field("error_min_percent", acc.min_error)
                .field("error_max_percent", acc.max_error)
                .field("within_0_0005_percent", acc.within_half_milli_percent)
                .field("gpu_ratio_percent", acc.gpu_ratio_percent)
                .field("bins", acc.errors_percent.len())
                .build(),
        )
        .build();
    let path = "repro_results.json";
    std::fs::write(path, bundle.to_pretty()).expect("write results");
    println!("wrote {path}");
}
