//! Regenerate `BENCH_simd.json`: acceptance gates for the vectorized
//! math layer and small-ion launch aggregation.
//!
//! Five gates:
//!
//! 1. **`vexp` microbench** — the lane-parallel exponential must be
//!    ≥ 2x faster than a scalar `f64::exp` loop over the same
//!    log-spaced argument batch (full RRC exponent range, including
//!    the `exp(-40)` window-cutoff region).
//! 2. **End-to-end ion sweep** — `MathMode::Vector` must be ≥ 1.4x
//!    faster than `MathMode::Exact` over the paper workload (full
//!    periodic table, paper waveband, Simpson-64 fused path) on one
//!    thread.
//! 3. **Launch aggregation** — on a tiny-ion-heavy adversarial mix
//!    (single-level tasks, 16-bin grid), packing small grants into
//!    aggregated launches must cut the *modeled* device busy time per
//!    device task by ≥ 1.2x. This half is deterministic: it reads the
//!    cost model's `virtual_busy_seconds`, not wall clock.
//! 4. **Accuracy** — Vector-mode spectra stay within 1e-12 relative of
//!    Exact, and `vexp` within 1e-14 of `f64::exp` per element.
//! 5. **Bitwise parity** — in Exact mode every engine ion partial
//!    matches the serial reference bitwise with aggregation on and
//!    off (0, 1 and 2 GPUs).
//!
//! The pack threshold fed to gate 3 is chosen by the existing
//! [`AutoTuner`] sweeping candidate thresholds against modeled device
//! seconds; the sweep observations are reported in the JSON.
//!
//! `--smoke` shrinks the workloads for CI. The deterministic gates
//! (3, 4, 5) stay asserted; the two wall-clock gates (1, 2) are
//! measured and reported but only *enforced* in full runs, so noisy
//! shared runners cannot flake the job.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

use atomdb::{AtomDatabase, DatabaseConfig};
use gpu_sim::{DeviceRule, Precision};
use hybrid_sched::{AutoTuner, SchedPolicy, TuningConfig};
use hybrid_spectral::engine::{Engine, EngineConfig, IonJob, IonOutcome};
use jsonlite::ObjectBuilder;
use microbench::{black_box, Criterion};
use quadrature::{simd, MathMode, QagsWorkspace};
use rrc_spectral::{ion_emissivity_into_mode, EnergyGrid, GridPoint, Integrator, SerialCalculator};

/// Log-spaced exponential arguments `-|x|` covering the whole RRC
/// range: from the near-threshold region (~1e-4) out past the
/// `exp(-40)` window cutoff to the underflow edge.
fn exp_args(n: usize) -> Vec<f64> {
    let (lo, hi) = (1e-4f64, 700.0f64);
    let ratio = hi / lo;
    (0..n)
        .map(|i| -(lo * ratio.powf(i as f64 / (n - 1) as f64)))
        .collect()
}

fn point() -> GridPoint {
    GridPoint {
        temperature_k: 1.0e7,
        density_cm3: 1.0,
        time_s: 0.0,
        index: 0,
    }
}

/// One full-table single-threaded ion sweep in `math` mode; returns
/// the spectrum so the caller can cross-check modes.
fn ion_sweep(
    db: &AtomDatabase,
    grid: &EnergyGrid,
    ws: &mut QagsWorkspace,
    out: &mut [f64],
    math: MathMode,
) -> u64 {
    out.iter_mut().for_each(|v| *v = 0.0);
    let p = point();
    let mut evals = 0;
    for ion in 0..db.ions().len() {
        evals +=
            ion_emissivity_into_mode(db, ion, &p, grid, Integrator::paper_gpu(), ws, out, math);
    }
    evals
}

/// Engine configuration for the deterministic aggregation halves.
fn engine_config(db: &Arc<AtomDatabase>, gpus: usize, pack_threshold: u64) -> EngineConfig {
    EngineConfig {
        db: Arc::clone(db),
        workers: 1,
        gpus,
        max_queue_len: 64,
        policy: SchedPolicy::CostAware,
        gpu_rule: DeviceRule::Simpson { panels: 64 },
        gpu_precision: Precision::Double,
        cpu_integrator: Integrator::Simpson { panels: 64 },
        fused: true,
        async_window: 1,
        queue_depth: 64,
        deterministic_kernel: true,
        math: MathMode::Exact,
        pack_threshold,
        pack_max: 8,
        resilience: hybrid_spectral::ResilienceConfig::default(),
        tuning: TuningConfig::default(),
    }
}

/// Drive the engine over `rounds` copies of the tiny-ion mix (every
/// ion of the database as a single-level task over a 16-bin grid) and
/// return `(total modeled device seconds, device tasks)`.
fn tiny_mix_device_time(db: &Arc<AtomDatabase>, rounds: u64, pack_threshold: u64) -> (f64, u64) {
    let engine = Engine::start(engine_config(db, 1, pack_threshold));
    let grid = EnergyGrid::linear(50.0, 2000.0, 16);
    let bins = Arc::new(grid.bin_pairs());
    let ions = db.ions().len();
    let (tx, rx) = channel();
    let mut submitted = 0u64;
    for round in 0..rounds {
        for ion_index in 0..ions {
            engine
                .submit(IonJob {
                    ion_index,
                    level_range: 0..1,
                    point: point(),
                    grid: grid.clone(),
                    bins: Arc::clone(&bins),
                    tag: round,
                    deadline: f64::INFINITY,
                    reply: tx.clone(),
                })
                .ok()
                .expect("engine accepts the mix");
            submitted += 1;
        }
    }
    drop(tx);
    let outcomes: Vec<IonOutcome> = rx.iter().collect();
    assert_eq!(outcomes.len() as u64, submitted, "every task must reply");
    let report = engine.shutdown();
    assert_eq!(report.leaked_grants, 0, "aggregation leaked a grant");
    assert!(report.gpu_tasks > 0, "mix never reached the device");
    (report.device_virtual_seconds[0], report.gpu_tasks)
}

/// Exact-mode engine partials for every ion, as `(ion, partial)` rows
/// sorted by ion, for the bitwise-parity gate.
fn engine_partials(
    db: &Arc<AtomDatabase>,
    grid: &EnergyGrid,
    gpus: usize,
    pack_threshold: u64,
) -> Vec<Vec<f64>> {
    let engine = Engine::start(engine_config(db, gpus, pack_threshold));
    let bins = Arc::new(grid.bin_pairs());
    let (tx, rx) = channel();
    for ion_index in 0..db.ions().len() {
        let levels = db.levels_by_index(ion_index).len();
        engine
            .submit(IonJob {
                ion_index,
                level_range: 0..levels,
                point: point(),
                grid: grid.clone(),
                bins: Arc::clone(&bins),
                tag: ion_index as u64,
                deadline: f64::INFINITY,
                reply: tx.clone(),
            })
            .ok()
            .expect("engine accepts the parity workload");
    }
    drop(tx);
    let mut outcomes: Vec<IonOutcome> = rx.iter().collect();
    outcomes.sort_by_key(|o| o.ion_index);
    let report = engine.shutdown();
    assert_eq!(report.leaked_grants, 0);
    outcomes.into_iter().map(|o| o.partial).collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // ---------------------------------------------------- gate 4a: vexp accuracy
    let args = exp_args(if smoke { 20_000 } else { 200_000 });
    let mut got = args.clone();
    simd::vexp(&mut got);
    let mut vexp_max_rel = 0.0f64;
    for (&x, &v) in args.iter().zip(&got) {
        let want = x.exp();
        let rel = if want == 0.0 {
            if v == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            ((v - want) / want).abs()
        };
        vexp_max_rel = vexp_max_rel.max(rel);
    }
    let vexp_accuracy_pass = vexp_max_rel <= 1e-14;
    assert!(
        vexp_accuracy_pass,
        "vexp accuracy: max rel {vexp_max_rel:e} > 1e-14"
    );

    // ---------------------------------------------------- gate 1: vexp microbench
    let n = 4096;
    let xs = exp_args(n);
    let mut buf = vec![0.0f64; n];
    let mut c = Criterion::default()
        .warm_up_time(Duration::from_millis(if smoke { 100 } else { 400 }))
        .measurement_time(Duration::from_millis(if smoke { 300 } else { 1500 }))
        .sample_size(if smoke { 10 } else { 30 });
    eprintln!("timing exp lanes ({n} elements) ...");
    c.bench_function("exp/scalar", |b| {
        b.iter(|| {
            for (o, &x) in buf.iter_mut().zip(&xs) {
                *o = x.exp();
            }
            black_box(buf[n - 1])
        })
    });
    c.bench_function("exp/vexp", |b| {
        b.iter(|| {
            buf.copy_from_slice(&xs);
            simd::vexp(&mut buf);
            black_box(buf[n - 1])
        })
    });

    // ---------------------------------------------------- gate 2 + 4b: ion sweep
    let sweep_db = AtomDatabase::generate(DatabaseConfig {
        max_z: if smoke { 8 } else { 26 },
        ..DatabaseConfig::default()
    });
    let sweep_grid = EnergyGrid::paper_waveband(if smoke { 64 } else { 256 });
    let mut ws = QagsWorkspace::new();
    let mut exact = vec![0.0; sweep_grid.bins()];
    let mut vector = vec![0.0; sweep_grid.bins()];
    let n_exact = ion_sweep(&sweep_db, &sweep_grid, &mut ws, &mut exact, MathMode::Exact);
    let n_vector = ion_sweep(
        &sweep_db,
        &sweep_grid,
        &mut ws,
        &mut vector,
        MathMode::Vector,
    );
    assert_eq!(n_exact, n_vector, "modes must do identical work");
    assert!(exact.iter().sum::<f64>() > 0.0, "sweep must radiate");
    let mut sweep_max_rel = 0.0f64;
    for (&a, &b) in exact.iter().zip(&vector) {
        let scale = a.abs().max(1e-300);
        sweep_max_rel = sweep_max_rel.max(((b - a) / scale).abs());
    }
    let sweep_accuracy_pass = sweep_max_rel <= 1e-12;
    assert!(
        sweep_accuracy_pass,
        "Vector vs Exact spectra: max rel {sweep_max_rel:e} > 1e-12"
    );

    eprintln!("timing end-to-end ion sweeps ...");
    c.bench_function("sweep/exact", |b| {
        b.iter(|| ion_sweep(&sweep_db, &sweep_grid, &mut ws, &mut exact, MathMode::Exact))
    });
    c.bench_function("sweep/vector", |b| {
        b.iter(|| {
            ion_sweep(
                &sweep_db,
                &sweep_grid,
                &mut ws,
                &mut vector,
                MathMode::Vector,
            )
        })
    });

    let ms = c.take_measurements();
    let by_id = |id: &str| -> f64 {
        ms.iter()
            .find(|m| m.id == id)
            .unwrap_or_else(|| panic!("missing measurement {id}"))
            .median_ns()
    };
    let exp_scalar_ns = by_id("exp/scalar");
    let exp_vexp_ns = by_id("exp/vexp");
    let vexp_speedup = exp_scalar_ns / exp_vexp_ns;
    let sweep_exact_ns = by_id("sweep/exact");
    let sweep_vector_ns = by_id("sweep/vector");
    let sweep_speedup = sweep_exact_ns / sweep_vector_ns;
    let vexp_speedup_pass = vexp_speedup >= 2.0;
    let sweep_speedup_pass = sweep_speedup >= 1.4;

    // -------------------------------------------- gate 3: launch aggregation
    // Small database: every task is genuinely tiny (single level, 16
    // bins), the adversarial shape for per-launch overhead.
    let agg_db = Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: 6,
        ..DatabaseConfig::default()
    }));
    let rounds = if smoke { 2 } else { 4 };

    // Pick the pack threshold with the paper's inflexion-style tuner:
    // probe increasing thresholds until modeled device time stops
    // improving.
    // The sweep shares the runtime knob surface: same probe step and
    // patience budget as the resident controller's defaults.
    eprintln!("autotuning pack threshold ...");
    let sweep = TuningConfig::default();
    let mut tuner = AutoTuner::new(sweep.step, sweep.step, 64).with_patience(sweep.patience);
    while let Some(threshold) = tuner.next_candidate() {
        let (seconds, _) = tiny_mix_device_time(&agg_db, rounds, threshold);
        tuner.observe(threshold, seconds);
    }
    let (tuned_threshold, _) = tuner.best().expect("tuner observed every probe");
    let observations = tuner.observations().to_vec();

    let (unpacked_s, unpacked_tasks) = tiny_mix_device_time(&agg_db, rounds, 0);
    let (packed_s, packed_tasks) = tiny_mix_device_time(&agg_db, rounds, tuned_threshold);
    let agg_speedup = (unpacked_s / unpacked_tasks as f64) / (packed_s / packed_tasks as f64);
    let agg_pass = agg_speedup >= 1.2;
    assert!(
        agg_pass,
        "aggregation gate: modeled per-task device time improved only {agg_speedup:.2}x (< 1.2x)"
    );

    // ---------------------------------------------------- gate 5: bitwise parity
    eprintln!("checking Exact-mode bitwise parity under aggregation ...");
    let parity_grid = EnergyGrid::linear(50.0, 2000.0, 64);
    let serial = SerialCalculator::new(
        (*agg_db).clone(),
        parity_grid.clone(),
        Integrator::Simpson { panels: 64 },
    );
    let reference: Vec<Vec<f64>> = (0..agg_db.ions().len())
        .map(|i| serial.ion_spectrum(i, &point()).bins().to_vec())
        .collect();
    let gpu_counts: &[usize] = if smoke { &[1] } else { &[0, 1, 2] };
    for &gpus in gpu_counts {
        for pack_threshold in [0, u64::MAX] {
            let partials = engine_partials(&agg_db, &parity_grid, gpus, pack_threshold);
            assert_eq!(partials.len(), reference.len());
            for (ion, (got, want)) in partials.iter().zip(&reference).enumerate() {
                for (bin, (&a, &r)) in got.iter().zip(want).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        r.to_bits(),
                        "gpus={gpus} pack={pack_threshold} ion {ion} bin {bin}"
                    );
                }
            }
        }
    }
    let parity_pass = true; // asserted bitwise above

    // ---------------------------------------------------------------- report
    let pass = vexp_accuracy_pass
        && sweep_accuracy_pass
        && agg_pass
        && parity_pass
        && (smoke || (vexp_speedup_pass && sweep_speedup_pass));
    let sweep_obs = jsonlite::Value::Array(
        observations
            .iter()
            .map(|&(t, s)| {
                ObjectBuilder::new()
                    .field("pack_threshold", t as f64)
                    .field("modeled_device_seconds", s)
                    .build()
            })
            .collect(),
    );
    let bundle = ObjectBuilder::new()
        .field("smoke", smoke)
        .field("avx2", simd::using_avx2())
        .field(
            "vexp",
            ObjectBuilder::new()
                .field("elements", n as u64)
                .field("scalar_ns", exp_scalar_ns)
                .field("vexp_ns", exp_vexp_ns)
                .field("speedup", vexp_speedup)
                .field("max_rel_error", vexp_max_rel)
                .field("gate", 2.0)
                .field("enforced", !smoke)
                .field("pass", vexp_speedup_pass || smoke)
                .build(),
        )
        .field(
            "ion_sweep",
            ObjectBuilder::new()
                .field("max_z", if smoke { 8u64 } else { 26 })
                .field("bins", sweep_grid.bins() as u64)
                .field("integrand_evals", n_exact)
                .field("exact_ns", sweep_exact_ns)
                .field("vector_ns", sweep_vector_ns)
                .field("speedup", sweep_speedup)
                .field("gate", 1.4)
                .field("enforced", !smoke)
                .field("pass", sweep_speedup_pass || smoke)
                .build(),
        )
        .field(
            "aggregation",
            ObjectBuilder::new()
                .field("tuned_pack_threshold", tuned_threshold as f64)
                .field("tuner_observations", sweep_obs)
                .field("unpacked_device_seconds", unpacked_s)
                .field("unpacked_device_tasks", unpacked_tasks)
                .field("packed_device_seconds", packed_s)
                .field("packed_device_tasks", packed_tasks)
                .field("per_task_speedup", agg_speedup)
                .field("gate", 1.2)
                .field("pass", agg_pass)
                .build(),
        )
        .field(
            "accuracy",
            ObjectBuilder::new()
                .field("vexp_max_rel_error", vexp_max_rel)
                .field("sweep_max_rel_deviation", sweep_max_rel)
                .field("pass", vexp_accuracy_pass && sweep_accuracy_pass)
                .build(),
        )
        .field(
            "exact_parity",
            ObjectBuilder::new()
                .field("bitwise", true)
                .field("gpu_counts", gpu_counts.len() as u64)
                .field("pass", parity_pass)
                .build(),
        )
        .field("pass", pass)
        .build();

    let path = "BENCH_simd.json";
    std::fs::write(path, bundle.to_pretty()).expect("write results");
    println!("wrote {path}");
    println!(
        "vexp speedup: {vexp_speedup:.2}x (avx2={})",
        simd::using_avx2()
    );
    println!("ion-sweep speedup (Vector vs Exact): {sweep_speedup:.2}x");
    println!("aggregation per-task speedup: {agg_speedup:.2}x (threshold {tuned_threshold})");
    if !smoke {
        assert!(
            vexp_speedup_pass,
            "vexp acceptance: expected >= 2x, got {vexp_speedup:.2}x"
        );
        assert!(
            sweep_speedup_pass,
            "ion-sweep acceptance: expected >= 1.4x, got {sweep_speedup:.2}x"
        );
    }
}
