//! Regenerate paper Fig. 6: the time percentage GPU device 0 spends at
//! each load level (0..=6) during end-to-end runs with different
//! Romberg computational complexities (2 GPUs, max queue length 6).

use hybrid_spectral::experiments::romberg_load::{self, KS};
use spectral_bench::{paper_inputs, pct, render_table};

fn main() {
    let (workload, calib) = paper_inputs();
    let report = romberg_load::run(&workload, &calib);

    println!("== Fig. 6: load distribution on device 0 vs computational complexity ==");
    println!("   (2 GPUs, maximum queue length 6)\n");
    let mut headers = vec!["load level".to_string()];
    headers.extend(KS.iter().map(|k| format!("k = {k}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..=6usize)
        .map(|level| {
            let mut row = vec![level.to_string()];
            row.extend(report.rows.iter().map(|r| pct(r.load_percent[level])));
            row
        })
        .collect();
    println!("{}", render_table(&headers_ref, &rows));
    println!("(paper's headline bar: at k = 13 the load sits at 6 — the full queue —");
    println!(" for 44.04% of the run; higher k shifts the whole distribution right.)");
}
