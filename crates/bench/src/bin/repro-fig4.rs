//! Regenerate paper Fig. 4: total computing time of the 24-point run
//! vs the maximum queue length, for 1–4 GPUs, plus the automatic
//! queue-length tuner's pick.

use hybrid_spectral::experiments::qlen_sweep::{self, PAPER_FIG4, QLENS};
use spectral_bench::{f1, paper_inputs, render_table};

fn main() {
    let (workload, calib) = paper_inputs();
    let report = qlen_sweep::run(&workload, &calib);

    println!("== Fig. 4: total computing time vs maximum queue length ==\n");
    let mut rows = Vec::new();
    for gpus in 1..=4usize {
        let series = report.series(gpus);
        let mut ours = vec![format!("{gpus} GPU(s) ours")];
        ours.extend(series.iter().map(|c| f1(c.total_s)));
        rows.push(ours);
        let mut paper = vec![format!("{gpus} GPU(s) paper")];
        paper.extend(PAPER_FIG4[gpus - 1].iter().map(|&v| f1(v)));
        rows.push(paper);
    }
    let mut headers = vec!["total time (s)".to_string()];
    headers.extend(QLENS.iter().map(|q| format!("qlen {q}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&headers_ref, &rows));

    println!("automatic maximum-queue-length test (paper SIII-A):");
    for (gpus, q) in &report.tuned_qlen {
        println!("  {gpus} GPU(s): tuner settles at qlen {q}");
    }
    println!("\n(paper inflexion: 10-12; ours emerges from the host-prep/queue model.");
    println!(" Note: the paper's Fig. 4 absolute scale is ~1.8x its own Fig. 3 scale;");
    println!(" we match Fig. 3's anchors, so compare shapes, not absolutes.)");
}
