//! Regenerate `BENCH_sched.json`: acceptance gates for cost-aware
//! weighted scheduling, bounded work stealing, and the
//! stream-overlapped engine.
//!
//! Two halves, both deterministic (fixed workload, no randomness):
//!
//! 1. **Placement simulation** — a discrete-event list-scheduling model
//!    of two devices fed the full-periodic-table ion mix, with per-task
//!    costs from the *real* cost model
//!    ([`hybrid_spectral::ion_task_cost`]) and an adversarially
//!    interleaved arrival order (heaviest/lightest pairs — the worst
//!    case for cost-oblivious placement). Placement is committed at
//!    submission time, as in the paper's Algorithm 1. Three schedulers
//!    run the identical stream: the paper's task-count policy, the
//!    cost-aware weighted policy, and cost-aware + idle-steal. Gates:
//!    weighted+stealing beats the paper policy by >= 1.3x on makespan,
//!    and busy-time imbalance (max/min) shrinks by >= 2x.
//! 2. **Engine acceptance** — the real resident engine, 2 simulated
//!    GPUs, deterministic single-chunk kernel, run under BOTH policies:
//!    every ion partial must match the serial reference **bitwise**
//!    (placement and steals change timing, never bits), and shutdown
//!    must free every scheduler grant. Steal counters are reported.
//!
//! `--smoke` shrinks both halves for CI; every gate stays asserted and
//! the JSON is still written.

use std::collections::VecDeque;
use std::sync::mpsc::channel;
use std::sync::Arc;

use atomdb::{AtomDatabase, DatabaseConfig};
use gpu_sim::{DeviceRule, Precision};
use hybrid_sched::SchedPolicy;
use hybrid_spectral::engine::{Engine, EngineConfig, IonJob, IonOutcome};
use hybrid_spectral::ion_task_cost;
use jsonlite::ObjectBuilder;
use rrc_spectral::{EnergyGrid, GridPoint, Integrator, SerialCalculator};

/// Device queue bound in the simulation (paper default).
const QUEUE_BOUND: usize = 6;
/// Simulated device seconds per cost unit.
const UNIT_S: f64 = 1.0;

// ---------------------------------------------------------------- part 1

#[derive(Clone, Copy, PartialEq, Eq)]
enum SimPolicy {
    PaperCount,
    CostAware,
}

#[derive(Debug, Clone, Copy)]
struct SimResult {
    makespan_s: f64,
    imbalance: f64, // max busy / min busy
    steals: u64,
}

/// Discrete-event list scheduling of `costs` onto two devices.
///
/// Placement follows Algorithm 1's structure: the device is chosen **at
/// submission time** (SCHE-ALLOC commits the task to one device queue),
/// and the batch producer is orders of magnitude faster than device
/// service, so the whole stream is placed before the first completion.
/// The selection chain mirrors `hybrid_sched::policy` — min load metric
/// (task count for PaperCount, outstanding weighted cost for
/// CostAware), then history, then index. Admission control (the
/// CPU-fallback queue bound) is deliberately out of scope here — it is
/// exercised by the engine half and the fairness suite; this half
/// isolates placement quality.
///
/// With `steal`, a device that drains its own queue takes the
/// *largest* staged task from the other device (the engine pump's
/// idle-steal rule).
fn simulate(costs: &[u64], policy: SimPolicy, steal: bool) -> SimResult {
    struct Dev {
        queue: VecDeque<u64>,
        cur: Option<(f64, u64)>, // (end time, cost) of the in-service task
        busy: f64,
        history: u64,
        weighted_out: u64,
    }
    let mut devs: Vec<Dev> = (0..2)
        .map(|_| Dev {
            queue: VecDeque::new(),
            cur: None,
            busy: 0.0,
            history: 0,
            weighted_out: 0,
        })
        .collect();

    // Submission phase: every task is bound to a device in arrival
    // order, before any service completes.
    for &cost in costs {
        let d = (0..devs.len())
            .min_by_key(|&d| {
                let load = match policy {
                    SimPolicy::PaperCount => devs[d].queue.len() as u64,
                    SimPolicy::CostAware => devs[d].weighted_out,
                };
                (load, devs[d].history, d)
            })
            .expect("two devices");
        devs[d].queue.push_back(cost);
        devs[d].weighted_out += cost;
        devs[d].history += 1;
    }

    // Service phase.
    let mut t = 0.0f64;
    let mut steals = 0u64;
    loop {
        // Start work on idle devices (stealing when the local lane is dry).
        for d in 0..devs.len() {
            if devs[d].cur.is_none() {
                if devs[d].queue.is_empty() && steal {
                    let other = 1 - d;
                    if let Some((pos, _)) = devs[other]
                        .queue
                        .iter()
                        .enumerate()
                        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
                    {
                        let c = devs[other].queue.remove(pos).expect("position valid");
                        devs[other].weighted_out -= c;
                        devs[other].history -= 1;
                        devs[d].queue.push_back(c);
                        devs[d].weighted_out += c;
                        devs[d].history += 1;
                        steals += 1;
                    }
                }
                if let Some(c) = devs[d].queue.pop_front() {
                    devs[d].cur = Some((t + c as f64 * UNIT_S, c));
                }
            }
        }
        // Advance virtual time to the earliest completion.
        let Some(t_next) = devs
            .iter()
            .filter_map(|d| d.cur.map(|(end, _)| end))
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
        else {
            break; // all devices idle: stream fully served
        };
        t = t_next;
        for dev in &mut devs {
            if let Some((end, c)) = dev.cur {
                if end <= t {
                    dev.busy += c as f64 * UNIT_S;
                    dev.weighted_out -= c;
                    dev.cur = None;
                }
            }
        }
    }
    let max = devs.iter().map(|d| d.busy).fold(0.0f64, f64::max);
    let min = devs.iter().map(|d| d.busy).fold(f64::INFINITY, f64::min);
    SimResult {
        makespan_s: t,
        imbalance: max / min.max(1e-12),
        steals,
    }
}

/// The full-periodic-table cost stream, adversarially ordered: heaviest
/// and lightest tasks interleaved in pairs, so a cost-oblivious policy
/// that alternates on count ties systematically funnels heavy tasks to
/// one device.
fn skewed_costs(max_z: u8, bins: usize, temperatures_k: &[f64]) -> Vec<u64> {
    let db = AtomDatabase::generate(DatabaseConfig {
        max_z,
        ..DatabaseConfig::default()
    });
    let grid = EnergyGrid::paper_waveband(bins);
    let bin_pairs = grid.bin_pairs();
    let mut costs = Vec::new();
    for (pi, &temperature_k) in temperatures_k.iter().enumerate() {
        let point = GridPoint {
            temperature_k,
            density_cm3: 1.0,
            time_s: 0.0,
            index: pi,
        };
        for ion in 0..db.ions().len() {
            let levels = db.levels_by_index(ion).len();
            costs.push(ion_task_cost(&db, ion, 0..levels, &point, &bin_pairs));
        }
    }
    costs.sort_unstable_by(|a, b| b.cmp(a)); // heaviest first
    let mut ordered = Vec::with_capacity(costs.len());
    let (mut lo, mut hi) = (0usize, costs.len());
    while lo < hi {
        ordered.push(costs[lo]); // heaviest remaining
        lo += 1;
        if lo < hi {
            hi -= 1;
            ordered.push(costs[hi]); // lightest remaining
        }
    }
    ordered
}

// ---------------------------------------------------------------- part 2

struct EngineRun {
    gpu_tasks: u64,
    cpu_tasks: u64,
    steals: Vec<u64>,
    cpu_steals: u64,
    leaked_grants: u64,
    bins_compared: u64,
}

/// Run every ion of a reduced database through the real engine under
/// `policy` with the deterministic kernel, and compare each partial
/// bitwise against the serial reference.
fn engine_parity(policy: SchedPolicy, max_z: u8, bins: usize) -> EngineRun {
    let db = Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z,
        ..DatabaseConfig::default()
    }));
    let grid = EnergyGrid::linear(50.0, 2000.0, bins);
    let bin_pairs = Arc::new(grid.bin_pairs());
    let point = GridPoint {
        temperature_k: 1.0e7,
        density_cm3: 1.0,
        time_s: 0.0,
        index: 0,
    };
    let engine = Engine::start(EngineConfig {
        db: Arc::clone(&db),
        workers: 3,
        gpus: 2,
        max_queue_len: QUEUE_BOUND as u64,
        policy,
        gpu_rule: DeviceRule::Simpson { panels: 64 },
        gpu_precision: Precision::Double,
        cpu_integrator: Integrator::Simpson { panels: 64 },
        fused: true,
        async_window: 2,
        queue_depth: 8,
        deterministic_kernel: true,
        math: quadrature::MathMode::Exact,
        pack_threshold: 0,
        pack_max: 8,
        resilience: hybrid_spectral::ResilienceConfig::default(),
        tuning: hybrid_sched::TuningConfig::default(),
    });
    let ions = db.ions().len();
    let (tx, rx) = channel();
    for ion in 0..ions {
        let levels = db.levels_by_index(ion).len();
        let accepted = engine.submit(IonJob {
            ion_index: ion,
            level_range: 0..levels,
            point,
            grid: grid.clone(),
            bins: Arc::clone(&bin_pairs),
            tag: ion as u64,
            deadline: f64::INFINITY,
            reply: tx.clone(),
        });
        assert!(accepted.is_ok(), "engine accepts while live");
    }
    drop(tx);
    let mut outcomes: Vec<IonOutcome> = rx.iter().collect();
    assert_eq!(outcomes.len(), ions, "{policy:?}: every ion answered");
    outcomes.sort_by_key(|o| o.ion_index);
    let report = engine.shutdown();

    let serial = SerialCalculator::new((*db).clone(), grid, Integrator::Simpson { panels: 64 });
    let mut bins_compared = 0u64;
    for outcome in &outcomes {
        let reference = serial.ion_spectrum(outcome.ion_index, &point);
        for (b, (x, y)) in outcome.partial.iter().zip(reference.bins()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{policy:?} ion {} bin {b}: engine {x} vs serial {y}",
                outcome.ion_index
            );
            bins_compared += 1;
        }
    }
    EngineRun {
        gpu_tasks: report.gpu_tasks,
        cpu_tasks: report.cpu_tasks,
        steals: report.steals,
        cpu_steals: report.cpu_steals,
        leaked_grants: report.leaked_grants,
        bins_compared,
    }
}

fn engine_json(run: &EngineRun) -> jsonlite::Value {
    ObjectBuilder::new()
        .field("gpu_tasks", run.gpu_tasks)
        .field("cpu_tasks", run.cpu_tasks)
        .field("steals", run.steals.clone())
        .field("cpu_steals", run.cpu_steals)
        .field("leaked_grants", run.leaked_grants)
        .field("bins_compared", run.bins_compared)
        .build()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sim_max_z, sim_bins, temps): (u8, usize, Vec<f64>) = if smoke {
        (20, 64, vec![1.0e7])
    } else {
        (31, 128, vec![3.5e6, 1.0e7, 3.0e7])
    };
    let (eng_max_z, eng_bins): (u8, usize) = if smoke { (5, 32) } else { (8, 64) };

    // -- 1. placement simulation ------------------------------------------
    eprintln!("simulating placement over the periodic-table mix ...");
    let costs = skewed_costs(sim_max_z, sim_bins, &temps);
    let total: u64 = costs.iter().sum();
    let heaviest = *costs.iter().max().expect("nonempty");
    let paper = simulate(&costs, SimPolicy::PaperCount, false);
    let paper_stealing = simulate(&costs, SimPolicy::PaperCount, true);
    let weighted = simulate(&costs, SimPolicy::CostAware, false);
    let stealing = simulate(&costs, SimPolicy::CostAware, true);

    let speedup = paper.makespan_s / stealing.makespan_s;
    let imbalance_reduction = paper.imbalance / stealing.imbalance;
    let speedup_pass = speedup >= 1.3;
    let imbalance_pass = imbalance_reduction >= 2.0;
    eprintln!(
        "  paper-count:      makespan {:>10.0}s  imbalance {:.3}",
        paper.makespan_s, paper.imbalance
    );
    eprintln!(
        "  paper + stealing: makespan {:>10.0}s  imbalance {:.3}  ({} steals)",
        paper_stealing.makespan_s, paper_stealing.imbalance, paper_stealing.steals
    );
    eprintln!(
        "  cost-aware:       makespan {:>10.0}s  imbalance {:.3}",
        weighted.makespan_s, weighted.imbalance
    );
    eprintln!(
        "  + idle stealing:  makespan {:>10.0}s  imbalance {:.3}  ({} steals)",
        stealing.makespan_s, stealing.imbalance, stealing.steals
    );
    eprintln!("  speedup {speedup:.2}x (gate >= 1.3), imbalance reduction {imbalance_reduction:.2}x (gate >= 2)");
    assert!(
        speedup_pass,
        "speedup gate: weighted+stealing {speedup:.3}x over paper-count, need >= 1.3x"
    );
    assert!(
        imbalance_pass,
        "imbalance gate: reduction {imbalance_reduction:.3}x, need >= 2x"
    );

    // -- 2. engine acceptance under both policies --------------------------
    eprintln!("engine parity (cost-aware) ...");
    let eng_cost_aware = engine_parity(SchedPolicy::CostAware, eng_max_z, eng_bins);
    eprintln!("engine parity (paper-count) ...");
    let eng_paper = engine_parity(SchedPolicy::PaperCount, eng_max_z, eng_bins);
    let parity_pass = true; // asserted bitwise above, per bin
    let leak_pass = eng_cost_aware.leaked_grants == 0 && eng_paper.leaked_grants == 0;
    assert!(leak_pass, "engine leaked scheduler grants");

    let bundle = ObjectBuilder::new()
        .field("smoke", smoke)
        .field(
            "workload",
            ObjectBuilder::new()
                .field("sim_max_z", u64::from(sim_max_z))
                .field("sim_bins", sim_bins as u64)
                .field("sim_temperatures_k", temps.clone())
                .field("sim_tasks", costs.len() as u64)
                .field("sim_total_cost", total)
                .field("sim_heaviest_task", heaviest)
                .field("arrival_order", "adversarial heavy/light pair interleave")
                .field("placement", "committed at submission (Algorithm 1)")
                .field("engine_queue_bound", QUEUE_BOUND as u64)
                .field("engine_max_z", u64::from(eng_max_z))
                .field("engine_bins", eng_bins as u64)
                .build(),
        )
        .field(
            "simulation",
            ObjectBuilder::new()
                .field(
                    "paper_count",
                    ObjectBuilder::new()
                        .field("makespan_s", paper.makespan_s)
                        .field("imbalance", paper.imbalance)
                        .build(),
                )
                .field(
                    "paper_count_stealing",
                    ObjectBuilder::new()
                        .field("makespan_s", paper_stealing.makespan_s)
                        .field("imbalance", paper_stealing.imbalance)
                        .field("steals", paper_stealing.steals)
                        .build(),
                )
                .field(
                    "cost_aware",
                    ObjectBuilder::new()
                        .field("makespan_s", weighted.makespan_s)
                        .field("imbalance", weighted.imbalance)
                        .build(),
                )
                .field(
                    "cost_aware_stealing",
                    ObjectBuilder::new()
                        .field("makespan_s", stealing.makespan_s)
                        .field("imbalance", stealing.imbalance)
                        .field("steals", stealing.steals)
                        .build(),
                )
                .build(),
        )
        .field(
            "gates",
            ObjectBuilder::new()
                .field(
                    "speedup_vs_paper",
                    ObjectBuilder::new()
                        .field("value", speedup)
                        .field("threshold", 1.3)
                        .field("pass", speedup_pass)
                        .build(),
                )
                .field(
                    "imbalance_reduction",
                    ObjectBuilder::new()
                        .field("value", imbalance_reduction)
                        .field("threshold", 2.0)
                        .field("pass", imbalance_pass)
                        .build(),
                )
                .field(
                    "bitwise_parity_both_policies",
                    ObjectBuilder::new()
                        .field(
                            "bins_compared",
                            eng_cost_aware.bins_compared + eng_paper.bins_compared,
                        )
                        .field("pass", parity_pass)
                        .build(),
                )
                .field(
                    "zero_leaked_grants",
                    ObjectBuilder::new().field("pass", leak_pass).build(),
                )
                .build(),
        )
        .field(
            "engine",
            ObjectBuilder::new()
                .field("cost_aware", engine_json(&eng_cost_aware))
                .field("paper_count", engine_json(&eng_paper))
                .build(),
        )
        .build();

    let path = "BENCH_sched.json";
    std::fs::write(path, bundle.to_pretty()).expect("write results");
    println!("wrote {path}");
    println!(
        "sched acceptance: speedup {speedup:.2}x, imbalance reduction {imbalance_reduction:.2}x, \
         parity bitwise, zero leaked grants"
    );
}
