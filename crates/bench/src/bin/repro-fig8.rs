//! Regenerate paper Fig. 8: the distribution of per-bin relative
//! errors between the serial (QAGS) and hybrid (GPU Simpson) spectra.

use hybrid_spectral::experiments::accuracy::{self, AccuracyConfig};
use spectral_bench::pct;

fn main() {
    let report = accuracy::run(AccuracyConfig::default());

    println!("== Fig. 8: distribution of numerical error (hybrid vs serial) ==\n");
    println!(
        "error range: [{:.6}%, {:.6}%]   (paper: [-0.0003%, 0.0033%])",
        report.min_error, report.max_error
    );
    println!(
        "errors with |e| <= 0.0005%: {}   (paper: \"more than 99%\")\n",
        pct(report.within_half_milli_percent)
    );
    println!("  error bin (%)        probability");
    for (edge, prob) in report
        .histogram
        .edges
        .iter()
        .zip(&report.histogram.probability)
    {
        if *prob > 0.0 {
            let bar = "#".repeat((prob * 0.8).round() as usize);
            println!("  {edge:+.6}  {prob:6.2}%  |{bar}");
        }
    }
    println!("\n(relative error over the flux-carrying bins of the 10-45 A band;");
    println!(" the mass concentrates at |e| < 5e-4 %, like the paper's curve.)");
}
