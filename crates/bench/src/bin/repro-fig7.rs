//! Regenerate paper Fig. 7: the normalized-flux spectra over 10–45 Å
//! computed by (a) the serial QAGS reference and (b) the hybrid
//! CPU/GPU runtime — real numerics on both paths.

use hybrid_spectral::experiments::accuracy::{self, AccuracyConfig};
use spectral_bench::pct;

fn main() {
    let report = accuracy::run(AccuracyConfig::default());

    println!("== Fig. 7: serial vs hybrid RRC spectra (normalized flux, 10-45 A) ==\n");
    println!(
        "hybrid run GPU task share: {}\n",
        pct(report.gpu_ratio_percent)
    );
    // An ASCII rendition: sample ~24 wavelengths across the band and
    // plot both normalized fluxes side by side.
    println!("  lambda(A)   serial    hybrid");
    let n = report.serial_series.len();
    let step = (n / 24).max(1);
    for i in (0..n).step_by(step) {
        let (wl, fs) = report.serial_series[i];
        let (_, fh) = report.hybrid_series[i];
        let bar_len = (fs * 40.0).round() as usize;
        println!("  {wl:8.2}  {fs:8.5}  {fh:8.5}  |{}", "#".repeat(bar_len));
    }
    println!("\n(the two columns agree to ~1e-7 of the peak — the two panels of the");
    println!(" paper's Fig. 7 are likewise indistinguishable by eye.)");
}
