//! Shared helpers for the `repro-*` regenerator binaries and the
//! Criterion benches: table rendering and the standard experiment
//! inputs (full 496-ion database, paper workload, paper calibration).

use atomdb::{AtomDatabase, DatabaseConfig};
use hybrid_spectral::{Calibration, SpectralWorkload};

/// The paper-scale inputs every performance regenerator uses.
#[must_use]
pub fn paper_inputs() -> (SpectralWorkload, Calibration) {
    let db = AtomDatabase::generate(DatabaseConfig::default());
    (SpectralWorkload::paper(&db), Calibration::paper())
}

/// Render an aligned ASCII table: a header row then data rows.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:>w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Format a float with 1 decimal.
#[must_use]
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with 2 decimals.
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with 2 decimals.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{v:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn paper_inputs_are_full_scale() {
        let (w, c) = paper_inputs();
        assert_eq!(w.ions(), 496);
        assert_eq!(c.ranks, 24);
    }
}
