//! Criterion bench for the Fig. 6 / Table I regeneration: one
//! discrete-event replay per Romberg complexity k (2 GPUs, queue
//! length 6). `repro-fig6` / `repro-table1` print the distributions.

use hybrid_spectral::desmodel::{self, spectral_config};
use hybrid_spectral::Granularity;
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spectral_bench::paper_inputs;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let (workload, calib) = paper_inputs();
    let mut group = c.benchmark_group("fig6_romberg");
    group.sample_size(10);
    for k in [7u32, 13] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let cfg = spectral_config(&workload, &calib, Granularity::Ion, 2, 6, Some(k));
                let report = desmodel::run(cfg);
                black_box(report.device_load[0].percent_at_least(3))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
