//! Microbench: the scheduler's SCHE-ALLOC / SCHE-FREE hot path — the
//! operation the paper keeps lock-free in shared memory to beat the
//! MPS client-server round trip.

use hybrid_sched::policy::select_device;
use hybrid_sched::Scheduler;
use microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("sche_alloc_free_uncontended", |b| {
        let s = Scheduler::new(4, 12);
        b.iter(|| {
            let g = s.alloc().expect("queues empty");
            s.free(black_box(g));
        });
    });

    c.bench_function("sche_alloc_free_contended_8_threads", |b| {
        let s = Scheduler::new(4, 12);
        b.iter_custom(|iters| {
            let start = std::time::Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    let s = s.clone();
                    scope.spawn(move || {
                        for _ in 0..iters / 8 {
                            if let Some(g) = s.alloc() {
                                s.free(g);
                            }
                        }
                    });
                }
            });
            start.elapsed()
        });
    });

    c.bench_function("policy_select_16_devices", |b| {
        let loads: Vec<u64> = (0..16).map(|i| (i * 7 % 5) as u64).collect();
        let histories: Vec<u64> = (0..16).map(|i| (i * 13 % 11) as u64).collect();
        b.iter(|| black_box(select_device(&loads, &histories, 12)));
    });
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
