//! Criterion bench for the Fig. 7 / Fig. 8 regeneration: the real-mode
//! accuracy run (serial QAGS reference + hybrid GPU Simpson) on a
//! reduced database so the bench completes in seconds. `repro-fig7` /
//! `repro-fig8` print the full-scale spectra and error histogram.

use hybrid_spectral::experiments::accuracy::{self, AccuracyConfig};
use microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_accuracy");
    group.sample_size(10);
    group.bench_function("reduced_scale_run", |b| {
        b.iter(|| {
            let report = accuracy::run(AccuracyConfig {
                max_z: 8,
                bins: 64,
                ranks: 4,
                gpus: 2,
            });
            black_box(report.within_half_milli_percent)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
