//! Microbench: the SIMT bin-integration kernel (paper Algorithm 2)
//! at Ion-task shape — many levels accumulated in-device — with the
//! fused-vs-seed A/B the hot-path work targets: `FusedBinKernel` over
//! prepared integrands vs the seed `BinIntegrationKernel` over the
//! unprepared per-sample arithmetic.

use gpu_sim::{BinIntegrationKernel, DeviceRule, FusedBinKernel, LaunchConfig, Precision};
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrc_spectral::RrcIntegrand;
use std::hint::black_box;

fn ion_levels() -> Vec<RrcIntegrand> {
    (1..=10u16)
        .map(|n| RrcIntegrand::new(862.0, 13.6 * 64.0 / f64::from(n * n), n, 1.0, 1e-4))
        .collect()
}

fn ion_bins() -> Vec<(f64, f64)> {
    (0..512)
        .map(|i| (100.0 + 3.0 * f64::from(i), 103.0 + 3.0 * f64::from(i)))
        .collect()
}

fn bench_kernel(c: &mut Criterion) {
    let levels = ion_levels();
    let closures: Vec<_> = levels
        .iter()
        .map(|f| {
            let f = *f;
            move |e: f64| f.evaluate(e)
        })
        .collect();
    let bins = ion_bins();

    let mut group = c.benchmark_group("simt_ion_kernel");
    for threads in [1u32, 64, 512] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let kernel = BinIntegrationKernel {
                    integrands: &closures,
                    bins: &bins,
                    precision: Precision::Double,
                    windows: None,
                    rule: DeviceRule::Simpson { panels: 64 },
                };
                let cfg = LaunchConfig::new(threads.div_ceil(64).max(1), threads.min(64));
                b.iter(|| {
                    let mut emi = vec![0.0; bins.len()];
                    black_box(kernel.execute(cfg, &mut emi));
                });
            },
        );
    }
    group.finish();
}

/// Fused hot path vs the seed per-bin path, same Ion-task workload.
///
/// * `seed_per_bin` — `BinIntegrationKernel` over closures that
///   recompute the Maxwellian prefactor and cross section per sample
///   (the seed's exact per-sample arithmetic).
/// * `prepared_per_bin` — seed kernel, prepared integrands: isolates
///   the invariant-hoisting win from the edge-sharing win.
/// * `fused` — `FusedBinKernel` over `PreparedIntegrand` samplers:
///   hoisted invariants, shared bin-edge samples, per-level windows,
///   and batched node grids (one `exp` per bin via the exponential
///   recurrence).
fn bench_fused_vs_seed(c: &mut Criterion) {
    let levels = ion_levels();
    let bins = ion_bins();
    let seed_closures: Vec<_> = levels
        .iter()
        .map(|f| {
            let f = *f;
            move |e: f64| f.evaluate_unprepared(e)
        })
        .collect();
    let prepared_closures: Vec<_> = levels
        .iter()
        .map(|f| {
            let p = f.prepare();
            move |e: f64| p.evaluate(e)
        })
        .collect();
    let prepared: Vec<_> = levels.iter().map(RrcIntegrand::prepare).collect();
    let windows: Vec<(f64, f64)> = levels
        .iter()
        .map(|f| (f.binding_ev, f.binding_ev + 40.0 * f.kt_ev))
        .collect();

    let mut group = c.benchmark_group("simt_hotpath");
    for threads in [64u32, 512] {
        let cfg = LaunchConfig::new(threads.div_ceil(64).max(1), threads.min(64));
        group.bench_with_input(
            BenchmarkId::new("seed_per_bin", threads),
            &threads,
            |b, _| {
                let kernel = BinIntegrationKernel {
                    integrands: &seed_closures,
                    bins: &bins,
                    precision: Precision::Double,
                    windows: Some(&windows),
                    rule: DeviceRule::Simpson { panels: 64 },
                };
                b.iter(|| {
                    let mut emi = vec![0.0; bins.len()];
                    black_box(kernel.execute(cfg, &mut emi));
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("prepared_per_bin", threads),
            &threads,
            |b, _| {
                let kernel = BinIntegrationKernel {
                    integrands: &prepared_closures,
                    bins: &bins,
                    precision: Precision::Double,
                    windows: Some(&windows),
                    rule: DeviceRule::Simpson { panels: 64 },
                };
                b.iter(|| {
                    let mut emi = vec![0.0; bins.len()];
                    black_box(kernel.execute(cfg, &mut emi));
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("fused", threads), &threads, |b, _| {
            let kernel = FusedBinKernel {
                integrands: &prepared,
                bins: &bins,
                precision: Precision::Double,
                windows: Some(&windows),
                rule: DeviceRule::Simpson { panels: 64 },
                math: quadrature::MathMode::Exact,
            };
            let mut emi = vec![0.0; bins.len()];
            b.iter(|| black_box(kernel.execute(cfg, &mut emi)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel, bench_fused_vs_seed);
criterion_main!(benches);
