//! Microbench: the SIMT bin-integration kernel (paper Algorithm 2)
//! at Ion-task shape — many levels accumulated in-device.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{BinIntegrationKernel, DeviceRule, LaunchConfig, Precision};
use rrc_spectral::RrcIntegrand;
use std::hint::black_box;

fn bench_kernel(c: &mut Criterion) {
    let levels: Vec<RrcIntegrand> = (1..=10u16)
        .map(|n| RrcIntegrand {
            kt_ev: 862.0,
            binding_ev: 13.6 * 64.0 / f64::from(n * n),
            n,
            electron_density: 1.0,
            ion_density: 1e-4,
        })
        .collect();
    let closures: Vec<_> = levels
        .iter()
        .map(|f| {
            let f = *f;
            move |e: f64| f.evaluate(e)
        })
        .collect();
    let bins: Vec<(f64, f64)> = (0..512)
        .map(|i| (100.0 + 3.0 * i as f64, 103.0 + 3.0 * i as f64))
        .collect();

    let mut group = c.benchmark_group("simt_ion_kernel");
    for threads in [1u32, 64, 512] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let kernel = BinIntegrationKernel {
                    integrands: &closures,
                    bins: &bins,
                    precision: Precision::Double,
                    windows: None,
                    rule: DeviceRule::Simpson { panels: 64 },
                };
                let cfg = LaunchConfig::new(threads.div_ceil(64).max(1), threads.min(64));
                b.iter(|| {
                    let mut emi = vec![0.0; bins.len()];
                    black_box(kernel.execute(cfg, &mut emi));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
