//! Criterion bench for the Fig. 4 / Fig. 5 regeneration: one
//! discrete-event replay per maximum queue length (Ion granularity,
//! 2 GPUs). `repro-fig4` / `repro-fig5` print the actual series.

use hybrid_spectral::desmodel::{self, spectral_config};
use hybrid_spectral::Granularity;
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spectral_bench::paper_inputs;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let (workload, calib) = paper_inputs();
    let mut group = c.benchmark_group("fig4_qlen");
    group.sample_size(10);
    for qlen in [2u64, 8, 14] {
        group.bench_with_input(BenchmarkId::from_parameter(qlen), &qlen, |b, &qlen| {
            b.iter(|| {
                let cfg = spectral_config(&workload, &calib, Granularity::Ion, 2, qlen, None);
                let report = desmodel::run(cfg);
                black_box((report.makespan_s, report.gpu_ratio_percent))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
