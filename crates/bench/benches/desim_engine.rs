//! Microbench: the discrete-event kernel's raw event and resource
//! throughput (every performance figure replays ~100k such events).

use desim::Simulation;
use microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_desim(c: &mut Criterion) {
    c.bench_function("event_cascade_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(0u64);
            fn step(sim: &mut Simulation<u64>) {
                if sim.world < 10_000 {
                    sim.world += 1;
                    sim.schedule(1.0, step);
                }
            }
            sim.schedule(0.0, step);
            black_box(sim.run())
        });
    });

    c.bench_function("resource_pingpong_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(0u64);
            let res = sim.create_resource(2);
            for _ in 0..16 {
                sim.schedule(0.0, move |sim| hold(sim, res));
            }
            fn hold(sim: &mut Simulation<u64>, res: desim::ResourceId) {
                sim.acquire(res, move |sim| {
                    sim.schedule(1.0, move |sim| {
                        sim.release(res);
                        if sim.world < 10_000 {
                            sim.world += 1;
                            hold(sim, res);
                        }
                    });
                });
            }
            black_box(sim.run())
        });
    });
}

criterion_group!(benches, bench_desim);
criterion_main!(benches);
