//! Microbench: service request throughput — cache on (warm) vs cache
//! off, on 1 vs 2 simulated GPUs.
//!
//! Each measured iteration drives one closed-loop wave of
//! repeated-state whole-spectrum requests through a resident
//! [`rrc_service::SpectralService`]; the service (and its warm cache)
//! persists across iterations, so `cache_on` numbers measure the
//! steady-state hit path: admission → batcher → cache → assemble.

use std::sync::Arc;
use std::time::Instant;

use atomdb::{AtomDatabase, DatabaseConfig};
use microbench::{criterion_group, criterion_main, Criterion};
use rrc_service::{cycling_requests, run_closed_loop, ServiceConfig, SpectralService};
use rrc_spectral::{EnergyGrid, GridPoint};

const WAVE: usize = 12;
const CLIENTS: usize = 4;

fn db() -> Arc<AtomDatabase> {
    Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: 6,
        ..DatabaseConfig::default()
    }))
}

fn points() -> Vec<GridPoint> {
    (0..3)
        .map(|i| GridPoint {
            temperature_k: 9.5e6 + 4.4e5 * i as f64,
            density_cm3: 1.0,
            time_s: 0.0,
            index: i,
        })
        .collect()
}

fn config(gpus: usize, cache_capacity: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::deterministic(db(), vec![EnergyGrid::linear(50.0, 2000.0, 64)]);
    cfg.engine.gpus = gpus;
    cfg.cache_capacity = cache_capacity;
    cfg
}

fn bench_service(c: &mut Criterion) {
    let pts = points();
    for gpus in [1usize, 2] {
        for (cache_label, capacity) in [("cache_on", 4096usize), ("cache_off", 0)] {
            let id = format!("service_wave_{gpus}gpu_{cache_label}");
            let service = SpectralService::start(config(gpus, capacity));
            if capacity > 0 {
                // Warm every distinct state once so measured iterations
                // run the steady-state hit path.
                let report = run_closed_loop(&service, cycling_requests(&pts, 0, pts.len()), 1);
                assert_eq!(report.completed, pts.len() as u64);
            }
            c.bench_function(id.as_str(), |b| {
                b.iter_custom(|iters| {
                    let start = Instant::now();
                    for _ in 0..iters {
                        let report =
                            run_closed_loop(&service, cycling_requests(&pts, 0, WAVE), CLIENTS);
                        assert_eq!(report.completed, WAVE as u64, "{id}: wave must complete");
                    }
                    start.elapsed()
                });
            });
            let report = service.shutdown();
            assert_eq!(report.engine.leaked_grants, 0, "{id}: leaked grants");
        }
    }
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
