//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * scheduler tie-breaking by history count vs plain index order,
//! * Fermi serial queues vs Kepler Hyper-Q concurrency,
//! * the NEI task-packing factor (timesteps per task).
//!
//! Each ablation reports the *makespan* the variant produces via the
//! discrete-event replica (printed once per run), while Criterion
//! measures regeneration cost.

use hybrid_spectral::desmodel::{self, nei_config, spectral_config};
use hybrid_spectral::{Calibration, Granularity};
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spectral_bench::paper_inputs;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let (workload, calib) = paper_inputs();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // Hyper-Q: more concurrent tasks per device changes the queueing
    // discipline (paper SIII-A discusses Fermi vs Kepler).
    for concurrent in [1usize, 4, 32] {
        group.bench_with_input(
            BenchmarkId::new("hyper_q_slots", concurrent),
            &concurrent,
            |b, &concurrent| {
                b.iter(|| {
                    let mut cfg = spectral_config(&workload, &calib, Granularity::Ion, 2, 6, None);
                    cfg.concurrent_per_gpu = concurrent;
                    black_box(desmodel::run(cfg).makespan_s)
                });
            },
        );
    }

    // NEI packing factor: the paper packs 10 timesteps per task; the
    // per-task service scales with the packing while the per-task
    // overhead does not.
    for pack in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::new("nei_packing", pack), &pack, |b, &pack| {
            let calib = Calibration::paper();
            b.iter(|| {
                // pack>10 makes tasks heavier and fewer: scale the
                // service by pack/10 and the count by 10/pack.
                let mut cfg = nei_config(&calib, 24, 24_000 / pack.max(1), 2, 8);
                for tasks in &mut cfg.rank_tasks {
                    for t in tasks {
                        let scale = pack as f64 / 10.0;
                        t.exclusive_s *= scale;
                        t.cpu_s *= scale;
                    }
                }
                black_box(desmodel::run(cfg).makespan_s)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
