//! Criterion bench for the Table II regeneration: the NEI
//! discrete-event scaling run per GPU count, plus one real LSODA task
//! batch (the numerics behind the cost anchors).

use hybrid_spectral::desmodel::{self, nei_config};
use hybrid_spectral::Calibration;
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nei::{LsodaSolver, NeiTask, NeiWorkload};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let calib = Calibration::paper();
    let mut group = c.benchmark_group("table2_nei");
    group.sample_size(10);
    for gpus in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("des", gpus), &gpus, |b, &gpus| {
            b.iter(|| {
                let cfg = nei_config(&calib, 24, 1000, gpus, 8);
                black_box(desmodel::run(cfg).makespan_s)
            });
        });
    }
    group.bench_function("real_task_batch", |b| {
        let workload = NeiWorkload {
            points: 1,
            timesteps: 10,
            steps_per_task: 10,
            dt_s: 1e4,
        };
        let task = workload.task(0, 0, 1e7, 1.0);
        let solver = LsodaSolver::default();
        b.iter(|| {
            let mut state = NeiTask::neutral_state();
            black_box(task.execute(&solver, &mut state).steps)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
