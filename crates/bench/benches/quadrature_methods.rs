//! Microbench: the per-bin integration methods on a realistic RRC
//! integrand — the cost ladder behind the paper's method choices
//! (Simpson-64 on the GPU, QAGS on the CPU, Romberg-k for accuracy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quadrature::{qags_with, romberg, simpson, AdaptiveConfig, GaussLegendre, QagsWorkspace};
use rrc_spectral::RrcIntegrand;
use std::hint::black_box;

fn integrand() -> RrcIntegrand {
    RrcIntegrand {
        kt_ev: 862.0,
        binding_ev: 870.0,
        n: 1,
        electron_density: 1.0,
        ion_density: 1e-4,
    }
}

fn bench_methods(c: &mut Criterion) {
    let f = integrand();
    let (lo, hi) = (880.0, 910.0); // one energy bin above the edge
    let mut group = c.benchmark_group("quadrature_per_bin");

    group.bench_function("simpson_64", |b| {
        b.iter(|| black_box(simpson(|e| f.evaluate(e), lo, hi, 64).value));
    });
    for k in [7u32, 9, 11, 13] {
        group.bench_with_input(BenchmarkId::new("romberg", k), &k, |b, &k| {
            b.iter(|| black_box(romberg(|e| f.evaluate(e), lo, hi, k).value));
        });
    }
    group.bench_function("qags", |b| {
        let mut ws = QagsWorkspace::new();
        let cfg = AdaptiveConfig::default();
        b.iter(|| {
            black_box(
                qags_with(&mut ws, cfg, |e| f.evaluate(e), lo, hi)
                    .map(|e| e.value)
                    .unwrap_or(0.0),
            )
        });
    });
    group.bench_function("gauss_legendre_21", |b| {
        let rule = GaussLegendre::new(21);
        b.iter(|| black_box(rule.integrate(|e| f.evaluate(e), lo, hi).value));
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
