//! Microbench: the per-bin integration methods on a realistic RRC
//! integrand — the cost ladder behind the paper's method choices
//! (Simpson-64 on the GPU, QAGS on the CPU, Romberg-k for accuracy) —
//! plus the A/B for this repo's fused hot path: bin-range
//! `integrate_bins` over a prepared integrand vs the seed's
//! bin-at-a-time loop over the unprepared arithmetic.

use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quadrature::{
    integrate_bins, integrate_bins_sampled, qags_with, romberg, simpson, AdaptiveConfig, BinRule,
    GaussLegendre, QagsWorkspace,
};
use rrc_spectral::RrcIntegrand;
use std::hint::black_box;

fn integrand() -> RrcIntegrand {
    RrcIntegrand::new(862.0, 870.0, 1, 1.0, 1e-4)
}

fn bench_methods(c: &mut Criterion) {
    let f = integrand();
    let (lo, hi) = (880.0, 910.0); // one energy bin above the edge
    let mut group = c.benchmark_group("quadrature_per_bin");

    group.bench_function("simpson_64", |b| {
        b.iter(|| black_box(simpson(|e| f.evaluate(e), lo, hi, 64).value));
    });
    for k in [7u32, 9, 11, 13] {
        group.bench_with_input(BenchmarkId::new("romberg", k), &k, |b, &k| {
            b.iter(|| black_box(romberg(|e| f.evaluate(e), lo, hi, k).value));
        });
    }
    group.bench_function("qags", |b| {
        let mut ws = QagsWorkspace::new();
        let cfg = AdaptiveConfig::default();
        b.iter(|| {
            black_box(
                qags_with(&mut ws, cfg, |e| f.evaluate(e), lo, hi)
                    .map(|e| e.value)
                    .unwrap_or(0.0),
            )
        });
    });
    group.bench_function("gauss_legendre_21", |b| {
        let rule = GaussLegendre::new(21);
        b.iter(|| black_box(rule.integrate(|e| f.evaluate(e), lo, hi).value));
    });
    group.finish();
}

/// The hot-path A/B: one level integrated over a 512-bin grid.
///
/// * `seed_per_bin` — the seed pipeline: one `simpson` call per bin, the
///   Maxwellian prefactor and cross section recomputed on every sample.
/// * `prepared_per_bin` — same loop, per-sample invariants hoisted.
/// * `fused_bins` — `integrate_bins`: prepared integrand plus shared
///   bin-edge samples evaluated once.
/// * `fused_bins_sampled` — `integrate_bins_sampled` over the
///   [`rrc_spectral::PreparedIntegrand`] sampler: the full hot path,
///   with one `exp` per bin grid via the exponential recurrence.
fn bench_fused_vs_seed(c: &mut Criterion) {
    let f = integrand();
    let p = f.prepare();
    let bins: Vec<(f64, f64)> = (0..512)
        .map(|i| (880.0 + 3.0 * f64::from(i), 883.0 + 3.0 * f64::from(i)))
        .collect();
    let mut group = c.benchmark_group("quadrature_hotpath");

    group.bench_function("seed_per_bin_simpson_64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(lo, hi) in &bins {
                acc += simpson(|e| f.evaluate_unprepared(e), lo, hi, 64).value;
            }
            black_box(acc)
        });
    });
    group.bench_function("prepared_per_bin_simpson_64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(lo, hi) in &bins {
                acc += simpson(|e| p.evaluate(e), lo, hi, 64).value;
            }
            black_box(acc)
        });
    });
    group.bench_function("fused_bins_simpson_64", |b| {
        let mut out = vec![0.0; bins.len()];
        b.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            black_box(integrate_bins(
                BinRule::Simpson { panels: 64 },
                |e| p.evaluate(e),
                &bins,
                &mut out,
            ))
        });
    });
    group.bench_function("fused_bins_sampled_simpson_64", |b| {
        let mut p = f.prepare();
        let mut out = vec![0.0; bins.len()];
        b.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            black_box(integrate_bins_sampled(
                BinRule::Simpson { panels: 64 },
                &mut p,
                &bins,
                &mut out,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_methods, bench_fused_vs_seed);
criterion_main!(benches);
