//! Criterion bench for the Fig. 3 regeneration: one discrete-event
//! replay of the 24-point hybrid run per (granularity, GPU count).
//! The measured quantity is the cost of regenerating the figure; the
//! figure's *values* are printed by `repro-fig3`.

use hybrid_spectral::desmodel::{self, spectral_config};
use hybrid_spectral::Granularity;
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spectral_bench::paper_inputs;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let (workload, calib) = paper_inputs();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for granularity in [Granularity::Ion, Granularity::Level] {
        for gpus in [1usize, 4] {
            let id = BenchmarkId::new(format!("{granularity:?}"), gpus);
            group.bench_with_input(id, &gpus, |b, &gpus| {
                b.iter(|| {
                    let cfg = spectral_config(&workload, &calib, granularity, gpus, 12, None);
                    black_box(desmodel::run(cfg).makespan_s)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
