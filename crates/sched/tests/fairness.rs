//! Long-run fairness and liveness of the concurrent scheduler.

use hybrid_sched::{DeviceId, Scheduler};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn history_tiebreak_keeps_devices_balanced_under_contention() {
    let s = Scheduler::new(4, 6);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let s = s.clone();
            scope.spawn(move || {
                for _ in 0..2_000 {
                    if let Some(g) = s.alloc() {
                        std::hint::spin_loop();
                        s.free(g);
                    }
                }
            });
        }
    });
    let histories = s.snapshot().histories;
    let max = *histories.iter().max().unwrap() as f64;
    let min = *histories.iter().min().unwrap() as f64;
    assert!(min > 0.0);
    // The policy reads loads/histories as individually-atomic words, not
    // a consistent snapshot (exactly like the paper's shared-memory
    // scheduler), so racy interleavings cause drift; the balance target
    // must still show at a coarse level.
    assert!(max / min < 2.0, "history imbalance {histories:?}");
}

#[test]
fn no_thread_starves() {
    let s = Scheduler::new(1, 2);
    let grants_per_thread: Vec<AtomicU64> = (0..6).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for counter in &grants_per_thread {
            let s = s.clone();
            scope.spawn(move || {
                for _ in 0..5_000 {
                    if let Some(g) = s.alloc() {
                        counter.fetch_add(1, Ordering::Relaxed);
                        s.free(g);
                    }
                    std::hint::spin_loop();
                }
            });
        }
    });
    for (i, c) in grants_per_thread.iter().enumerate() {
        assert!(c.load(Ordering::Relaxed) > 0, "thread {i} starved");
    }
}

#[test]
fn queue_bound_holds_under_heavy_racing() {
    let s = Scheduler::new(2, 3);
    let violations = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..12 {
            let s = s.clone();
            let violations = &violations;
            scope.spawn(move || {
                let mut held = Vec::new();
                for round in 0..3_000usize {
                    if round % 3 == 2 {
                        if let Some(g) = held.pop() {
                            s.free(g);
                        }
                    } else if let Some(g) = s.alloc() {
                        for d in 0..2 {
                            if s.load(DeviceId(d)) > 3 {
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        held.push(g);
                    }
                }
                for g in held {
                    s.free(g);
                }
            });
        }
    });
    assert_eq!(violations.load(Ordering::Relaxed), 0);
    let loads = s.snapshot().loads;
    assert!(loads.iter().all(|&l| l == 0));
}
