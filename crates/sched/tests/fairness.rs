//! Long-run fairness and liveness of the concurrent scheduler.

use hybrid_sched::{DeviceId, Next, SchedPolicy, Scheduler, StealQueues};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The balance experiments are timing-sensitive: a thread preempted
/// for a full timeslice while holding a grant parks its device and
/// skews the history split. Running two such experiments concurrently
/// in this binary (the harness parallelizes `#[test]`s) doubles the
/// oversubscription on small CI runners, so each one takes this lock
/// and measures alone.
static CONTENTION: Mutex<()> = Mutex::new(());

fn contention_lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking balance test must not poison-cascade the others.
    CONTENTION
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One alloc/free churn experiment: `threads` workers hammer a
/// 4-device scheduler under `policy`; returns the history split.
fn churn_histories(policy: SchedPolicy) -> Vec<u64> {
    let s = Scheduler::with_policy(4, 6, policy);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let s = s.clone();
            scope.spawn(move || {
                for _ in 0..2_000 {
                    if let Some(g) = s.alloc() {
                        std::hint::spin_loop();
                        s.free(g);
                    }
                }
            });
        }
    });
    assert_eq!(s.in_flight(), 0);
    s.snapshot().histories
}

/// Assert the history split balances within `bound`, retrying the
/// experiment a few times: on an oversubscribed single-core runner a
/// thread preempted *while holding a grant* parks its device for a
/// whole timeslice and skews one trial arbitrarily — that drift is
/// random, while a genuine policy bias reproduces in every trial.
fn assert_balances(policy: SchedPolicy, bound: f64) {
    let mut last = Vec::new();
    for _attempt in 0..5 {
        let histories = churn_histories(policy);
        let max = *histories.iter().max().unwrap() as f64;
        let min = *histories.iter().min().unwrap() as f64;
        if min > 0.0 && max / min < bound {
            return;
        }
        last = histories;
    }
    panic!("{policy:?} imbalance persisted across 5 trials: {last:?}");
}

#[test]
fn history_tiebreak_keeps_devices_balanced_under_contention() {
    let _serial = contention_lock();
    // The policy reads loads/histories as individually-atomic words, not
    // a consistent snapshot (exactly like the paper's shared-memory
    // scheduler), so racy interleavings cause drift; the balance target
    // must still show at a coarse level.
    assert_balances(SchedPolicy::CostAware, 2.0);
}

#[test]
fn no_thread_starves() {
    let _serial = contention_lock();
    let s = Scheduler::new(1, 2);
    let grants_per_thread: Vec<AtomicU64> = (0..6).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for counter in &grants_per_thread {
            let s = s.clone();
            scope.spawn(move || {
                // Liveness, not throughput: keep trying until this
                // thread wins at least one grant (a fixed iteration
                // budget starves spuriously on oversubscribed
                // single-core CI), with a generous cap so a genuine
                // livelock still fails instead of hanging.
                for round in 0..2_000_000u64 {
                    if let Some(g) = s.alloc() {
                        counter.fetch_add(1, Ordering::Relaxed);
                        s.free(g);
                        if round > 2_000 {
                            break; // got a late grant; liveness shown
                        }
                    }
                    if round >= 2_000 && counter.load(Ordering::Relaxed) > 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    for (i, c) in grants_per_thread.iter().enumerate() {
        assert!(c.load(Ordering::Relaxed) > 0, "thread {i} starved");
    }
}

#[test]
fn queue_bound_holds_under_heavy_racing() {
    let _serial = contention_lock();
    let s = Scheduler::new(2, 3);
    let violations = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..12 {
            let s = s.clone();
            let violations = &violations;
            scope.spawn(move || {
                let mut held = Vec::new();
                for round in 0..3_000usize {
                    if round % 3 == 2 {
                        if let Some(g) = held.pop() {
                            s.free(g);
                        }
                    } else if let Some(g) = s.alloc() {
                        for d in 0..2 {
                            if s.load(DeviceId(d)) > 3 {
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        held.push(g);
                    }
                }
                for g in held {
                    s.free(g);
                }
            });
        }
    });
    assert_eq!(violations.load(Ordering::Relaxed), 0);
    let loads = s.snapshot().loads;
    assert!(loads.iter().all(|&l| l == 0));
}

/// Fairness must hold under both placement policies: with unit costs
/// the cost-aware scheduler *is* the paper scheduler, so both runs face
/// the same balance target.
#[test]
fn both_policies_balance_unit_cost_contention() {
    let _serial = contention_lock();
    assert_balances(SchedPolicy::CostAware, 2.0);
    assert_balances(SchedPolicy::PaperCount, 2.0);
}

/// Skewed costs under the cost-aware policy: weighted histories end up
/// far better balanced than the raw cost stream would be under blind
/// round-robin, and all accounting drains to zero.
#[test]
fn cost_aware_policy_balances_weighted_work_under_contention() {
    let _serial = contention_lock();
    let mut last = Vec::new();
    for _attempt in 0..5 {
        let s = Scheduler::new(3, 6);
        std::thread::scope(|scope| {
            for t in 0..6u64 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..1_500u64 {
                        // Zipf-ish skew: mostly 1s, occasional heavy tasks.
                        let cost = if (t + i) % 50 == 0 { 400 } else { 1 + i % 3 };
                        if let Some(g) = s.alloc_cost(cost) {
                            std::hint::spin_loop();
                            s.free_observed(g, cost as f64 * 1e-7);
                        }
                    }
                });
            }
        });
        let snap = s.snapshot();
        // Exact accounting must hold in EVERY trial — only the
        // statistical balance target gets the timeslice-drift retry.
        assert_eq!(snap.in_flight(), 0);
        assert!(snap.weighted_loads.iter().all(|&w| w == 0));
        let max = *snap.weighted_histories.iter().max().unwrap() as f64;
        let min = *snap.weighted_histories.iter().min().unwrap() as f64;
        if min > 0.0 && max / min < 2.0 {
            return;
        }
        last = snap.weighted_histories;
    }
    panic!("weighted-history imbalance persisted across 5 trials: {last:?}");
}

/// End-to-end steal protocol under contention: producers stage granted
/// tasks, per-device consumers pull with stealing enabled whenever
/// their device queue is short, and every grant is freed exactly once —
/// no leaks, exact snapshot accounting, and at least some steals on a
/// skewed stream.
#[test]
fn stealing_consumers_drain_everything_without_leaking_grants() {
    let _serial = contention_lock();
    const DEVICES: usize = 3;
    const TASKS: u64 = 900;
    let s = Scheduler::new(DEVICES, 4);
    let queues: StealQueues<hybrid_sched::Grant> = StealQueues::new(DEVICES);
    let completed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        // Consumers: one per device, stealing when their queue is short.
        for d in 0..DEVICES {
            let s = s.clone();
            let queues = queues.clone();
            let completed = &completed;
            scope.spawn(move || loop {
                let can_steal = s.load(DeviceId(d)) < 4;
                match queues.next(d, can_steal) {
                    Next::Local(t) => {
                        s.free_observed(t.item, t.cost as f64 * 1e-7);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Next::Stolen { victim, task } => match s.reassign(task.item, DeviceId(d)) {
                        Ok(moved) => {
                            s.free_observed(moved, moved.cost as f64 * 1e-7);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        // Thief filled up meanwhile: hand it back.
                        Err(kept) => queues.stage(victim, kept.cost, kept),
                    },
                    Next::Closed => break,
                }
            });
        }
        // Producers: skewed costs, CPU fallback when all queues full.
        for p in 0..3u64 {
            let s = s.clone();
            let queues = queues.clone();
            let completed = &completed;
            scope.spawn(move || {
                for i in 0..TASKS / 3 {
                    let cost = if (p + i) % 20 == 0 { 300 } else { 1 + i % 5 };
                    match s.alloc_cost(cost) {
                        Some(g) => queues.stage(g.device.0, cost, g),
                        // All device queues at the bound -> the task
                        // runs on the producer's CPU, no grant held.
                        None => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // Consumers drain staged work without needing close(); close
        // once every task is accounted for so they can exit.
        let queues = queues.clone();
        let completed = &completed;
        scope.spawn(move || {
            while completed.load(Ordering::Relaxed) < TASKS {
                std::thread::yield_now();
            }
            queues.close();
        });
    });
    assert_eq!(completed.load(Ordering::Relaxed), TASKS);
    let snap = s.snapshot();
    assert_eq!(snap.in_flight(), 0, "leaked grants: {:?}", snap.loads);
    assert!(snap.weighted_loads.iter().all(|&w| w == 0));
    assert_eq!(snap.total_history(), snap.histories.iter().sum::<u64>());
}
