//! Maximum-queue-length autotuning.
//!
//! Paper §III-A: "the scheduler chooses the maximum queue length through
//! an automatic test. At the beginning the scheduler will try to find
//! the most proper maximum queue length by increasing the value of it
//! gradually until the performance inflexion occurs. And then the
//! maximum queue length will be fixed at the value leading to the
//! inflexion point."
//!
//! [`AutoTuner`] is measurement-agnostic: callers feed it
//! `(queue_length, total_time)` observations and ask for the next
//! candidate until it converges.

/// Incremental inflexion finder over `(qlen, time)` observations.
#[derive(Debug, Clone)]
pub struct AutoTuner {
    /// Candidate step between probes (paper sweeps even lengths).
    step: u64,
    /// Largest queue length worth probing.
    max_candidate: u64,
    /// Consecutive non-improving probes required to declare the
    /// inflexion (1 = stop at first worsening; 2 tolerates one noisy
    /// probe).
    patience: u32,
    observations: Vec<(u64, f64)>,
    best: Option<(u64, f64)>,
    non_improving: u32,
    next: u64,
    done: bool,
}

impl AutoTuner {
    /// A tuner probing `start, start+step, ...` up to `max_candidate`.
    #[must_use]
    pub fn new(start: u64, step: u64, max_candidate: u64) -> AutoTuner {
        let start = start.max(1);
        AutoTuner {
            step: step.max(1),
            max_candidate: max_candidate.max(start),
            patience: 1,
            observations: Vec::new(),
            best: None,
            non_improving: 0,
            next: start,
            done: false,
        }
    }

    /// The paper's sweep: even lengths 2..=14.
    #[must_use]
    pub fn paper_sweep() -> AutoTuner {
        AutoTuner::new(2, 2, 14)
    }

    /// Allow `patience` consecutive non-improving probes before
    /// stopping.
    #[must_use]
    pub fn with_patience(mut self, patience: u32) -> AutoTuner {
        self.patience = patience.max(1);
        self
    }

    /// The next queue length to measure, or `None` once converged.
    #[must_use]
    pub fn next_candidate(&self) -> Option<u64> {
        if self.done {
            None
        } else {
            Some(self.next)
        }
    }

    /// Record that running with `qlen` took `total_time`. `qlen` must be
    /// the current candidate.
    ///
    /// # Panics
    /// Panics if `qlen` is not the pending candidate or the tuner is
    /// done.
    pub fn observe(&mut self, qlen: u64, total_time: f64) {
        assert!(!self.done, "tuner already converged");
        assert_eq!(Some(qlen), self.next_candidate(), "observe the candidate");
        self.observations.push((qlen, total_time));
        let improved = match self.best {
            None => true,
            Some((_, best_time)) => total_time < best_time,
        };
        if improved {
            self.best = Some((qlen, total_time));
            self.non_improving = 0;
        } else {
            self.non_improving += 1;
            if self.non_improving >= self.patience {
                self.done = true;
                return;
            }
        }
        if self.next + self.step > self.max_candidate {
            self.done = true;
        } else {
            self.next += self.step;
        }
    }

    /// The best `(qlen, time)` seen so far, i.e. the inflexion point
    /// once [`AutoTuner::next_candidate`] returns `None`.
    #[must_use]
    pub fn best(&self) -> Option<(u64, f64)> {
        self.best
    }

    /// All observations in probe order.
    #[must_use]
    pub fn observations(&self) -> &[(u64, f64)] {
        &self.observations
    }

    /// Convenience: drive the tuner to convergence with `measure` and
    /// return the chosen queue length.
    pub fn tune<F: FnMut(u64) -> f64>(mut self, mut measure: F) -> u64 {
        while let Some(q) = self.next_candidate() {
            let t = measure(q);
            self.observe(q, t);
        }
        self.best().map(|(q, _)| q).unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A convex curve with a minimum at qlen 10 (like paper Fig. 4).
    fn convex(q: u64) -> f64 {
        let d = q as f64 - 10.0;
        100.0 + d * d
    }

    #[test]
    fn finds_the_inflexion_of_a_convex_curve() {
        let best = AutoTuner::paper_sweep().tune(convex);
        assert_eq!(best, 10);
    }

    #[test]
    fn stops_probing_after_the_inflexion() {
        let mut tuner = AutoTuner::paper_sweep();
        let mut probes = Vec::new();
        while let Some(q) = tuner.next_candidate() {
            probes.push(q);
            tuner.observe(q, convex(q));
        }
        // Probes 2,4,6,8,10 improve; 12 worsens and stops the sweep.
        assert_eq!(probes, vec![2, 4, 6, 8, 10, 12]);
    }

    #[test]
    fn monotone_decreasing_curve_probes_to_the_cap() {
        let best = AutoTuner::new(1, 1, 5).tune(|q| 100.0 / q as f64);
        assert_eq!(best, 5);
    }

    #[test]
    fn patience_survives_one_noisy_probe() {
        // Time dips at 4, blips at 6, truly improves again at 8.
        let times = |q: u64| match q {
            2 => 50.0,
            4 => 40.0,
            6 => 41.0,
            8 => 30.0,
            _ => 100.0,
        };
        let impatient = AutoTuner::new(2, 2, 10).tune(times);
        assert_eq!(impatient, 4);
        let patient = AutoTuner::new(2, 2, 10).with_patience(2).tune(times);
        assert_eq!(patient, 8);
    }

    #[test]
    fn patience_two_still_stops_on_two_consecutive_regressions() {
        // 4 is the genuine minimum; 6 and 8 both regress, so even the
        // patient tuner must stop *without* probing 10.
        let mut tuner = AutoTuner::new(2, 2, 14).with_patience(2);
        let mut probes = Vec::new();
        while let Some(q) = tuner.next_candidate() {
            probes.push(q);
            let t = match q {
                2 => 50.0,
                4 => 40.0,
                _ => 60.0,
            };
            tuner.observe(q, t);
        }
        assert_eq!(probes, vec![2, 4, 6, 8]);
        assert_eq!(tuner.best(), Some((4, 40.0)));
    }

    #[test]
    fn patience_counter_resets_after_each_improvement() {
        // Alternating blip/improve: every regression is isolated, so a
        // patience-2 tuner rides the noise all the way to the cap.
        let best = AutoTuner::new(1, 1, 6).with_patience(2).tune(|q| {
            if q % 2 == 0 {
                100.0
            } else {
                50.0 - q as f64
            }
        });
        assert_eq!(best, 5);
    }

    #[test]
    fn max_candidate_clamps_up_to_start() {
        // A cap below the start is meaningless; the tuner probes the
        // start exactly once and converges there.
        let mut tuner = AutoTuner::new(8, 2, 3);
        assert_eq!(tuner.next_candidate(), Some(8));
        tuner.observe(8, 1.0);
        assert!(tuner.next_candidate().is_none());
        assert_eq!(tuner.best(), Some((8, 1.0)));
    }

    #[test]
    fn candidates_never_exceed_max_candidate() {
        // Step overshoots the cap mid-sweep: 3, 7, and then 11 > 9 must
        // not be probed even though times keep improving.
        let mut tuner = AutoTuner::new(3, 4, 9).with_patience(3);
        let mut probes = Vec::new();
        while let Some(q) = tuner.next_candidate() {
            probes.push(q);
            tuner.observe(q, 100.0 / q as f64);
        }
        assert_eq!(probes, vec![3, 7]);
        assert!(probes.iter().all(|&q| q <= 9));
        assert_eq!(tuner.best(), Some((7, 100.0 / 7.0)));
    }

    #[test]
    fn zero_patience_is_clamped_to_one() {
        // with_patience(0) must behave like patience 1, not loop or
        // stop before any regression is seen.
        let best = AutoTuner::new(2, 2, 10)
            .with_patience(0)
            .tune(|q| (q as f64 - 6.0).abs());
        assert_eq!(best, 6);
    }

    #[test]
    fn observations_are_recorded_in_order() {
        let mut tuner = AutoTuner::new(1, 1, 3);
        tuner.observe(1, 3.0);
        tuner.observe(2, 2.0);
        tuner.observe(3, 1.0);
        assert_eq!(tuner.observations(), &[(1, 3.0), (2, 2.0), (3, 1.0)]);
        assert_eq!(tuner.best(), Some((3, 1.0)));
        assert!(tuner.next_candidate().is_none());
    }

    #[test]
    #[should_panic(expected = "observe the candidate")]
    fn observing_wrong_candidate_panics() {
        let mut tuner = AutoTuner::new(2, 2, 14);
        tuner.observe(4, 1.0);
    }
}
