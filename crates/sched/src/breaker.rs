//! Per-target circuit breakers over a rolling outcome window.
//!
//! The health ladder ([`crate::health`]) reacts to *device* failures
//! observed inside one engine; a routing tier also needs protection
//! against a **replica** that keeps erring or straggling while its
//! devices still look individually healthy. A [`CircuitBreaker`]
//! generalizes the demotion bit into the classic three-state machine:
//!
//! ```text
//!            failure rate ≥ threshold
//!            (≥ min_samples in window)
//!   Closed ───────────────────────────► Open
//!     ▲                                  │ cooldown elapses
//!     │ probe succeeds                   ▼
//!     └────────────────────────────── HalfOpen ──► Open (probe fails)
//! ```
//!
//! While Open, every [`CircuitBreaker::allow`] is refused; once the
//! cooldown elapses the breaker moves to HalfOpen and grants exactly
//! **one** probe. The probe's outcome decides: success closes the
//! breaker (window reset), failure re-opens it for another cooldown.
//!
//! Time is an explicit `now` in clock seconds (a
//! [`desim::VirtualClock`] reading) rather than `Instant`, so breaker
//! decisions replay deterministically under a manual test clock.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// The breaker's position in the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes feed the rolling window.
    Closed,
    /// Traffic refused until the cooldown elapses.
    Open,
    /// One probe is in flight; its outcome decides the next state.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case label for JSON snapshots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Tuning knobs of one breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Rolling window length in outcomes.
    pub window: usize,
    /// Failure fraction within the window that trips the breaker.
    pub failure_threshold: f64,
    /// Minimum outcomes in the window before it may trip (a single
    /// early failure must not open a cold breaker).
    pub min_samples: usize,
    /// Seconds the breaker stays Open before granting a probe.
    pub cooldown_s: f64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 16,
            failure_threshold: 0.5,
            min_samples: 4,
            cooldown_s: 0.25,
        }
    }
}

/// Lifetime transition counters (snapshot observability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerCounters {
    /// Closed/HalfOpen → Open transitions.
    pub opens: u64,
    /// Open → HalfOpen transitions (probes granted).
    pub half_opens: u64,
    /// HalfOpen → Closed transitions (probes succeeded).
    pub closes: u64,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    /// Rolling outcomes, `true` = failure.
    window: VecDeque<bool>,
    failures: usize,
    /// Clock second the breaker last opened.
    opened_at: f64,
    counters: BreakerCounters,
}

/// One breaker guarding one target (module docs). Thread-safe; every
/// method takes the current clock seconds explicitly.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with `config`.
    #[must_use]
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                window: VecDeque::new(),
                failures: 0,
                opened_at: 0.0,
                counters: BreakerCounters::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// May traffic flow to the target right now? Closed: yes. Open:
    /// no — unless the cooldown has elapsed, which moves the breaker to
    /// HalfOpen and grants this caller the single probe. HalfOpen: no
    /// (the probe is already out).
    pub fn allow(&self, now: f64) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                if now - inner.opened_at >= self.config.cooldown_s {
                    inner.state = BreakerState::HalfOpen;
                    inner.counters.half_opens += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful outcome against the target.
    pub fn record_success(&self, now: f64) {
        self.record(now, false);
    }

    /// Record a failed (or timed-out) outcome against the target.
    pub fn record_failure(&self, now: f64) {
        self.record(now, true);
    }

    fn record(&self, now: f64, failed: bool) {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::HalfOpen => {
                // The probe's verdict.
                if failed {
                    inner.open(now);
                } else {
                    inner.state = BreakerState::Closed;
                    inner.window.clear();
                    inner.failures = 0;
                    inner.counters.closes += 1;
                }
            }
            BreakerState::Closed => {
                inner.window.push_back(failed);
                if failed {
                    inner.failures += 1;
                }
                while inner.window.len() > self.config.window {
                    if inner.window.pop_front() == Some(true) {
                        inner.failures -= 1;
                    }
                }
                let n = inner.window.len();
                if n >= self.config.min_samples.max(1)
                    && inner.failures as f64 >= self.config.failure_threshold * n as f64
                {
                    inner.open(now);
                }
            }
            // Late outcomes of requests that were in flight when the
            // breaker opened carry no new information.
            BreakerState::Open => {}
        }
    }

    /// The current state (Open is reported as-is even when the cooldown
    /// has elapsed — only [`allow`](Self::allow) moves the machine).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Lifetime transition counters.
    #[must_use]
    pub fn counters(&self) -> BreakerCounters {
        self.lock().counters
    }
}

impl BreakerInner {
    fn open(&mut self, now: f64) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.window.clear();
        self.failures = 0;
        self.counters.opens += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            cooldown_s: 1.0,
        }
    }

    #[test]
    fn stays_closed_under_sparse_failures() {
        let b = CircuitBreaker::new(fast());
        for i in 0..32 {
            assert!(b.allow(i as f64 * 0.01));
            if i % 4 == 0 {
                b.record_failure(i as f64 * 0.01);
            } else {
                b.record_success(i as f64 * 0.01);
            }
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.counters().opens, 0);
    }

    #[test]
    fn trips_after_min_samples_at_threshold() {
        let b = CircuitBreaker::new(fast());
        // Three failures: under min_samples, must not trip.
        for _ in 0..3 {
            b.record_failure(0.0);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(0.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.counters().opens, 1);
        assert!(!b.allow(0.5), "cooldown not elapsed");
    }

    #[test]
    fn half_open_grants_exactly_one_probe() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..4 {
            b.record_failure(0.0);
        }
        assert!(b.allow(1.5), "cooldown elapsed: the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(1.6), "second caller refused while probing");
        assert!(!b.allow(99.0), "time alone cannot mint more probes");
        assert_eq!(b.counters().half_opens, 1);
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..4 {
            b.record_failure(0.0);
        }
        assert!(b.allow(1.5));
        b.record_failure(1.6); // probe fails
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(2.0), "new cooldown restarts from the re-open");
        assert!(b.allow(2.7));
        b.record_success(2.8); // probe succeeds
        assert_eq!(b.state(), BreakerState::Closed);
        let c = b.counters();
        assert_eq!((c.opens, c.half_opens, c.closes), (2, 2, 1));
        // The window reset: old failures don't haunt the fresh state.
        b.record_failure(3.0);
        b.record_failure(3.0);
        b.record_failure(3.0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn rolling_window_forgets_old_outcomes() {
        let b = CircuitBreaker::new(fast());
        // A healthy prefix, two failures, then a run of successes
        // longer than the window: the failures age out, later failures
        // count alone.
        for _ in 0..4 {
            b.record_success(0.0);
        }
        b.record_failure(0.0);
        b.record_failure(0.0);
        for _ in 0..8 {
            b.record_success(0.1);
        }
        b.record_failure(0.2);
        b.record_failure(0.2);
        b.record_failure(0.2);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "3 of 8 in-window failures is under the 0.5 threshold"
        );
    }

    #[test]
    fn outcomes_while_open_are_ignored() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..4 {
            b.record_failure(0.0);
        }
        b.record_success(0.1); // straggler reply from before the trip
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(1.5), "cooldown still measured from the open");
    }
}
