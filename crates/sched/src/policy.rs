//! The pure device-selection policy (paper Algorithm 1, `SCHE-ALLOC`).
//!
//! Kept free of any synchronization so the real-thread scheduler and the
//! discrete-event replica run the *same* function — differences between
//! real mode and virtual-time mode can then never come from policy
//! drift.

/// Which placement rule the scheduler runs.
///
/// The paper's Algorithm 1 balances by *task count*; RRC ion tasks are
/// wildly skewed (an Fe ion carries orders of magnitude more levels and
/// wider bin windows than H/He), so min-count placement leaves one
/// device grinding a heavy ion while the others idle. The cost-aware
/// policy balances by *estimated work* instead; the count policy stays
/// selectable for A/B ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Weighted placement: each task carries a `cost`, per-device loads
    /// are weighted sums (scaled by the device's observed
    /// service-time-per-unit EWMA), ties fall back to history then
    /// index. The count-based queue bound still applies.
    #[default]
    CostAware,
    /// Paper Algorithm 1 ablation: minimum task count, ties by minimum
    /// history count. Ignores task costs entirely.
    PaperCount,
}

/// How ties at the minimum load are broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Paper Algorithm 1: minimum history task count wins.
    #[default]
    History,
    /// Ablation baseline: lowest device index wins (no history state).
    Index,
}

/// Outcome of a selection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Queue the task on this device index.
    Device(usize),
    /// Every device is at the maximum queue length; compute on the CPU.
    AllBusy,
}

/// Select the target device given per-device `loads` and `histories`
/// and the maximum queue length:
///
/// 1. the device with the minimum load wins;
/// 2. among devices tied at the minimum load, the one with the minimum
///    history task count wins (paper: "If there are two or above GPUs
///    with the same load, the GPU with the minimum history task count
///    will be chosen");
/// 3. if the winning load is not below `max_queue_len`, every device is
///    full → [`Selection::AllBusy`].
///
/// Ties on both load *and* history resolve to the lowest device index,
/// which makes the policy total and deterministic.
///
/// # Panics
/// Panics if `loads` and `histories` differ in length.
#[must_use]
pub fn select_device(loads: &[u64], histories: &[u64], max_queue_len: u64) -> Selection {
    select_device_with(loads, histories, max_queue_len, TieBreak::History)
}

/// [`select_device`] with an explicit tie-breaking rule (the ablation
/// hook; the paper's scheduler always uses [`TieBreak::History`]).
///
/// # Panics
/// Panics if `loads` and `histories` differ in length.
#[must_use]
pub fn select_device_with(
    loads: &[u64],
    histories: &[u64],
    max_queue_len: u64,
    tie: TieBreak,
) -> Selection {
    assert_eq!(loads.len(), histories.len(), "per-device arrays must match");
    let mut best: Option<usize> = None;
    for i in 0..loads.len() {
        best = Some(match best {
            None => i,
            Some(b) => {
                let wins = loads[i] < loads[b]
                    || (loads[i] == loads[b]
                        && tie == TieBreak::History
                        && histories[i] < histories[b]);
                if wins {
                    i
                } else {
                    b
                }
            }
        });
    }
    match best {
        Some(b) if loads[b] < max_queue_len => Selection::Device(b),
        _ => Selection::AllBusy,
    }
}

/// Work-aware selection — the "improved scheme for load balancing" the
/// paper's §V names as ongoing work. Instead of counting *tasks*, each
/// device's queue is weighed by its outstanding *work* (e.g. integrand
/// evaluations); the device with the least backlog wins, ties broken by
/// history. The queue-length bound still applies to task counts, so the
/// CPU-fallback semantics are unchanged.
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn select_device_work_aware(
    loads: &[u64],
    outstanding_work: &[u64],
    histories: &[u64],
    max_queue_len: u64,
) -> Selection {
    assert_eq!(loads.len(), outstanding_work.len(), "per-device arrays");
    assert_eq!(loads.len(), histories.len(), "per-device arrays");
    let mut best: Option<usize> = None;
    for i in 0..loads.len() {
        if loads[i] >= max_queue_len {
            continue; // this queue is full regardless of its backlog
        }
        best = Some(match best {
            None => i,
            Some(b) => {
                let key_i = (outstanding_work[i], histories[i], i);
                let key_b = (outstanding_work[b], histories[b], b);
                if key_i < key_b {
                    i
                } else {
                    b
                }
            }
        });
    }
    match best {
        Some(b) => Selection::Device(b),
        None => Selection::AllBusy,
    }
}

/// Policy dispatch over the same per-device arrays: the cost-aware
/// branch is [`select_device_work_aware`] on the (possibly
/// EWMA-scaled) weighted backlogs, the paper branch is plain
/// [`select_device`] on task counts. Keeping one entry point means the
/// real-thread scheduler and any replica can never disagree about what
/// a policy value does.
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn select_device_for(
    policy: SchedPolicy,
    loads: &[u64],
    weighted_backlogs: &[u64],
    histories: &[u64],
    max_queue_len: u64,
) -> Selection {
    match policy {
        SchedPolicy::CostAware => {
            select_device_work_aware(loads, weighted_backlogs, histories, max_queue_len)
        }
        SchedPolicy::PaperCount => select_device(loads, histories, max_queue_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_minimum_load() {
        assert_eq!(
            select_device(&[3, 1, 2], &[0, 0, 0], 10),
            Selection::Device(1)
        );
    }

    #[test]
    fn ties_break_by_history() {
        assert_eq!(
            select_device(&[2, 2, 2], &[5, 3, 9], 10),
            Selection::Device(1)
        );
    }

    #[test]
    fn double_ties_break_by_index() {
        assert_eq!(select_device(&[1, 1], &[4, 4], 10), Selection::Device(0));
    }

    #[test]
    fn full_queues_mean_all_busy() {
        assert_eq!(select_device(&[4, 4], &[0, 1], 4), Selection::AllBusy);
        // One below the bound is still schedulable.
        assert_eq!(select_device(&[4, 3], &[0, 1], 4), Selection::Device(1));
    }

    #[test]
    fn empty_device_list_is_all_busy() {
        assert_eq!(select_device(&[], &[], 4), Selection::AllBusy);
    }

    #[test]
    fn index_tiebreak_ignores_history() {
        assert_eq!(
            select_device_with(&[2, 2], &[9, 1], 10, TieBreak::Index),
            Selection::Device(0)
        );
        assert_eq!(
            select_device_with(&[2, 2], &[9, 1], 10, TieBreak::History),
            Selection::Device(1)
        );
        // Load still dominates either way.
        assert_eq!(
            select_device_with(&[3, 2], &[0, 9], 10, TieBreak::Index),
            Selection::Device(1)
        );
    }

    #[test]
    fn work_aware_prefers_light_backlog_over_short_queue() {
        // Device 0 has fewer tasks but far more outstanding work.
        let loads = [1u64, 3];
        let work = [1_000_000u64, 5_000];
        let histories = [0u64, 0];
        assert_eq!(
            select_device_work_aware(&loads, &work, &histories, 6),
            Selection::Device(1)
        );
        // The count-based policy would pick device 0.
        assert_eq!(select_device(&loads, &histories, 6), Selection::Device(0));
    }

    #[test]
    fn work_aware_still_respects_the_queue_bound() {
        let loads = [6u64, 2];
        let work = [10u64, 1_000_000];
        let histories = [0u64, 0];
        // Device 0 is at the bound despite tiny backlog.
        assert_eq!(
            select_device_work_aware(&loads, &work, &histories, 6),
            Selection::Device(1)
        );
        assert_eq!(
            select_device_work_aware(&[6, 6], &work, &histories, 6),
            Selection::AllBusy
        );
    }

    /// Property: with unit costs the weighted backlog of a device *is*
    /// its task count, so the cost-aware policy must degenerate to the
    /// paper's count policy (load, then history, then index) on every
    /// input. Exhaustive over a small domain, including full queues.
    #[test]
    fn unit_costs_degenerate_to_paper_policy() {
        for l0 in 0..4u64 {
            for l1 in 0..4u64 {
                for l2 in 0..4u64 {
                    for h0 in 0..3u64 {
                        for h1 in 0..3u64 {
                            let loads = [l0, l1, l2];
                            let histories = [h0, h1, h0.wrapping_add(h1) % 3];
                            for q in 1..=4u64 {
                                let weighted = select_device_for(
                                    SchedPolicy::CostAware,
                                    &loads,
                                    &loads, // unit costs: backlog == count
                                    &histories,
                                    q,
                                );
                                let paper =
                                    select_device_with(&loads, &histories, q, TieBreak::History);
                                assert_eq!(
                                    weighted, paper,
                                    "loads {loads:?} histories {histories:?} q {q}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn policy_dispatch_diverges_only_on_costs() {
        // Device 0 holds fewer but heavier tasks: the paper policy picks
        // it, the cost-aware policy avoids it.
        let loads = [1u64, 2];
        let weighted = [900u64, 40];
        let histories = [0u64, 0];
        assert_eq!(
            select_device_for(SchedPolicy::PaperCount, &loads, &weighted, &histories, 6),
            Selection::Device(0)
        );
        assert_eq!(
            select_device_for(SchedPolicy::CostAware, &loads, &weighted, &histories, 6),
            Selection::Device(1)
        );
    }

    #[test]
    fn selection_is_argmin_under_lexicographic_order() {
        // Exhaustive check on a small domain: the selected device must be
        // lexicographically minimal in (load, history, index).
        for l0 in 0..4u64 {
            for l1 in 0..4u64 {
                for h0 in 0..3u64 {
                    for h1 in 0..3u64 {
                        let loads = [l0, l1];
                        let histories = [h0, h1];
                        match select_device(&loads, &histories, 3) {
                            Selection::Device(d) => {
                                for other in 0..2 {
                                    let chosen = (loads[d], histories[d], d);
                                    let alt = (loads[other], histories[other], other);
                                    assert!(chosen <= alt, "{loads:?} {histories:?}");
                                }
                                assert!(loads[d] < 3);
                            }
                            Selection::AllBusy => {
                                assert!(loads.iter().all(|&l| l >= 3));
                            }
                        }
                    }
                }
            }
        }
    }
}
