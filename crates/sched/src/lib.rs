//! The paper's shared-memory dynamic load balancer, generalized to
//! cost-aware placement.
//!
//! Paper Algorithm 1: each MPI process asks the local scheduler for a
//! GPU before every task. The scheduler keeps, in shared memory, two
//! arrays indexed by device — the current *load* (active + waiting
//! tasks) and the *history task count* — and picks the device with the
//! minimum load, breaking ties by minimum history count. If every
//! device is at the *maximum queue length*, the process computes the
//! task itself on its CPU (QAGS).
//!
//! RRC ion tasks are wildly skewed (an Fe ion carries orders of
//! magnitude more levels than H/He), so this crate generalizes the
//! count arrays to **weighted sums**: every grant carries a `cost` in
//! abstract work units, placement under [`SchedPolicy::CostAware`]
//! minimizes the weighted backlog scaled by each device's observed
//! service-time-per-unit EWMA (calibrated online from completions),
//! and idle consumers may **steal** staged tasks — with the grant
//! accounting moved exactly, never leaked. The paper's count policy
//! stays selectable as [`SchedPolicy::PaperCount`] for A/B runs.
//!
//! Split into:
//!
//! * [`policy`] — the pure selection function, shared verbatim by the
//!   real-thread runtime and the discrete-event performance replica, so
//!   the two cannot drift;
//! * [`Scheduler`] — the concurrent implementation over a
//!   [`mpi_sim::SharedRegion`] (atomic reservation via CAS so the queue
//!   bound holds under races);
//! * [`steal`] — per-device staging queues with largest-cost work
//!   stealing for granted-but-not-yet-launched tasks;
//! * [`autotune`] — the paper's "automatic test" that raises the maximum
//!   queue length until the performance inflexion point;
//! * [`cost`] — the online blend of the static task-cost model with
//!   measured per-task device seconds, keyed by workload class;
//! * [`tuner`] — the resident [`OnlineTuner`] controller that promotes
//!   the one-shot autotune sweep to continuous epoch-based retuning of
//!   the live runtime knobs ([`TunerKnobs`]).

pub mod autotune;
pub mod breaker;
pub mod cost;
pub mod health;
pub mod policy;
pub mod steal;
pub mod tuner;

pub use autotune::AutoTuner;
pub use breaker::{BreakerConfig, BreakerCounters, BreakerState, CircuitBreaker};
pub use cost::{CostKey, CostModel};
pub use health::{HealthConfig, HealthSnapshot, HealthState, HealthTracker};
pub use policy::{
    select_device, select_device_for, select_device_with, select_device_work_aware, SchedPolicy,
    Selection, TieBreak,
};
pub use steal::{Next, Staged, StealQueues};
pub use tuner::{DimSnapshot, Knob, OnlineTuner, TunerDim, TunerKnobs, TunerSnapshot};

/// The shared autotuning knob surface: one set of defaults used by the
/// engine config, the run-spec JSON dialect, the CLI, and the bench
/// sweeps, so every entry point probes with the same machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningConfig {
    /// Run the resident [`OnlineTuner`] controller.
    pub enabled: bool,
    /// Completed tasks per decision epoch.
    pub epoch_tasks: u64,
    /// Consecutive non-improving probes of one candidate before the
    /// controller abandons a direction (the one-shot
    /// [`AutoTuner::with_patience`] budget, shared).
    pub patience: u32,
    /// Probe step for cost-unit-valued knobs (pack threshold).
    pub step: u64,
}

impl Default for TuningConfig {
    fn default() -> TuningConfig {
        TuningConfig {
            enabled: false,
            epoch_tasks: 64,
            patience: 2,
            step: 8,
        }
    }
}

impl TuningConfig {
    /// Default knob surface with the controller switched on.
    #[must_use]
    pub fn enabled() -> TuningConfig {
        TuningConfig {
            enabled: true,
            ..TuningConfig::default()
        }
    }
}

use mpi_sim::SharedRegion;

/// Identifier of a GPU device managed by a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

/// A granted queue slot. Dropping it without
/// [`Scheduler::free`] would leak queue capacity, so it is
/// `#[must_use]`; the runtime calls `free` when the GPU reports task
/// completion (paper `SCHE-FREE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a granted slot must be freed via Scheduler::free"]
pub struct Grant {
    /// The device the task was queued on.
    pub device: DeviceId,
    /// The estimated work units this grant reserved — what `free`
    /// subtracts from the device's weighted load.
    pub cost: u64,
}

/// A coherent-enough read of the scheduler's shared arrays: per-device
/// loads, history counts, weighted (cost-unit) backlogs, and steal
/// counters (each word individually atomic; the vector is not a
/// consistent cut, same as the paper's scheduler scanning `l_i`/`h_i`
/// without a global lock).
///
/// This is the read surface the service metrics layer and the
/// `repro-service`/`repro-sched` regenerators use to report placement
/// quality without poking `SharedRegion` internals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerSnapshot {
    /// Current queue occupancy per device (task count).
    pub loads: Vec<u64>,
    /// Completed-plus-granted task count per device since startup.
    pub histories: Vec<u64>,
    /// Current weighted (cost-unit) backlog per device.
    pub weighted_loads: Vec<u64>,
    /// Completed-plus-granted cost units per device since startup.
    pub weighted_histories: Vec<u64>,
    /// Tasks stolen *by* each device from another device's staging
    /// queue ([`Scheduler::reassign`]).
    pub steals: Vec<u64>,
    /// Staged device tasks pulled back to the CPU-fallback path
    /// ([`Scheduler::release_to_cpu`]).
    pub cpu_steals: u64,
    /// Current health ladder state per device.
    pub health: Vec<HealthState>,
    /// Total `→ Quarantined` transitions across devices.
    pub quarantines: u64,
    /// Total `Quarantined → Probation` re-admissions.
    pub probations: u64,
    /// Total `Probation → Healthy` recoveries (full ladder cycles).
    pub recoveries: u64,
    /// Measured-vs-static cost residual EWMA in milli-units (1000 =
    /// the static model mispredicts by 100%); `0` until the engine's
    /// [`CostModel`] has observations. Filled by the engine layer — a
    /// bare [`Scheduler::snapshot`] reports `0`.
    pub cost_residual_milli: u64,
    /// Measured-cost observations folded into the blend so far (filled
    /// by the engine layer).
    pub cost_observations: u64,
    /// Live [`OnlineTuner`] state, when a resident controller is
    /// attached (filled by the engine layer).
    pub tuner: Option<TunerSnapshot>,
}

impl SchedulerSnapshot {
    /// Total grants currently outstanding across all devices.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.loads.iter().sum()
    }

    /// Total grants ever issued across all devices.
    #[must_use]
    pub fn total_history(&self) -> u64 {
        self.histories.iter().sum()
    }

    /// Total steals across devices and the CPU-fallback path.
    #[must_use]
    pub fn total_steals(&self) -> u64 {
        self.steals.iter().sum::<u64>() + self.cpu_steals
    }

    /// `(load, history)` of one device.
    ///
    /// # Panics
    /// Panics if `device` is out of range.
    #[must_use]
    pub fn device(&self, device: DeviceId) -> (u64, u64) {
        (self.loads[device.0], self.histories[device.0])
    }
}

/// EWMA smoothing factor for the per-device service-time-per-unit
/// estimate: new observations get a quarter of the weight, so one
/// outlier task cannot swing placement while genuine rate shifts show
/// within a few completions.
const EWMA_ALPHA: f64 = 0.25;

/// Fixed-point scale applied to `weighted_load × ewma_rate` before the
/// integer policy comparison, preserving sub-unit rate differences.
const RATE_SCALE: f64 = 1024.0;

/// The concurrent scheduler state over shared memory.
///
/// Word layout in the region (d = device count): `[0, d)` = per-device
/// load, `[d, 2d)` = history count, `[2d, 3d)` = weighted load,
/// `[3d, 4d)` = weighted history, `[4d, 5d)` = steal count,
/// `[5d, 6d)` = service-time-per-unit EWMA (`f64` bits; `0` =
/// unobserved), `[6d]` = CPU-steal count. Cloning shares state, like
/// multiple ranks attaching the same shm segment.
///
/// In a resident process a leaked [`Grant`] silently removes one queue
/// slot *forever*, so the last handle's drop debug-asserts that every
/// granted slot was freed; [`Scheduler::in_flight`] exposes the same
/// counter for release-mode shutdown checks.
///
/// ```
/// use hybrid_sched::Scheduler;
///
/// // 2 GPUs, maximum queue length 1 (paper Algorithm 1).
/// let scheduler = Scheduler::new(2, 1);
/// let a = scheduler.alloc().expect("device 0 free");
/// let b = scheduler.alloc().expect("device 1 free");
/// assert!(scheduler.alloc().is_none()); // all full -> CPU fallback
/// scheduler.free(a);
/// scheduler.free(b);
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    region: SharedRegion,
    devices: usize,
    max_queue_len: u64,
    policy: SchedPolicy,
    health: HealthTracker,
}

impl Scheduler {
    /// Create a cost-aware scheduler for `devices` GPUs with the given
    /// maximum queue length (`>= 1`). With unit costs this behaves
    /// exactly like the paper's count policy (see the `policy` module's
    /// degeneracy property test), so it is the default.
    #[must_use]
    pub fn new(devices: usize, max_queue_len: u64) -> Scheduler {
        Scheduler::with_policy(devices, max_queue_len, SchedPolicy::CostAware)
    }

    /// Create a scheduler running an explicit placement policy
    /// ([`SchedPolicy::PaperCount`] is the paper-ablation baseline).
    #[must_use]
    pub fn with_policy(devices: usize, max_queue_len: u64, policy: SchedPolicy) -> Scheduler {
        Scheduler::with_health(devices, max_queue_len, policy, HealthConfig::default())
    }

    /// [`Scheduler::with_policy`] with explicit health-ladder
    /// thresholds (tests and chaos runs shrink the cooldowns).
    #[must_use]
    pub fn with_health(
        devices: usize,
        max_queue_len: u64,
        policy: SchedPolicy,
        health: HealthConfig,
    ) -> Scheduler {
        Scheduler {
            region: SharedRegion::new(6 * devices + 1),
            devices,
            max_queue_len: max_queue_len.max(1),
            policy,
            health: HealthTracker::new(devices, health),
        }
    }

    /// The per-device health state machine. The runtime records task
    /// successes/failures here; placement consults it automatically.
    #[must_use]
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// Whether `device` may receive new work right now (healthy or
    /// degraded; on probation only while idle; never while
    /// quarantined). Consumers check this before stealing for
    /// themselves.
    #[must_use]
    pub fn device_eligible(&self, device: DeviceId) -> bool {
        device.0 < self.devices
            && self
                .health
                .placement_eligible(device.0, self.region.load(device.0))
    }

    /// Number of managed devices.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// The configured maximum queue length.
    #[must_use]
    pub fn max_queue_len(&self) -> u64 {
        self.max_queue_len
    }

    /// The placement policy this scheduler runs.
    #[must_use]
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Paper `SCHE-ALLOC` with unit cost: pick a device per the
    /// configured policy and reserve one queue slot on it. Returns
    /// `None` when all devices are at the maximum queue length — the
    /// caller must then run the task on its own CPU.
    pub fn alloc(&self) -> Option<Grant> {
        self.alloc_cost(1)
    }

    /// Cost-aware `SCHE-ALLOC`: reserve one queue slot for a task of
    /// `cost` estimated work units. Under [`SchedPolicy::CostAware`]
    /// the device minimizing `weighted_load × ewma_secs_per_unit` wins
    /// (ties: history, then index); under [`SchedPolicy::PaperCount`]
    /// costs only affect the accounting, not the choice. Returns `None`
    /// when every device is at the maximum queue length.
    ///
    /// The reservation is a CAS on the load word so that two racing
    /// ranks cannot push a queue past the bound.
    pub fn alloc_cost(&self, cost: u64) -> Option<Grant> {
        if self.devices == 0 {
            return None;
        }
        let cost = cost.max(1);
        loop {
            let loads: Vec<u64> = (0..self.devices).map(|i| self.region.load(i)).collect();
            let histories: Vec<u64> = (0..self.devices)
                .map(|i| self.region.load(self.devices + i))
                .collect();
            let backlogs: Vec<u64> = (0..self.devices)
                .map(|i| {
                    let weighted = self.region.load(2 * self.devices + i) as f64;
                    (weighted * self.rate(i) * RATE_SCALE) as u64
                })
                .collect();
            // Health mask: sick devices are presented to the (pure,
            // health-unaware) policy as full, so quarantined cards drop
            // out of placement and probation cards admit one probe. The
            // CAS below still uses the *real* load — an eligible
            // device's masked and real loads agree.
            let masked: Vec<u64> = loads
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    if self.health.placement_eligible(i, l) {
                        l
                    } else {
                        self.max_queue_len
                    }
                })
                .collect();
            match policy::select_device_for(
                self.policy,
                &masked,
                &backlogs,
                &histories,
                self.max_queue_len,
            ) {
                Selection::Device(d) => {
                    // Publish the weighted backlog BEFORE reserving the
                    // queue slot: the cost-aware policy selects on this
                    // word, and a thread preempted between reservation
                    // and publication would otherwise leave the device
                    // looking falsely idle — attracting every
                    // concurrent allocator for a whole timeslice. An
                    // optimistic add only ever *overestimates*, which
                    // repels peers and self-corrects on rollback.
                    self.region.fetch_add(2 * self.devices + d, cost);
                    // Reserve: load[d] observed -> observed + 1.
                    if self
                        .region
                        .compare_exchange(d, loads[d], loads[d] + 1)
                        .is_ok()
                    {
                        self.region.fetch_add(self.devices + d, 1);
                        self.region.fetch_add(3 * self.devices + d, cost);
                        return Some(Grant {
                            device: DeviceId(d),
                            cost,
                        });
                    }
                    // Lost a race; roll the optimistic add back,
                    // re-read, retry.
                    self.region
                        .fetch_sub_saturating_by(2 * self.devices + d, cost);
                }
                Selection::AllBusy => return None,
            }
        }
    }

    /// Paper `SCHE-FREE`: release the queue slot of a completed task
    /// (count and weighted load both drop; history stays).
    pub fn free(&self, grant: Grant) {
        self.region.fetch_sub_saturating(grant.device.0);
        self.region
            .fetch_sub_saturating_by(2 * self.devices + grant.device.0, grant.cost);
    }

    /// [`Scheduler::free`] plus online calibration: fold the observed
    /// `service_s` seconds into the device's service-time-per-unit
    /// EWMA, so future cost-aware placement compares backlogs in
    /// estimated *time* rather than raw units (heterogeneous devices
    /// self-calibrate; identical devices converge to identical rates).
    pub fn free_observed(&self, grant: Grant, service_s: f64) {
        if service_s.is_finite() && service_s >= 0.0 {
            let observed = service_s / grant.cost.max(1) as f64;
            self.region
                .fetch_update(5 * self.devices + grant.device.0, |bits| {
                    if bits == 0 {
                        observed.to_bits()
                    } else {
                        let prev = f64::from_bits(bits);
                        (EWMA_ALPHA * observed + (1.0 - EWMA_ALPHA) * prev).to_bits()
                    }
                });
        }
        self.free(grant);
    }

    /// Move a staged grant from its device to `thief` — the work-steal
    /// bookkeeping half (the task payload itself moves through
    /// [`StealQueues`]). Reserves a slot on the thief first (CAS, same
    /// bound as `alloc_cost`), then releases the victim's slot, moves
    /// the history and weighted sums, and charges the thief's steal
    /// counter. Total in-flight grants are conserved at every
    /// interleaving point except the instant both slots are held, so
    /// accounting can never leak.
    ///
    /// # Errors
    /// Hands the grant back unchanged when the thief is at the maximum
    /// queue length (the caller keeps or re-stages the task).
    pub fn reassign(&self, grant: Grant, thief: DeviceId) -> Result<Grant, Grant> {
        if thief == grant.device {
            return Ok(grant);
        }
        // Reserve the thief slot.
        loop {
            let load = self.region.load(thief.0);
            if load >= self.max_queue_len {
                return Err(grant);
            }
            if self
                .region
                .compare_exchange(thief.0, load, load + 1)
                .is_ok()
            {
                break;
            }
        }
        let victim = grant.device.0;
        // Release the victim slot and move the sums.
        self.region.fetch_sub_saturating(victim);
        self.region
            .fetch_sub_saturating_by(2 * self.devices + victim, grant.cost);
        self.region.fetch_sub_saturating(self.devices + victim);
        self.region
            .fetch_sub_saturating_by(3 * self.devices + victim, grant.cost);
        self.region.fetch_add(self.devices + thief.0, 1);
        self.region
            .fetch_add(2 * self.devices + thief.0, grant.cost);
        self.region
            .fetch_add(3 * self.devices + thief.0, grant.cost);
        self.region.fetch_add(4 * self.devices + thief.0, 1);
        Ok(Grant {
            device: thief,
            cost: grant.cost,
        })
    }

    /// Release a staged grant back to the CPU-fallback path (the task
    /// will run on a host thread instead): the device's load, history
    /// and weighted sums all drop — as if the grant had never been
    /// issued — and the CPU-steal counter records the move.
    pub fn release_to_cpu(&self, grant: Grant) {
        let victim = grant.device.0;
        self.region.fetch_sub_saturating(victim);
        self.region
            .fetch_sub_saturating_by(2 * self.devices + victim, grant.cost);
        self.region.fetch_sub_saturating(self.devices + victim);
        self.region
            .fetch_sub_saturating_by(3 * self.devices + victim, grant.cost);
        self.region.fetch_add(6 * self.devices, 1);
    }

    /// Current load of `device`.
    #[must_use]
    pub fn load(&self, device: DeviceId) -> u64 {
        self.region.load(device.0)
    }

    /// History task count of `device`.
    #[must_use]
    pub fn history(&self, device: DeviceId) -> u64 {
        self.region.load(self.devices + device.0)
    }

    /// Current weighted (cost-unit) backlog of `device`.
    #[must_use]
    pub fn weighted_load(&self, device: DeviceId) -> u64 {
        self.region.load(2 * self.devices + device.0)
    }

    /// Observed service-time-per-unit EWMA of one device, seconds per
    /// cost unit.
    fn rate(&self, device: usize) -> f64 {
        let bits = self.region.load(5 * self.devices + device);
        if bits == 0 {
            1.0
        } else {
            f64::from_bits(bits)
        }
    }

    /// The per-device service-time-per-unit EWMA estimates, seconds per
    /// cost unit (`1.0` until a device's first observed completion).
    #[must_use]
    pub fn ewma_secs_per_unit(&self) -> Vec<f64> {
        (0..self.devices).map(|i| self.rate(i)).collect()
    }

    /// The fastest **observed** service rate across devices, seconds
    /// per cost unit — `None` until some device has settled a task.
    /// Placement can use the `1.0` prior of [`Self::ewma_secs_per_unit`]
    /// because only ratios matter there; absolute-time consumers (SLO
    /// admission pricing a deadline) must not mistake the prior for a
    /// measurement, so the unobserved state is explicit here.
    #[must_use]
    pub fn min_observed_secs_per_unit(&self) -> Option<f64> {
        (0..self.devices)
            .filter_map(|i| {
                let bits = self.region.load(5 * self.devices + i);
                (bits != 0).then(|| f64::from_bits(bits))
            })
            .reduce(f64::min)
    }

    /// Read the per-device load, history, weighted and steal arrays.
    #[must_use]
    pub fn snapshot(&self) -> SchedulerSnapshot {
        let snap = self.region.snapshot();
        let d = self.devices;
        let health = self.health.snapshot();
        SchedulerSnapshot {
            loads: snap[..d].to_vec(),
            histories: snap[d..2 * d].to_vec(),
            weighted_loads: snap[2 * d..3 * d].to_vec(),
            weighted_histories: snap[3 * d..4 * d].to_vec(),
            steals: snap[4 * d..5 * d].to_vec(),
            cpu_steals: snap[6 * d],
            health: health.states,
            quarantines: health.quarantines,
            probations: health.probations,
            recoveries: health.recoveries,
            cost_residual_milli: 0,
            cost_observations: 0,
            tuner: None,
        }
    }

    /// Grants currently outstanding (allocated, not yet freed) across
    /// all devices. Zero at a clean shutdown; anything else means queue
    /// capacity has leaked.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        (0..self.devices).map(|i| self.region.load(i)).sum()
    }
}

impl Drop for Scheduler {
    /// Leak detection for resident processes: when the *last* handle to
    /// the shared region is dropped with grants still outstanding,
    /// those queue slots can never be reclaimed — `#[must_use]` on
    /// [`Grant`] only warns, and a dropped grant today leaks silently.
    /// Debug builds fail fast; release builds stay silent (callers that
    /// care check [`Scheduler::in_flight`] before dropping).
    fn drop(&mut self) {
        if self.region.handle_count() == 1 && !std::thread::panicking() {
            let leaked = self.in_flight();
            debug_assert_eq!(
                leaked, 0,
                "scheduler dropped with {leaked} grant(s) never freed \
                 (leaked queue capacity)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_prefers_least_loaded() {
        let s = Scheduler::new(3, 4);
        // Occupy device 0 twice and device 1 once.
        let g0 = s.alloc().unwrap();
        let g1 = s.alloc().unwrap();
        let g2 = s.alloc().unwrap();
        // Round-robin by history when loads tie, so 0, 1, 2.
        assert_eq!(g0.device, DeviceId(0));
        assert_eq!(g1.device, DeviceId(1));
        assert_eq!(g2.device, DeviceId(2));
        s.free(g1); // device 1 now least loaded
        let g3 = s.alloc().unwrap();
        assert_eq!(g3.device, DeviceId(1));
        for g in [g0, g2, g3] {
            s.free(g);
        }
    }

    #[test]
    fn alloc_respects_max_queue_length() {
        let s = Scheduler::new(2, 2);
        let grants: Vec<_> = (0..4).map(|_| s.alloc().unwrap()).collect();
        assert!(s.alloc().is_none(), "all queues full");
        assert_eq!(s.load(DeviceId(0)), 2);
        assert_eq!(s.load(DeviceId(1)), 2);
        for g in grants {
            s.free(g);
        }
        let g = s.alloc().expect("drained queues accept again");
        s.free(g);
    }

    #[test]
    fn history_counts_accumulate() {
        let s = Scheduler::new(2, 8);
        for _ in 0..6 {
            let g = s.alloc().unwrap();
            s.free(g);
        }
        let total = s.history(DeviceId(0)) + s.history(DeviceId(1));
        assert_eq!(total, 6);
        // Tie-breaking by history keeps the split even.
        assert_eq!(s.history(DeviceId(0)), 3);
        assert_eq!(s.history(DeviceId(1)), 3);
    }

    #[test]
    fn zero_devices_always_falls_back() {
        let s = Scheduler::new(0, 4);
        assert!(s.alloc().is_none());
    }

    #[test]
    fn cost_aware_alloc_balances_weighted_backlog() {
        let s = Scheduler::new(2, 8);
        // One heavy grant on device 0.
        let heavy = s.alloc_cost(1000).unwrap();
        assert_eq!(heavy.device, DeviceId(0));
        assert_eq!(s.weighted_load(DeviceId(0)), 1000);
        // Light tasks all avoid the heavy device until device 1's
        // weighted backlog catches up.
        let mut lights = Vec::new();
        for _ in 0..4 {
            let g = s.alloc_cost(10).unwrap();
            assert_eq!(g.device, DeviceId(1), "light tasks avoid the heavy queue");
            lights.push(g);
        }
        assert_eq!(s.weighted_load(DeviceId(1)), 40);
        // The paper's count policy would have alternated instead.
        let paper = Scheduler::with_policy(2, 8, SchedPolicy::PaperCount);
        let h = paper.alloc_cost(1000).unwrap();
        let l = paper.alloc_cost(10).unwrap();
        assert_eq!(h.device, DeviceId(0));
        assert_eq!(l.device, DeviceId(1));
        let l2 = paper.alloc_cost(10).unwrap();
        assert_eq!(l2.device, DeviceId(0), "count policy ignores cost");
        for g in [h, l, l2] {
            paper.free(g);
        }
        s.free(heavy);
        for g in lights {
            s.free(g);
        }
        assert_eq!(s.weighted_load(DeviceId(0)), 0);
        assert_eq!(s.weighted_load(DeviceId(1)), 0);
    }

    #[test]
    fn ewma_calibration_steers_placement() {
        let s = Scheduler::new(2, 8);
        // Device 1 is observed to be 10x slower per unit.
        for _ in 0..8 {
            let g0 = s.alloc_cost(100).unwrap();
            let g1 = s.alloc_cost(100).unwrap();
            assert_ne!(g0.device, g1.device);
            let (fast, slow) = if g0.device == DeviceId(0) {
                (g0, g1)
            } else {
                (g1, g0)
            };
            s.free_observed(fast, 0.001);
            s.free_observed(slow, 0.010);
        }
        let rates = s.ewma_secs_per_unit();
        assert!(
            rates[1] > 5.0 * rates[0],
            "device 1 must calibrate slower: {rates:?}"
        );
        // Time-scaled placement: 100 units queued on the fast device
        // (~1 ms estimated) still beat 20 units on the slow one
        // (~2 ms estimated), where raw-unit comparison would say the
        // opposite.
        let pin_fast = s.alloc_cost(100).unwrap();
        assert_eq!(pin_fast.device, DeviceId(0), "empty queues: fast wins ties");
        let pin_slow = s.alloc_cost(20).unwrap();
        assert_eq!(pin_slow.device, DeviceId(1), "slow queue was empty");
        let next = s.alloc_cost(100).unwrap();
        assert_eq!(
            next.device,
            DeviceId(0),
            "backlog is compared in estimated seconds, not units: {rates:?}"
        );
        s.free(pin_fast);
        s.free(pin_slow);
        s.free(next);
    }

    #[test]
    fn reassign_moves_accounting_exactly() {
        let s = Scheduler::new(2, 4);
        let g = s.alloc_cost(500).unwrap();
        assert_eq!(g.device, DeviceId(0));
        let stolen = s.reassign(g, DeviceId(1)).expect("thief has room");
        assert_eq!(stolen.device, DeviceId(1));
        assert_eq!(stolen.cost, 500);
        let snap = s.snapshot();
        assert_eq!(snap.loads, vec![0, 1]);
        assert_eq!(snap.weighted_loads, vec![0, 500]);
        assert_eq!(snap.histories, vec![0, 1], "history moved with the task");
        assert_eq!(snap.weighted_histories, vec![0, 500]);
        assert_eq!(snap.steals, vec![0, 1]);
        assert_eq!(snap.cpu_steals, 0);
        assert_eq!(snap.in_flight(), 1, "no grant leaked by the move");
        s.free(stolen);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn reassign_to_full_thief_hands_the_grant_back() {
        let s = Scheduler::new(2, 1);
        let a = s.alloc_cost(10).unwrap();
        let b = s.alloc_cost(10).unwrap();
        assert_ne!(a.device, b.device);
        let a = s.reassign(a, b.device).expect_err("thief at bound");
        assert_eq!(s.in_flight(), 2, "failed steal changes nothing");
        s.free(a);
        s.free(b);
    }

    #[test]
    fn reassign_to_same_device_is_identity() {
        let s = Scheduler::new(1, 2);
        let g = s.alloc_cost(7).unwrap();
        let same = s.reassign(g, g.device).unwrap();
        assert_eq!(same, g);
        assert_eq!(s.snapshot().steals, vec![0]);
        s.free(same);
    }

    #[test]
    fn release_to_cpu_retires_the_grant() {
        let s = Scheduler::new(2, 4);
        let g = s.alloc_cost(900).unwrap();
        s.release_to_cpu(g);
        let snap = s.snapshot();
        assert_eq!(snap.in_flight(), 0);
        assert_eq!(snap.weighted_loads, vec![0, 0]);
        assert_eq!(snap.histories, vec![0, 0], "CPU steal uncounts history");
        assert_eq!(snap.cpu_steals, 1);
        assert_eq!(snap.total_steals(), 1);
    }

    #[test]
    fn concurrent_alloc_free_preserves_invariants() {
        let s = Scheduler::new(3, 5);
        let total_granted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let s = s.clone();
                let total = &total_granted;
                scope.spawn(move || {
                    for i in 0..500 {
                        if let Some(g) = s.alloc_cost(1 + (t * 31 + i) % 97) {
                            // Queue bound must hold at all times.
                            assert!(s.load(g.device) <= 5);
                            total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            s.free(g);
                        }
                    }
                });
            }
        });
        let snap = s.snapshot();
        assert!(
            snap.loads.iter().all(|&l| l == 0),
            "all slots freed: {:?}",
            snap.loads
        );
        assert!(
            snap.weighted_loads.iter().all(|&w| w == 0),
            "all weighted load drained: {:?}",
            snap.weighted_loads
        );
        assert_eq!(
            snap.total_history(),
            total_granted.load(std::sync::atomic::Ordering::Relaxed)
        );
        assert_eq!(snap.in_flight(), 0);
    }

    #[test]
    fn concurrent_steals_never_leak_grants() {
        let s = Scheduler::new(4, 3);
        std::thread::scope(|scope| {
            // Half the threads alloc+free, half alloc+reassign+free.
            for t in 0..8usize {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..400usize {
                        let Some(g) = s.alloc_cost(1 + (i % 50) as u64) else {
                            continue;
                        };
                        if t % 2 == 0 {
                            let thief = DeviceId((g.device.0 + 1 + i % 3) % 4);
                            match s.reassign(g, thief) {
                                Ok(moved) => s.free_observed(moved, 1e-6),
                                Err(kept) => s.free(kept),
                            }
                        } else if i % 7 == 0 {
                            s.release_to_cpu(g);
                        } else {
                            s.free(g);
                        }
                    }
                });
            }
        });
        let snap = s.snapshot();
        assert_eq!(snap.in_flight(), 0, "loads drained: {:?}", snap.loads);
        assert!(
            snap.weighted_loads.iter().all(|&w| w == 0),
            "weighted drained: {:?}",
            snap.weighted_loads
        );
        assert!(snap.total_steals() > 0, "contended run must have stolen");
    }

    #[test]
    fn quarantined_devices_drop_out_of_placement() {
        let cfg = HealthConfig {
            probation_cooldown: std::time::Duration::from_secs(3600),
            ..HealthConfig::default()
        };
        let s = Scheduler::with_health(2, 4, SchedPolicy::CostAware, cfg);
        s.health().mark_lost(0);
        for _ in 0..4 {
            let g = s.alloc().expect("healthy peer has room");
            assert_eq!(g.device, DeviceId(1), "lost device must not place");
            s.free(g);
        }
        assert!(!s.device_eligible(DeviceId(0)));
        assert!(s.device_eligible(DeviceId(1)));
        s.health().mark_lost(1);
        assert!(s.alloc().is_none(), "all devices sick -> CPU fallback");
        let snap = s.snapshot();
        assert_eq!(
            snap.health,
            vec![HealthState::Quarantined, HealthState::Quarantined]
        );
        assert_eq!(snap.quarantines, 2);
    }

    #[test]
    fn probation_admits_one_probe_at_a_time() {
        let cfg = HealthConfig {
            probation_cooldown: std::time::Duration::from_millis(1),
            ..HealthConfig::default()
        };
        let s = Scheduler::with_health(2, 4, SchedPolicy::CostAware, cfg);
        for _ in 0..5 {
            s.health().record_failure(0);
        }
        assert_eq!(s.health().state(0), HealthState::Quarantined);
        std::thread::sleep(std::time::Duration::from_millis(3));
        // Past the cooldown the device re-enters as probation: it may
        // take exactly one task until that probe completes.
        let mut grants = Vec::new();
        let mut on_zero = 0;
        for _ in 0..4 {
            let g = s.alloc().expect("room somewhere");
            if g.device == DeviceId(0) {
                on_zero += 1;
            }
            grants.push(g);
        }
        assert_eq!(on_zero, 1, "probation admits a single probe");
        assert_eq!(s.health().state(0), HealthState::Probation);
        for g in grants {
            s.free(g);
        }
    }

    #[test]
    fn clones_share_state() {
        let a = Scheduler::new(1, 1);
        let b = a.clone();
        let g = a.alloc().unwrap();
        assert!(b.alloc().is_none());
        b.free(g);
        let g = b.alloc().expect("slot visible through either handle");
        a.free(g);
    }

    #[test]
    fn snapshot_tracks_alloc_free_sequences() {
        let s = Scheduler::new(2, 3);
        assert_eq!(s.snapshot().loads, vec![0, 0]);
        assert_eq!(s.snapshot().histories, vec![0, 0]);

        // Three grants: round-robin 0, 1, 0 (load then history
        // tie-break).
        let g0 = s.alloc().unwrap();
        let g1 = s.alloc().unwrap();
        let g2 = s.alloc().unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.loads, vec![2, 1]);
        assert_eq!(snap.histories, vec![2, 1]);
        assert_eq!(snap.weighted_loads, vec![2, 1], "unit costs mirror counts");
        assert_eq!(snap.in_flight(), 3);
        assert_eq!(snap.total_history(), 3);
        assert_eq!(snap.device(DeviceId(0)), (2, 2));
        assert_eq!(s.in_flight(), 3);

        // Frees drain loads but never histories.
        s.free(g0);
        s.free(g2);
        let snap = s.snapshot();
        assert_eq!(snap.loads, vec![0, 1]);
        assert_eq!(snap.histories, vec![2, 1]);
        s.free(g1);
        let snap = s.snapshot();
        assert_eq!(snap.in_flight(), 0);
        assert_eq!(snap.total_history(), 3);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn in_flight_counts_outstanding_grants() {
        let s = Scheduler::new(3, 2);
        let grants: Vec<Grant> = (0..5).map(|_| s.alloc().unwrap()).collect();
        assert_eq!(s.in_flight(), 5);
        for (i, g) in grants.into_iter().enumerate() {
            s.free(g);
            assert_eq!(s.in_flight(), 4 - i as u64);
        }
    }

    /// A `Grant` that is dropped (it is `Copy`, so nothing runs) instead
    /// of freed leaks a queue slot; the last scheduler handle's drop
    /// must flag it in debug builds.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "never freed")]
    fn dropping_last_handle_with_leaked_grant_panics_in_debug() {
        let s = Scheduler::new(1, 2);
        let _leaked = s.alloc().unwrap();
        drop(s);
    }

    #[test]
    fn clone_drops_do_not_trigger_leak_check() {
        let s = Scheduler::new(1, 2);
        let g = s.alloc().unwrap();
        // A non-final handle dropping while a grant is outstanding is
        // fine — only the last handle audits.
        drop(s.clone());
        s.free(g);
    }
}
