//! The paper's shared-memory dynamic load balancer.
//!
//! Paper Algorithm 1: each MPI process asks the local scheduler for a
//! GPU before every task. The scheduler keeps, in shared memory, two
//! arrays indexed by device — the current *load* (active + waiting
//! tasks) and the *history task count* — and picks the device with the
//! minimum load, breaking ties by minimum history count. If every
//! device is at the *maximum queue length*, the process computes the
//! task itself on its CPU (QAGS).
//!
//! Split into:
//!
//! * [`policy`] — the pure selection function, shared verbatim by the
//!   real-thread runtime and the discrete-event performance replica, so
//!   the two cannot drift;
//! * [`Scheduler`] — the concurrent implementation over a
//!   [`mpi_sim::SharedRegion`] (atomic reservation via CAS so the queue
//!   bound holds under races);
//! * [`autotune`] — the paper's "automatic test" that raises the maximum
//!   queue length until the performance inflexion point.

pub mod autotune;
pub mod policy;

pub use autotune::AutoTuner;
pub use policy::{
    select_device, select_device_with, select_device_work_aware, Selection, TieBreak,
};

use mpi_sim::SharedRegion;

/// Identifier of a GPU device managed by a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

/// A granted queue slot. Dropping it without
/// [`Scheduler::free`] would leak queue capacity, so it is
/// `#[must_use]`; the runtime calls `free` when the GPU reports task
/// completion (paper `SCHE-FREE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a granted slot must be freed via Scheduler::free"]
pub struct Grant {
    /// The device the task was queued on.
    pub device: DeviceId,
}

/// A coherent-enough read of the scheduler's shared arrays: per-device
/// loads and history counts (each word individually atomic; the vector
/// is not a consistent cut, same as the paper's scheduler scanning
/// `l_i`/`h_i` without a global lock).
///
/// This is the read surface the service metrics layer and the
/// `repro-service` regenerator use to report device utilization
/// without poking `SharedRegion` internals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerSnapshot {
    /// Current queue occupancy per device.
    pub loads: Vec<u64>,
    /// Completed-plus-granted task count per device since startup.
    pub histories: Vec<u64>,
}

impl SchedulerSnapshot {
    /// Total grants currently outstanding across all devices.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.loads.iter().sum()
    }

    /// Total grants ever issued across all devices.
    #[must_use]
    pub fn total_history(&self) -> u64 {
        self.histories.iter().sum()
    }

    /// `(load, history)` of one device.
    ///
    /// # Panics
    /// Panics if `device` is out of range.
    #[must_use]
    pub fn device(&self, device: DeviceId) -> (u64, u64) {
        (self.loads[device.0], self.histories[device.0])
    }
}

/// The concurrent scheduler state over shared memory.
///
/// Word layout in the region: `[0, d)` = per-device load,
/// `[d, 2d)` = per-device history count. Cloning shares state, like
/// multiple ranks attaching the same shm segment.
///
/// In a resident process a leaked [`Grant`] silently removes one queue
/// slot *forever*, so the last handle's drop debug-asserts that every
/// granted slot was freed; [`Scheduler::in_flight`] exposes the same
/// counter for release-mode shutdown checks.
///
/// ```
/// use hybrid_sched::Scheduler;
///
/// // 2 GPUs, maximum queue length 1 (paper Algorithm 1).
/// let scheduler = Scheduler::new(2, 1);
/// let a = scheduler.alloc().expect("device 0 free");
/// let b = scheduler.alloc().expect("device 1 free");
/// assert!(scheduler.alloc().is_none()); // all full -> CPU fallback
/// scheduler.free(a);
/// scheduler.free(b);
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    region: SharedRegion,
    devices: usize,
    max_queue_len: u64,
}

impl Scheduler {
    /// Create a scheduler for `devices` GPUs with the given maximum
    /// queue length (`>= 1`).
    #[must_use]
    pub fn new(devices: usize, max_queue_len: u64) -> Scheduler {
        Scheduler {
            region: SharedRegion::new(2 * devices),
            devices,
            max_queue_len: max_queue_len.max(1),
        }
    }

    /// Number of managed devices.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// The configured maximum queue length.
    #[must_use]
    pub fn max_queue_len(&self) -> u64 {
        self.max_queue_len
    }

    /// Paper `SCHE-ALLOC`: pick the least-loaded device (ties: least
    /// history) and reserve one queue slot on it. Returns `None` when
    /// all devices are at the maximum queue length — the caller must
    /// then run the task on its own CPU.
    ///
    /// The reservation is a CAS on the load word so that two racing
    /// ranks cannot push a queue past the bound.
    pub fn alloc(&self) -> Option<Grant> {
        if self.devices == 0 {
            return None;
        }
        loop {
            let loads: Vec<u64> = (0..self.devices).map(|i| self.region.load(i)).collect();
            let histories: Vec<u64> = (0..self.devices)
                .map(|i| self.region.load(self.devices + i))
                .collect();
            match policy::select_device(&loads, &histories, self.max_queue_len) {
                Selection::Device(d) => {
                    // Reserve: load[d] observed -> observed + 1.
                    if self
                        .region
                        .compare_exchange(d, loads[d], loads[d] + 1)
                        .is_ok()
                    {
                        self.region.fetch_add(self.devices + d, 1);
                        return Some(Grant {
                            device: DeviceId(d),
                        });
                    }
                    // Lost a race; re-read and retry.
                }
                Selection::AllBusy => return None,
            }
        }
    }

    /// Paper `SCHE-FREE`: release the queue slot of a completed task.
    pub fn free(&self, grant: Grant) {
        self.region.fetch_sub_saturating(grant.device.0);
    }

    /// Current load of `device`.
    #[must_use]
    pub fn load(&self, device: DeviceId) -> u64 {
        self.region.load(device.0)
    }

    /// History task count of `device`.
    #[must_use]
    pub fn history(&self, device: DeviceId) -> u64 {
        self.region.load(self.devices + device.0)
    }

    /// Read the per-device load and history arrays.
    #[must_use]
    pub fn snapshot(&self) -> SchedulerSnapshot {
        let snap = self.region.snapshot();
        SchedulerSnapshot {
            loads: snap[..self.devices].to_vec(),
            histories: snap[self.devices..].to_vec(),
        }
    }

    /// Grants currently outstanding (allocated, not yet freed) across
    /// all devices. Zero at a clean shutdown; anything else means queue
    /// capacity has leaked.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        (0..self.devices).map(|i| self.region.load(i)).sum()
    }
}

impl Drop for Scheduler {
    /// Leak detection for resident processes: when the *last* handle to
    /// the shared region is dropped with grants still outstanding,
    /// those queue slots can never be reclaimed — `#[must_use]` on
    /// [`Grant`] only warns, and a dropped grant today leaks silently.
    /// Debug builds fail fast; release builds stay silent (callers that
    /// care check [`Scheduler::in_flight`] before dropping).
    fn drop(&mut self) {
        if self.region.handle_count() == 1 && !std::thread::panicking() {
            let leaked = self.in_flight();
            debug_assert_eq!(
                leaked, 0,
                "scheduler dropped with {leaked} grant(s) never freed \
                 (leaked queue capacity)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_prefers_least_loaded() {
        let s = Scheduler::new(3, 4);
        // Occupy device 0 twice and device 1 once.
        let g0 = s.alloc().unwrap();
        let g1 = s.alloc().unwrap();
        let g2 = s.alloc().unwrap();
        // Round-robin by history when loads tie, so 0, 1, 2.
        assert_eq!(g0.device, DeviceId(0));
        assert_eq!(g1.device, DeviceId(1));
        assert_eq!(g2.device, DeviceId(2));
        s.free(g1); // device 1 now least loaded
        let g3 = s.alloc().unwrap();
        assert_eq!(g3.device, DeviceId(1));
        for g in [g0, g2, g3] {
            s.free(g);
        }
    }

    #[test]
    fn alloc_respects_max_queue_length() {
        let s = Scheduler::new(2, 2);
        let grants: Vec<_> = (0..4).map(|_| s.alloc().unwrap()).collect();
        assert!(s.alloc().is_none(), "all queues full");
        assert_eq!(s.load(DeviceId(0)), 2);
        assert_eq!(s.load(DeviceId(1)), 2);
        for g in grants {
            s.free(g);
        }
        let g = s.alloc().expect("drained queues accept again");
        s.free(g);
    }

    #[test]
    fn history_counts_accumulate() {
        let s = Scheduler::new(2, 8);
        for _ in 0..6 {
            let g = s.alloc().unwrap();
            s.free(g);
        }
        let total = s.history(DeviceId(0)) + s.history(DeviceId(1));
        assert_eq!(total, 6);
        // Tie-breaking by history keeps the split even.
        assert_eq!(s.history(DeviceId(0)), 3);
        assert_eq!(s.history(DeviceId(1)), 3);
    }

    #[test]
    fn zero_devices_always_falls_back() {
        let s = Scheduler::new(0, 4);
        assert!(s.alloc().is_none());
    }

    #[test]
    fn concurrent_alloc_free_preserves_invariants() {
        let s = Scheduler::new(3, 5);
        let total_granted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = s.clone();
                let total = &total_granted;
                scope.spawn(move || {
                    for _ in 0..500 {
                        if let Some(g) = s.alloc() {
                            // Queue bound must hold at all times.
                            assert!(s.load(g.device) <= 5);
                            total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            s.free(g);
                        }
                    }
                });
            }
        });
        let snap = s.snapshot();
        assert!(
            snap.loads.iter().all(|&l| l == 0),
            "all slots freed: {:?}",
            snap.loads
        );
        assert_eq!(
            snap.total_history(),
            total_granted.load(std::sync::atomic::Ordering::Relaxed)
        );
        assert_eq!(snap.in_flight(), 0);
    }

    #[test]
    fn clones_share_state() {
        let a = Scheduler::new(1, 1);
        let b = a.clone();
        let g = a.alloc().unwrap();
        assert!(b.alloc().is_none());
        b.free(g);
        let g = b.alloc().expect("slot visible through either handle");
        a.free(g);
    }

    #[test]
    fn snapshot_tracks_alloc_free_sequences() {
        let s = Scheduler::new(2, 3);
        assert_eq!(s.snapshot().loads, vec![0, 0]);
        assert_eq!(s.snapshot().histories, vec![0, 0]);

        // Three grants: round-robin 0, 1, 0 (load then history
        // tie-break).
        let g0 = s.alloc().unwrap();
        let g1 = s.alloc().unwrap();
        let g2 = s.alloc().unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.loads, vec![2, 1]);
        assert_eq!(snap.histories, vec![2, 1]);
        assert_eq!(snap.in_flight(), 3);
        assert_eq!(snap.total_history(), 3);
        assert_eq!(snap.device(DeviceId(0)), (2, 2));
        assert_eq!(s.in_flight(), 3);

        // Frees drain loads but never histories.
        s.free(g0);
        s.free(g2);
        let snap = s.snapshot();
        assert_eq!(snap.loads, vec![0, 1]);
        assert_eq!(snap.histories, vec![2, 1]);
        s.free(g1);
        let snap = s.snapshot();
        assert_eq!(snap.in_flight(), 0);
        assert_eq!(snap.total_history(), 3);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn in_flight_counts_outstanding_grants() {
        let s = Scheduler::new(3, 2);
        let grants: Vec<Grant> = (0..5).map(|_| s.alloc().unwrap()).collect();
        assert_eq!(s.in_flight(), 5);
        for (i, g) in grants.into_iter().enumerate() {
            s.free(g);
            assert_eq!(s.in_flight(), 4 - i as u64);
        }
    }

    /// A `Grant` that is dropped (it is `Copy`, so nothing runs) instead
    /// of freed leaks a queue slot; the last scheduler handle's drop
    /// must flag it in debug builds.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "never freed")]
    fn dropping_last_handle_with_leaked_grant_panics_in_debug() {
        let s = Scheduler::new(1, 2);
        let _leaked = s.alloc().unwrap();
        drop(s);
    }

    #[test]
    fn clone_drops_do_not_trigger_leak_check() {
        let s = Scheduler::new(1, 2);
        let g = s.alloc().unwrap();
        // A non-final handle dropping while a grant is outstanding is
        // fine — only the last handle audits.
        drop(s.clone());
        s.free(g);
    }
}
