//! Per-device staging queues with bounded, largest-cost work stealing.
//!
//! The [`crate::Scheduler`] decides *where* a task should run and
//! reserves the queue slot; this module holds the granted-but-not-yet-
//! launched task payloads so an idle device can take work from a
//! loaded one instead of draining its own empty queue. Stealing moves
//! the **largest-cost** staged task from the **most-backlogged** victim
//! — the move that best shortens the makespan tail — and the caller
//! then moves the grant accounting with [`crate::Scheduler::reassign`]
//! (or [`crate::Scheduler::release_to_cpu`] for the CPU-fallback
//! steal), so counters and payloads can never disagree for longer than
//! one in-flight handoff.
//!
//! One mutex guards all queues. That is deliberate: steals need a
//! consistent cross-queue view (argmax backlog), the critical sections
//! are a few pointer moves, and tasks here are *ion-sized* — thousands
//! per run, not millions — so a sharded design would buy nothing but
//! races.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// A staged task payload with its scheduling metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Staged<T> {
    /// Estimated work units (same scale as [`crate::Grant::cost`]).
    pub cost: u64,
    /// Global staging sequence number — ties on cost steal the oldest
    /// entry first, which keeps every selection deterministic.
    pub seq: u64,
    /// Absolute deadline in clock seconds ([`f64::INFINITY`] = none).
    /// Local dequeue is earliest-deadline-first with `seq` breaking
    /// ties, so all-equal deadlines degrade exactly to FIFO.
    pub deadline: f64,
    /// The task payload.
    pub item: T,
}

impl<T> Staged<T> {
    /// EDF ordering key: earliest deadline first, oldest entry on ties.
    fn edf_key(&self) -> (f64, u64) {
        (self.deadline, self.seq)
    }
}

/// `(deadline, seq)` comparison with a total order on the deadline
/// (`NaN` never occurs; infinities must compare).
fn edf_less(a: (f64, u64), b: (f64, u64)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

/// What [`StealQueues::next`] handed the consumer.
#[derive(Debug, PartialEq)]
pub enum Next<T> {
    /// A task from the consumer's own queue (FIFO order).
    Local(Staged<T>),
    /// A task stolen from `victim`'s queue (its largest-cost entry).
    /// The consumer must move the grant with
    /// [`crate::Scheduler::reassign`] before launching — and re-stage
    /// the task back to `victim` if that fails.
    Stolen {
        /// Device index the task was staged on.
        victim: usize,
        /// The stolen entry.
        task: Staged<T>,
    },
    /// The queues are closed and globally empty; the consumer should
    /// exit.
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    queues: Vec<VecDeque<Staged<T>>>,
    /// Sum of staged costs per queue, maintained incrementally so steal
    /// victim selection is O(devices), not O(tasks).
    backlog: Vec<u64>,
    closed: bool,
    next_seq: u64,
}

/// The staging structure: one FIFO queue per device plus a condvar for
/// blocking consumers. Cloning shares state (producers and per-device
/// pump threads each hold a handle).
#[derive(Debug)]
pub struct StealQueues<T> {
    inner: Arc<(Mutex<Inner<T>>, Condvar)>,
}

// Manual impl: a clone shares the queues, so `T: Clone` (which derive
// would demand) is not needed.
impl<T> Clone for StealQueues<T> {
    fn clone(&self) -> StealQueues<T> {
        StealQueues {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// How long a blocked consumer sleeps between re-examining the queues.
/// The timeout (rather than pure notification) makes the wait loop
/// trivially live: even a missed edge case in wakeup coverage costs at
/// most one interval, never a hang.
const WAIT_INTERVAL: Duration = Duration::from_micros(200);

impl<T> StealQueues<T> {
    /// Create queues for `devices` consumers.
    #[must_use]
    pub fn new(devices: usize) -> StealQueues<T> {
        StealQueues {
            inner: Arc::new((
                Mutex::new(Inner {
                    queues: (0..devices).map(|_| VecDeque::new()).collect(),
                    backlog: vec![0; devices],
                    closed: false,
                    next_seq: 0,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Stage a task of `cost` units on `device`'s queue and wake
    /// consumers (no deadline: dequeued after every deadlined task,
    /// FIFO among its peers).
    ///
    /// # Panics
    /// Panics if `device` is out of range.
    pub fn stage(&self, device: usize, cost: u64, item: T) {
        self.stage_deadline(device, cost, f64::INFINITY, item);
    }

    /// Stage a task carrying an absolute `deadline` (clock seconds) on
    /// `device`'s queue and wake consumers. Local dequeue is EDF over
    /// these deadlines; [`f64::INFINITY`] marks deadline-free work.
    ///
    /// # Panics
    /// Panics if `device` is out of range.
    pub fn stage_deadline(&self, device: usize, cost: u64, deadline: f64, item: T) {
        let (lock, cvar) = &*self.inner;
        let mut inner = lock.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.queues[device].push_back(Staged {
            cost,
            seq,
            deadline,
            item,
        });
        inner.backlog[device] += cost;
        drop(inner);
        cvar.notify_all();
    }

    /// Blocking fetch for `device`'s consumer: its own queue in EDF
    /// order first (earliest deadline, then staging order — plain FIFO
    /// when no deadlines are in play); when that is empty and
    /// `can_steal` holds (or the queues are closed — draining leftovers
    /// is always worth it), the largest-cost task from the
    /// most-backlogged other queue. Blocks until work arrives or
    /// [`StealQueues::close`] has been called and every queue is empty.
    ///
    /// # Panics
    /// Panics if `device` is out of range.
    pub fn next(&self, device: usize, can_steal: bool) -> Next<T> {
        let (lock, cvar) = &*self.inner;
        let mut inner = lock.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(task) = inner.pop_edf(device) {
                inner.backlog[device] -= task.cost;
                return Next::Local(task);
            }
            if can_steal || inner.closed {
                if let Some((victim, task)) = inner.steal_from_busiest(device) {
                    return Next::Stolen { victim, task };
                }
            }
            if inner.closed && inner.queues.iter().all(VecDeque::is_empty) {
                return Next::Closed;
            }
            let (guard, _timeout) = cvar
                .wait_timeout(inner, WAIT_INTERVAL)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Non-blocking fetch of `device`'s **own** next-up task (EDF
    /// order), but only if its cost is strictly under `max_cost` — the
    /// launch-aggregation probe: a pump that just dequeued a small task
    /// asks for more small local work to pack into the same launch,
    /// without ever blocking, stealing, or pulling a heavy task out of
    /// deadline turn.
    ///
    /// # Panics
    /// Panics if `device` is out of range.
    pub fn try_next_local_under(&self, device: usize, max_cost: u64) -> Option<Staged<T>> {
        let (lock, _) = &*self.inner;
        let mut inner = lock.lock().unwrap_or_else(PoisonError::into_inner);
        let pos = inner.edf_pos(device)?;
        if inner.queues[device][pos].cost >= max_cost {
            return None;
        }
        let task = inner.queues[device]
            .remove(pos)
            .expect("position just scanned");
        inner.backlog[device] -= task.cost;
        Some(task)
    }

    /// Non-blocking global steal for the CPU-fallback path: remove and
    /// return the single largest-cost staged task across *all* queues,
    /// provided its cost exceeds `cost_floor` — swapping a queued heavy
    /// task onto the CPU only pays off when it is heavier than the task
    /// the caller is about to run there anyway.
    pub fn try_steal_over(&self, cost_floor: u64) -> Option<(usize, Staged<T>)> {
        let (lock, _) = &*self.inner;
        let mut inner = lock.lock().unwrap_or_else(PoisonError::into_inner);
        let mut best: Option<(usize, usize)> = None; // (queue, position)
        for (q, queue) in inner.queues.iter().enumerate() {
            for (p, task) in queue.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some((bq, bp)) => {
                        let b = &inner.queues[bq][bp];
                        (task.cost, std::cmp::Reverse(task.seq))
                            > (b.cost, std::cmp::Reverse(b.seq))
                    }
                };
                if task.cost > cost_floor && better {
                    best = Some((q, p));
                }
            }
        }
        let (q, p) = best?;
        let task = inner.queues[q].remove(p).expect("position just scanned");
        inner.backlog[q] -= task.cost;
        Some((q, task))
    }

    /// Close the queues: staged tasks already present still drain, then
    /// every blocked consumer receives [`Next::Closed`].
    pub fn close(&self) {
        let (lock, cvar) = &*self.inner;
        lock.lock().unwrap_or_else(PoisonError::into_inner).closed = true;
        cvar.notify_all();
    }

    /// Total staged (not yet fetched) tasks across all queues.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        let (lock, _) = &*self.inner;
        lock.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queues
            .iter()
            .map(VecDeque::len)
            .sum()
    }
}

impl<T> Inner<T> {
    /// Position of `device`'s EDF-next entry (earliest deadline, then
    /// oldest), or `None` on an empty queue.
    fn edf_pos(&self, device: usize) -> Option<usize> {
        let queue = &self.queues[device];
        let mut best: Option<usize> = None;
        for (p, task) in queue.iter().enumerate() {
            if best.is_none_or(|b| edf_less(task.edf_key(), queue[b].edf_key())) {
                best = Some(p);
            }
        }
        best
    }

    /// Remove and return `device`'s EDF-next entry.
    fn pop_edf(&mut self, device: usize) -> Option<Staged<T>> {
        let pos = self.edf_pos(device)?;
        self.queues[device].remove(pos)
    }

    /// Take the largest-cost task (oldest wins ties) from the
    /// most-backlogged queue other than `thief`'s own.
    fn steal_from_busiest(&mut self, thief: usize) -> Option<(usize, Staged<T>)> {
        let victim = (0..self.queues.len())
            .filter(|&q| q != thief && !self.queues[q].is_empty())
            .max_by_key(|&q| (self.backlog[q], std::cmp::Reverse(q)))?;
        let pos = (0..self.queues[victim].len())
            .max_by_key(|&p| {
                let t = &self.queues[victim][p];
                (t.cost, std::cmp::Reverse(t.seq))
            })
            .expect("victim queue is non-empty");
        let task = self.queues[victim].remove(pos).expect("position in range");
        self.backlog[victim] -= task.cost;
        Some((victim, task))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_fetch_is_fifo() {
        let q: StealQueues<&str> = StealQueues::new(2);
        q.stage(0, 5, "a");
        q.stage(0, 50, "b");
        q.stage(0, 1, "c");
        for expected in ["a", "b", "c"] {
            match q.next(0, false) {
                Next::Local(t) => assert_eq!(t.item, expected),
                other => panic!("expected Local({expected}), got {other:?}"),
            }
        }
        assert_eq!(q.staged_len(), 0);
    }

    #[test]
    fn local_fetch_is_edf_when_deadlines_differ() {
        let q: StealQueues<&str> = StealQueues::new(1);
        q.stage_deadline(0, 1, 5.0, "later");
        q.stage(0, 1, "never"); // INFINITY: always last
        q.stage_deadline(0, 1, 2.0, "soon");
        q.stage_deadline(0, 1, 2.0, "soon-but-younger");
        for expected in ["soon", "soon-but-younger", "later", "never"] {
            match q.next(0, false) {
                Next::Local(t) => assert_eq!(t.item, expected),
                other => panic!("expected Local({expected}), got {other:?}"),
            }
        }
    }

    #[test]
    fn edf_degenerates_to_fifo_on_equal_deadlines() {
        // Property (seeded sweep): under any staging order, when every
        // deadline is the same value — finite or not — EDF dequeue is
        // indistinguishable from plain FIFO.
        let mut rng = desim::rng(11);
        for trial in 0..50 {
            let deadline = match trial % 3 {
                0 => f64::INFINITY,
                1 => 0.0,
                _ => rng.gen_range(0.1..100.0),
            };
            let n = 1 + (rng.next_u64() % 24) as usize;
            let q: StealQueues<usize> = StealQueues::new(2);
            for i in 0..n {
                let cost = 1 + rng.next_u64() % 97; // cost must not matter
                q.stage_deadline(0, cost, deadline, i);
            }
            for i in 0..n {
                match q.next(0, false) {
                    Next::Local(t) => {
                        assert_eq!(t.item, i, "trial {trial}: FIFO order broken at {i}");
                    }
                    other => panic!("{other:?}"),
                }
            }
        }
    }

    #[test]
    fn steal_takes_largest_cost_from_most_backlogged() {
        let q: StealQueues<u32> = StealQueues::new(3);
        // Queue 1 backlog 60, queue 2 backlog 100.
        q.stage(1, 10, 10);
        q.stage(1, 50, 11);
        q.stage(2, 30, 20);
        q.stage(2, 70, 21);
        match q.next(0, true) {
            Next::Stolen { victim, task } => {
                assert_eq!(victim, 2, "most backlogged queue loses");
                assert_eq!(task.cost, 70, "largest-cost entry, not FIFO head");
                assert_eq!(task.item, 21);
            }
            other => panic!("expected steal, got {other:?}"),
        }
        // Queue 1 (60) now out-backlogs queue 2 (30).
        match q.next(0, true) {
            Next::Stolen { victim, task } => {
                assert_eq!(victim, 1);
                assert_eq!(task.cost, 50);
            }
            other => panic!("expected steal, got {other:?}"),
        }
    }

    #[test]
    fn own_queue_wins_over_stealing() {
        let q: StealQueues<u32> = StealQueues::new(2);
        q.stage(1, 1000, 9);
        q.stage(0, 1, 1);
        match q.next(0, true) {
            Next::Local(t) => assert_eq!(t.item, 1),
            other => panic!("expected local task, got {other:?}"),
        }
    }

    #[test]
    fn equal_costs_steal_oldest_first() {
        let q: StealQueues<u32> = StealQueues::new(2);
        q.stage(1, 10, 100);
        q.stage(1, 10, 101);
        match q.next(0, true) {
            Next::Stolen { task, .. } => assert_eq!(task.item, 100),
            other => panic!("expected steal, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q: StealQueues<u32> = StealQueues::new(2);
        q.stage(0, 1, 7);
        q.stage(1, 1, 8);
        q.close();
        match q.next(0, false) {
            Next::Local(t) => assert_eq!(t.item, 7),
            other => panic!("{other:?}"),
        }
        // Closed queues let a consumer drain *other* queues even when
        // it could not normally steal.
        match q.next(0, false) {
            Next::Stolen { victim, task } => {
                assert_eq!(victim, 1);
                assert_eq!(task.item, 8);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(q.next(0, false), Next::Closed);
        assert_eq!(q.next(1, true), Next::Closed);
    }

    #[test]
    fn blocked_consumer_wakes_on_stage() {
        let q: StealQueues<u32> = StealQueues::new(1);
        let qc = q.clone();
        let consumer = std::thread::spawn(move || match qc.next(0, false) {
            Next::Local(t) => t.item,
            other => panic!("{other:?}"),
        });
        std::thread::sleep(Duration::from_millis(10));
        q.stage(0, 1, 42);
        assert_eq!(consumer.join().unwrap(), 42);
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: StealQueues<u32> = StealQueues::new(1);
        let qc = q.clone();
        let consumer = std::thread::spawn(move || qc.next(0, true));
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), Next::Closed);
    }

    #[test]
    fn cpu_steal_respects_the_cost_floor() {
        let q: StealQueues<u32> = StealQueues::new(2);
        q.stage(0, 10, 1);
        q.stage(1, 40, 2);
        assert!(
            q.try_steal_over(40).is_none(),
            "nothing strictly heavier than 40"
        );
        let (victim, task) = q.try_steal_over(39).expect("40 > 39");
        assert_eq!(victim, 1);
        assert_eq!(task.cost, 40);
        assert_eq!(q.staged_len(), 1);
    }

    #[test]
    fn try_next_local_under_pops_only_small_fifo_heads() {
        let q: StealQueues<u32> = StealQueues::new(2);
        assert!(q.try_next_local_under(0, 100).is_none(), "empty queue");
        q.stage(0, 10, 1);
        q.stage(0, 3, 2);
        q.stage(1, 1, 9);
        // Head costs 10: not under 10 (strict), under 11.
        assert!(q.try_next_local_under(0, 10).is_none());
        let t = q.try_next_local_under(0, 11).expect("10 < 11");
        assert_eq!((t.cost, t.item), (10, 1));
        let t = q.try_next_local_under(0, 11).expect("3 < 11");
        assert_eq!((t.cost, t.item), (3, 2));
        // Never touches another device's queue.
        assert!(q.try_next_local_under(0, u64::MAX).is_none());
        assert_eq!(q.staged_len(), 1);
    }

    #[test]
    fn try_next_local_under_keeps_backlog_consistent() {
        let q: StealQueues<u32> = StealQueues::new(2);
        q.stage(0, 5, 1);
        q.stage(1, 50, 2);
        let _ = q.try_next_local_under(0, 6).expect("5 < 6");
        // Backlog for queue 0 must be back to zero: a steal from queue 1
        // (the only non-empty one) still works and sees clean counts.
        match q.next(0, true) {
            Next::Stolen { victim, task } => {
                assert_eq!(victim, 1);
                assert_eq!(task.cost, 50);
            }
            other => panic!("expected steal, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_lock_does_not_deadlock_consumers() {
        // An out-of-range stage panics while holding the queue mutex,
        // poisoning it — exactly what a worker panic mid-operation
        // does. Every later operation must keep working on the
        // recovered state instead of cascading unwrap panics.
        let q: StealQueues<u32> = StealQueues::new(1);
        q.stage(0, 1, 7);
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.stage(5, 1, 99); // out of range: panics under the lock
        }));
        assert!(poison.is_err());
        assert_eq!(q.staged_len(), 1, "pre-panic state intact");
        match q.next(0, false) {
            Next::Local(t) => assert_eq!(t.item, 7),
            other => panic!("{other:?}"),
        }
        q.close();
        assert_eq!(q.next(0, false), Next::Closed);
    }

    #[test]
    fn restaging_a_failed_steal_preserves_the_task() {
        let q: StealQueues<u32> = StealQueues::new(2);
        q.stage(1, 30, 5);
        let Next::Stolen { victim, task } = q.next(0, true) else {
            panic!("expected steal");
        };
        // Thief's reassign failed: hand the task back.
        q.stage(victim, task.cost, task.item);
        match q.next(1, false) {
            Next::Local(t) => assert_eq!(t.item, 5),
            other => panic!("{other:?}"),
        }
    }
}
