//! The resident online autotuner.
//!
//! The paper's §III-A `AutoTuner` ([`crate::AutoTuner`]) is a one-shot
//! inflexion finder: sweep a queue-length candidate ladder offline,
//! freeze the best. That is the wrong shape for a long-lived service —
//! the optimum moves as the element mix shifts, devices degrade, and
//! load ramps. [`OnlineTuner`] keeps the same probe/patience idea but
//! runs it continuously against live decision epochs:
//!
//! * all tunable knobs live in one [`TunerKnobs`] block of atomics the
//!   runtime reads on its hot paths (pack threshold, async window,
//!   quantizer drop bits, service batch size, active rank count);
//! * each registered [`TunerDim`] is probed **one at a time** — the
//!   controller nudges the knob one step, watches the next epoch's
//!   signal (lower = better), and commits the move only if it improves
//!   the baseline by more than a hysteresis margin, rolling back
//!   otherwise (with `patience` repeated probes before giving up a
//!   direction, inherited from the one-shot tuner's non-improving
//!   budget);
//! * a full probe cycle across every dimension with no committed move
//!   parks the controller in a **settled** state where no knob moves at
//!   all; it wakes only when the signal drifts beyond a relative band,
//!   which is what bounds re-convergence after a drift event while
//!   guaranteeing quiet operation on a stationary workload.
//!
//! The tuner decides *where and when* work runs, never *what* is
//! computed: with the deterministic engine profile every knob it can
//! reach is placement/batching-only (and the drop-bits dimension is
//! registered only for configurations that already quantize lossily).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Identity of one tunable runtime knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Knob {
    /// Engine launch-aggregation threshold (cost units).
    PackThreshold,
    /// Engine per-device in-flight submission window.
    AsyncWindow,
    /// Service quantizer mantissa bits dropped.
    DropBits,
    /// Service batcher coalescing bound.
    MaxBatch,
    /// Engine CPU ranks allowed to pull work (elastic capacity).
    ActiveRanks,
}

impl Knob {
    /// Stable lowercase label used in JSON exports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Knob::PackThreshold => "pack_threshold",
            Knob::AsyncWindow => "async_window",
            Knob::DropBits => "drop_bits",
            Knob::MaxBatch => "max_batch",
            Knob::ActiveRanks => "active_ranks",
        }
    }
}

/// The live knob block: one atomic per knob, shared between the tuner
/// (writer) and the runtime hot paths (readers). Reads are relaxed —
/// a stale value for a few tasks is harmless because every knob is
/// placement/batching-only.
#[derive(Debug)]
pub struct TunerKnobs {
    pack_threshold: AtomicU64,
    async_window: AtomicU64,
    drop_bits: AtomicU64,
    max_batch: AtomicU64,
    active_ranks: AtomicU64,
}

impl TunerKnobs {
    /// Seed the block with the configured (frozen) values.
    #[must_use]
    pub fn new(
        pack_threshold: u64,
        async_window: u64,
        drop_bits: u64,
        max_batch: u64,
        active_ranks: u64,
    ) -> TunerKnobs {
        TunerKnobs {
            pack_threshold: AtomicU64::new(pack_threshold),
            async_window: AtomicU64::new(async_window),
            drop_bits: AtomicU64::new(drop_bits),
            max_batch: AtomicU64::new(max_batch),
            active_ranks: AtomicU64::new(active_ranks),
        }
    }

    fn cell(&self, knob: Knob) -> &AtomicU64 {
        match knob {
            Knob::PackThreshold => &self.pack_threshold,
            Knob::AsyncWindow => &self.async_window,
            Knob::DropBits => &self.drop_bits,
            Knob::MaxBatch => &self.max_batch,
            Knob::ActiveRanks => &self.active_ranks,
        }
    }

    /// Current value of `knob`.
    #[must_use]
    pub fn get(&self, knob: Knob) -> u64 {
        self.cell(knob).load(Ordering::Relaxed)
    }

    /// Set `knob` to `value`.
    pub fn set(&self, knob: Knob, value: u64) {
        self.cell(knob).store(value, Ordering::Relaxed);
    }

    /// Engine pack threshold (cost units; 0 disables aggregation).
    #[must_use]
    pub fn pack_threshold(&self) -> u64 {
        self.get(Knob::PackThreshold)
    }

    /// Engine per-device async submission window.
    #[must_use]
    pub fn async_window(&self) -> u64 {
        self.get(Knob::AsyncWindow)
    }

    /// Service quantizer drop bits.
    #[must_use]
    pub fn drop_bits(&self) -> u64 {
        self.get(Knob::DropBits)
    }

    /// Service batch coalescing bound.
    #[must_use]
    pub fn max_batch(&self) -> u64 {
        self.get(Knob::MaxBatch)
    }

    /// CPU ranks allowed to pull work.
    #[must_use]
    pub fn active_ranks(&self) -> u64 {
        self.get(Knob::ActiveRanks)
    }
}

/// One tunable dimension: the knob, its inclusive range, and the probe
/// step. A dimension with `min == max` is registered but pinned (never
/// probed) — useful to surface a knob in snapshots without letting the
/// controller move it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerDim {
    /// Which knob this dimension moves.
    pub knob: Knob,
    /// Lowest value the controller may set.
    pub min: u64,
    /// Highest value the controller may set.
    pub max: u64,
    /// Probe step size.
    pub step: u64,
}

/// Point-in-time view of one tuned dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimSnapshot {
    /// The knob.
    pub knob: Knob,
    /// Its current live value.
    pub value: u64,
    /// Direction of the last committed move: +1, -1, or 0 (none yet).
    pub last_move: i8,
}

/// Point-in-time view of the controller, embedded in
/// [`crate::SchedulerSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TunerSnapshot {
    /// Decision epochs observed so far.
    pub epoch: u64,
    /// Whether the controller is parked (no knob will move until the
    /// signal drifts out of band).
    pub settled: bool,
    /// Per-dimension current value and last committed direction.
    pub dims: Vec<DimSnapshot>,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Waiting for one epoch to (re)measure the baseline at the
    /// current configuration before probing.
    Baseline,
    /// A probe step has been applied to `dims[cursor]`; the next
    /// signal decides commit vs rollback.
    Probing { dir: i8, prev: u64, misses: u32 },
    /// Converged: no knob moves until the signal drifts out of band.
    Settled,
}

#[derive(Debug)]
struct TunerState {
    dims: Vec<TunerDim>,
    last_move: Vec<i8>,
    cursor: usize,
    mode: Mode,
    baseline: f64,
    committed_in_cycle: bool,
    tried_down: bool,
    epoch: u64,
}

/// The resident controller. Passive: some driver (the engine's epoch
/// thread) calls [`OnlineTuner::observe_epoch`] once per decision
/// epoch with a scalar signal where **lower is better** (e.g. mean
/// end-to-end latency, or modeled device seconds per task).
#[derive(Debug)]
pub struct OnlineTuner {
    knobs: Arc<TunerKnobs>,
    patience: u32,
    hysteresis: f64,
    drift_band: f64,
    state: Mutex<TunerState>,
}

/// Relative improvement a probe must show to be committed.
const HYSTERESIS: f64 = 0.02;

/// Relative signal drift that wakes a settled controller.
const DRIFT_BAND: f64 = 0.10;

impl OnlineTuner {
    /// New controller over `knobs` with the configured probe patience
    /// (clamped to ≥ 1, like [`crate::AutoTuner`]). Starts with no
    /// dimensions; add them with [`OnlineTuner::add_dim`].
    #[must_use]
    pub fn new(knobs: Arc<TunerKnobs>, patience: u32) -> OnlineTuner {
        OnlineTuner {
            knobs,
            patience: patience.max(1),
            hysteresis: HYSTERESIS,
            drift_band: DRIFT_BAND,
            state: Mutex::new(TunerState {
                dims: Vec::new(),
                last_move: Vec::new(),
                cursor: 0,
                mode: Mode::Baseline,
                baseline: f64::INFINITY,
                committed_in_cycle: false,
                tried_down: false,
                epoch: 0,
            }),
        }
    }

    /// The shared knob block this controller writes.
    #[must_use]
    pub fn knobs(&self) -> &Arc<TunerKnobs> {
        &self.knobs
    }

    fn lock(&self) -> MutexGuard<'_, TunerState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register a dimension. The live knob value is clamped into the
    /// dimension's range; a settled controller wakes up to probe the
    /// new dimension.
    pub fn add_dim(&self, dim: TunerDim) {
        let mut s = self.lock();
        let cur = self.knobs.get(dim.knob);
        let clamped = cur.clamp(dim.min, dim.max);
        if clamped != cur {
            self.knobs.set(dim.knob, clamped);
        }
        s.dims.push(dim);
        s.last_move.push(0);
        if matches!(s.mode, Mode::Settled) {
            s.mode = Mode::Baseline;
            s.cursor = s.dims.len() - 1;
        }
    }

    /// Feed one decision epoch's signal (lower = better) and let the
    /// controller move, commit, roll back, or stay parked.
    pub fn observe_epoch(&self, signal: f64) {
        if !signal.is_finite() {
            return;
        }
        let mut s = self.lock();
        s.epoch += 1;
        if s.dims.is_empty() {
            return;
        }
        match s.mode {
            Mode::Settled => {
                let drift = if s.baseline > 0.0 {
                    (signal - s.baseline).abs() / s.baseline
                } else {
                    signal.abs()
                };
                if drift > self.drift_band {
                    // Workload drifted: re-measure and re-probe.
                    s.baseline = signal;
                    s.cursor = 0;
                    s.committed_in_cycle = false;
                    self.begin_dim(&mut s);
                }
            }
            Mode::Baseline => {
                s.baseline = signal;
                self.begin_dim(&mut s);
            }
            Mode::Probing { dir, prev, misses } => {
                let dim = s.dims[s.cursor];
                if signal < s.baseline * (1.0 - self.hysteresis) {
                    // Commit the move and keep climbing this direction.
                    s.baseline = signal;
                    let cursor = s.cursor;
                    s.last_move[cursor] = dir;
                    s.committed_in_cycle = true;
                    if let Some(prev) = try_apply(&self.knobs, dim, dir) {
                        s.mode = Mode::Probing {
                            dir,
                            prev,
                            misses: 0,
                        };
                    } else {
                        s.cursor += 1;
                        self.begin_dim(&mut s);
                    }
                } else if misses + 1 < self.patience {
                    // Non-improving, but re-measure the same candidate
                    // before giving up (the one-shot tuner's patience).
                    s.mode = Mode::Probing {
                        dir,
                        prev,
                        misses: misses + 1,
                    };
                } else {
                    // Roll back; try the other direction, else move on.
                    self.knobs.set(dim.knob, prev);
                    if dir > 0 && !s.tried_down {
                        s.tried_down = true;
                        if let Some(prev) = try_apply(&self.knobs, dim, -1) {
                            s.mode = Mode::Probing {
                                dir: -1,
                                prev,
                                misses: 0,
                            };
                            return;
                        }
                    }
                    s.cursor += 1;
                    self.begin_dim(&mut s);
                }
            }
        }
    }

    /// Start probing `dims[cursor]` (skipping pinned dimensions); when
    /// the cycle completes without a committed move, park in
    /// [`Mode::Settled`].
    fn begin_dim(&self, s: &mut TunerState) {
        loop {
            if s.cursor >= s.dims.len() {
                if s.committed_in_cycle {
                    s.committed_in_cycle = false;
                    s.cursor = 0;
                    continue;
                }
                s.mode = Mode::Settled;
                return;
            }
            let dim = s.dims[s.cursor];
            s.tried_down = false;
            if let Some(prev) = try_apply(&self.knobs, dim, 1) {
                s.mode = Mode::Probing {
                    dir: 1,
                    prev,
                    misses: 0,
                };
                return;
            }
            s.tried_down = true;
            if let Some(prev) = try_apply(&self.knobs, dim, -1) {
                s.mode = Mode::Probing {
                    dir: -1,
                    prev,
                    misses: 0,
                };
                return;
            }
            s.cursor += 1;
        }
    }

    /// Whether the controller is parked.
    #[must_use]
    pub fn settled(&self) -> bool {
        matches!(self.lock().mode, Mode::Settled)
    }

    /// Point-in-time view for snapshots/JSON export.
    #[must_use]
    pub fn snapshot(&self) -> TunerSnapshot {
        let s = self.lock();
        TunerSnapshot {
            epoch: s.epoch,
            settled: matches!(s.mode, Mode::Settled),
            dims: s
                .dims
                .iter()
                .zip(&s.last_move)
                .map(|(d, &m)| DimSnapshot {
                    knob: d.knob,
                    value: self.knobs.get(d.knob),
                    last_move: m,
                })
                .collect(),
        }
    }
}

/// Apply one probe step to `dim` in direction `dir`, clamped to the
/// dimension's range. Returns the previous value, or `None` when the
/// knob cannot move that way (already at the bound, or `step == 0`).
fn try_apply(knobs: &TunerKnobs, dim: TunerDim, dir: i8) -> Option<u64> {
    let cur = knobs.get(dim.knob);
    let next = if dir > 0 {
        cur.saturating_add(dim.step).min(dim.max)
    } else {
        cur.saturating_sub(dim.step).max(dim.min)
    };
    if next == cur {
        return None;
    }
    knobs.set(dim.knob, next);
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knobs() -> Arc<TunerKnobs> {
        Arc::new(TunerKnobs::new(0, 1, 0, 16, 4))
    }

    /// A convex single-dimension plant: signal is minimized at
    /// `target`, growing linearly away from it.
    fn plant(value: u64, target: u64) -> f64 {
        1.0 + 0.1 * (value as f64 - target as f64).abs()
    }

    #[test]
    fn converges_to_a_convex_optimum_and_settles() {
        let k = knobs();
        let tuner = OnlineTuner::new(Arc::clone(&k), 1);
        tuner.add_dim(TunerDim {
            knob: Knob::MaxBatch,
            min: 1,
            max: 64,
            step: 4,
        });
        for _ in 0..64 {
            tuner.observe_epoch(plant(k.max_batch(), 32));
        }
        assert!(tuner.settled(), "controller should have parked");
        let got = k.max_batch();
        assert!(
            (28..=36).contains(&got),
            "should sit within one step of the optimum, got {got}"
        );
    }

    #[test]
    fn stationary_workload_stays_quiet_for_at_least_ten_epochs() {
        let k = knobs();
        let tuner = OnlineTuner::new(Arc::clone(&k), 1);
        tuner.add_dim(TunerDim {
            knob: Knob::MaxBatch,
            min: 1,
            max: 64,
            step: 4,
        });
        tuner.add_dim(TunerDim {
            knob: Knob::PackThreshold,
            min: 0,
            max: 64,
            step: 8,
        });
        let signal = |k: &TunerKnobs| plant(k.max_batch(), 24) + plant(k.pack_threshold(), 16);
        for _ in 0..256 {
            tuner.observe_epoch(signal(&k));
        }
        assert!(tuner.settled(), "must converge on a stationary workload");
        let frozen = (k.max_batch(), k.pack_threshold());
        // ≥ 10 quiet epochs: no oscillation, no knob movement at all.
        for epoch in 0..12 {
            tuner.observe_epoch(signal(&k));
            assert!(tuner.settled(), "woke up on a stationary signal");
            assert_eq!(
                (k.max_batch(), k.pack_threshold()),
                frozen,
                "knob moved in quiet epoch {epoch}"
            );
        }
    }

    #[test]
    fn drift_wakes_a_settled_controller_and_reconverges() {
        let k = knobs();
        let tuner = OnlineTuner::new(Arc::clone(&k), 1);
        tuner.add_dim(TunerDim {
            knob: Knob::MaxBatch,
            min: 1,
            max: 64,
            step: 4,
        });
        for _ in 0..64 {
            tuner.observe_epoch(plant(k.max_batch(), 32));
        }
        assert!(tuner.settled());
        // The optimum moves; the absolute signal level jumps with it.
        for _ in 0..96 {
            tuner.observe_epoch(3.0 * plant(k.max_batch(), 8));
        }
        assert!(tuner.settled(), "must re-converge after the drift");
        let got = k.max_batch();
        assert!(
            (4..=12).contains(&got),
            "should track the moved optimum, got {got}"
        );
    }

    #[test]
    fn rollback_restores_the_knob_when_probes_do_not_improve() {
        let k = knobs();
        let tuner = OnlineTuner::new(Arc::clone(&k), 2);
        k.set(Knob::AsyncWindow, 2);
        tuner.add_dim(TunerDim {
            knob: Knob::AsyncWindow,
            min: 1,
            max: 8,
            step: 1,
        });
        // Flat plant: nothing ever improves, so every probe must roll
        // back and the knob must end where it started.
        for _ in 0..32 {
            tuner.observe_epoch(1.0);
        }
        assert!(tuner.settled());
        assert_eq!(k.async_window(), 2, "rollback must restore the seed value");
        assert_eq!(
            tuner.snapshot().dims[0].last_move,
            0,
            "no move was ever committed"
        );
    }

    #[test]
    fn pinned_dimension_never_moves() {
        let k = knobs();
        let tuner = OnlineTuner::new(Arc::clone(&k), 1);
        tuner.add_dim(TunerDim {
            knob: Knob::DropBits,
            min: 0,
            max: 0,
            step: 1,
        });
        for _ in 0..8 {
            tuner.observe_epoch(1.0);
        }
        assert_eq!(k.drop_bits(), 0);
        assert!(tuner.settled());
    }

    #[test]
    fn add_dim_clamps_live_value_into_range() {
        let k = knobs();
        k.set(Knob::MaxBatch, 500);
        let tuner = OnlineTuner::new(Arc::clone(&k), 1);
        tuner.add_dim(TunerDim {
            knob: Knob::MaxBatch,
            min: 1,
            max: 64,
            step: 4,
        });
        assert_eq!(k.max_batch(), 64);
    }

    #[test]
    fn snapshot_reports_epoch_values_and_moves() {
        let k = knobs();
        let tuner = OnlineTuner::new(Arc::clone(&k), 1);
        tuner.add_dim(TunerDim {
            knob: Knob::MaxBatch,
            min: 1,
            max: 64,
            step: 4,
        });
        for _ in 0..20 {
            tuner.observe_epoch(plant(k.max_batch(), 40));
        }
        let snap = tuner.snapshot();
        assert_eq!(snap.epoch, 20);
        assert_eq!(snap.dims.len(), 1);
        assert_eq!(snap.dims[0].knob, Knob::MaxBatch);
        assert_eq!(snap.dims[0].value, k.max_batch());
        assert_eq!(
            snap.dims[0].last_move, 1,
            "climbing toward 40 commits upward moves"
        );
    }
}
