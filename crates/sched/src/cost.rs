//! Blended static + measured task cost.
//!
//! Placement starts from the *a-priori* static estimate (the engine's
//! `ion_task_cost`: levels × in-window bins). That model is exact about
//! the **count** of bin integrals but blind to how expensive a unit is
//! for a given workload class — integrand shape, window position, and
//! cache behaviour all vary by element and level structure, so two
//! tasks with equal static units can differ several-fold in measured
//! device seconds (the "mispredicted mix" failure mode).
//!
//! [`CostModel`] closes that gap online: every settled task reports its
//! measured device seconds, which are folded into a per-class
//! seconds-per-unit EWMA keyed by [`CostKey`] (element, log2 level
//! bucket, log2 bin bucket) plus a global seconds-per-unit EWMA. The
//! blended estimate rescales the static units by the class's measured
//! speed relative to the global mean — classes that run slower than
//! the static model predicts grow heavier, faster classes grow
//! lighter, and the *ratios* placement compares track reality.
//!
//! Degeneracy contract (relied on by the engine's bitwise tests): with
//! **zero observations** — and for any **unobserved class** — the
//! blend returns the static units exactly, so a cold scheduler places
//! identically to one without measured-cost feedback.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// EWMA weight of each new observation (matches the scheduler's
/// per-device rate EWMA).
const ALPHA: f64 = 0.25;

/// Workload-class key of the online cost regression: element plus
/// log2-bucketed level count and bin count. Bucketing keeps the table
/// tiny (a few hundred classes for the full census) while separating
/// the shapes whose per-unit cost genuinely differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostKey {
    /// Element (nuclear charge) of the task's ion.
    pub z: u8,
    /// `floor(log2(levels))` of the task's level range.
    pub level_bucket: u8,
    /// `floor(log2(bins))` of the task's energy grid.
    pub bin_bucket: u8,
}

impl CostKey {
    /// Build a key from raw task shape (counts are clamped to ≥ 1
    /// before bucketing).
    #[must_use]
    pub fn bucketed(z: u8, levels: usize, bins: usize) -> CostKey {
        CostKey {
            z,
            level_bucket: log2_bucket(levels),
            bin_bucket: log2_bucket(bins),
        }
    }
}

fn log2_bucket(n: usize) -> u8 {
    (usize::BITS - 1 - n.max(1).leading_zeros()) as u8
}

#[derive(Debug, Default)]
struct Regression {
    /// Per-class measured seconds-per-unit EWMA.
    per_key: HashMap<CostKey, f64>,
    /// Global measured seconds-per-unit EWMA across all classes.
    global_spu: f64,
    /// EWMA of the relative residual between what the *static* model
    /// predicts (units × global seconds-per-unit) and the measured
    /// seconds — the "how wrong is the a-priori model" gauge surfaced
    /// in `SchedulerSnapshot`.
    residual: f64,
}

/// Online blend of the static task-cost model with measured per-task
/// device seconds. Thread-safe; `observe` is called from settle paths,
/// `blended` from placement paths.
#[derive(Debug, Default)]
pub struct CostModel {
    state: Mutex<Regression>,
    observations: AtomicU64,
}

impl CostModel {
    /// Fresh model with no observations (blend ≡ static).
    #[must_use]
    pub fn new() -> CostModel {
        CostModel::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Regression> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Measured-cost observations folded in so far.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// The measured-vs-static relative residual EWMA in milli-units
    /// (1000 = the static model mispredicts by 100%). Integer so
    /// snapshots stay `Eq`-comparable.
    #[must_use]
    pub fn residual_milli(&self) -> u64 {
        let r = self.lock().residual;
        if r.is_finite() && r > 0.0 {
            (r * 1000.0).round() as u64
        } else {
            0
        }
    }

    /// The blended cost estimate for a task of `static_units` in class
    /// `key`: static units rescaled by the class's measured
    /// seconds-per-unit relative to the global mean. Exactly
    /// `static_units` when nothing has been observed (globally or for
    /// this class), and never below 1.
    #[must_use]
    pub fn blended(&self, key: &CostKey, static_units: u64) -> u64 {
        if self.observations.load(Ordering::Relaxed) == 0 {
            return static_units;
        }
        let state = self.lock();
        let Some(&key_spu) = state.per_key.get(key) else {
            return static_units;
        };
        if state.global_spu <= 0.0 || key_spu <= 0.0 {
            return static_units;
        }
        let scaled = static_units as f64 * (key_spu / state.global_spu);
        if scaled.is_finite() {
            (scaled.round() as u64).max(1)
        } else {
            static_units.max(1)
        }
    }

    /// Fold one settled task's measured device seconds into the
    /// regression. Non-finite or non-positive measurements are ignored
    /// (a faulted task settles without useful timing).
    pub fn observe(&self, key: &CostKey, static_units: u64, measured_s: f64) {
        if !measured_s.is_finite() || measured_s <= 0.0 {
            return;
        }
        let spu = measured_s / static_units.max(1) as f64;
        let mut state = self.lock();
        let first = self.observations.fetch_add(1, Ordering::Relaxed) == 0;
        if first {
            state.global_spu = spu;
            state.per_key.insert(*key, spu);
            return;
        }
        // Residual of the *static* prediction at the pre-update global
        // rate, so the gauge reflects what placement would have assumed.
        let predicted_s = static_units.max(1) as f64 * state.global_spu;
        let rel = ((predicted_s - measured_s) / measured_s).abs();
        state.residual += ALPHA * (rel - state.residual);
        state.global_spu += ALPHA * (spu - state.global_spu);
        let entry = state.per_key.entry(*key).or_insert(spu);
        *entry += ALPHA * (spu - *entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_observations_degenerate_to_static_exactly() {
        let model = CostModel::new();
        for units in [1u64, 7, 120, 9999, u64::MAX / 4] {
            for z in [1u8, 8, 26] {
                let key = CostKey::bucketed(z, 12, 400);
                assert_eq!(model.blended(&key, units), units);
            }
        }
        assert_eq!(model.observations(), 0);
        assert_eq!(model.residual_milli(), 0);
    }

    #[test]
    fn unobserved_class_degenerates_even_after_other_observations() {
        let model = CostModel::new();
        let seen = CostKey::bucketed(26, 16, 400);
        for _ in 0..32 {
            model.observe(&seen, 100, 0.5);
        }
        let unseen = CostKey::bucketed(2, 1, 400);
        assert_eq!(model.blended(&unseen, 777), 777);
    }

    #[test]
    fn slow_class_grows_heavier_than_static() {
        let model = CostModel::new();
        let fast = CostKey::bucketed(1, 2, 128);
        let slow = CostKey::bucketed(26, 16, 128);
        // Equal static units, 4x difference in measured seconds.
        for _ in 0..64 {
            model.observe(&fast, 100, 0.1);
            model.observe(&slow, 100, 0.4);
        }
        let fast_cost = model.blended(&fast, 100);
        let slow_cost = model.blended(&slow, 100);
        assert!(
            slow_cost > 100 && fast_cost < 100,
            "blend must separate the classes: fast {fast_cost}, slow {slow_cost}"
        );
        assert!(
            slow_cost as f64 / fast_cost as f64 > 3.0,
            "ratio should approach the measured 4x: {fast_cost} vs {slow_cost}"
        );
    }

    #[test]
    fn residual_tracks_static_mispredict_and_never_zero_cost() {
        let model = CostModel::new();
        let a = CostKey::bucketed(3, 4, 64);
        let b = CostKey::bucketed(20, 8, 64);
        for _ in 0..32 {
            model.observe(&a, 100, 0.1);
            model.observe(&b, 100, 0.9);
        }
        assert!(
            model.residual_milli() > 100,
            "a 9x spread across classes must show up in the residual: {}",
            model.residual_milli()
        );
        // A tiny task in a fast class still reserves at least one unit.
        assert!(model.blended(&a, 1) >= 1);
    }

    #[test]
    fn bad_measurements_are_ignored() {
        let model = CostModel::new();
        let key = CostKey::bucketed(5, 2, 32);
        model.observe(&key, 10, f64::NAN);
        model.observe(&key, 10, -1.0);
        model.observe(&key, 10, 0.0);
        assert_eq!(model.observations(), 0);
        assert_eq!(model.blended(&key, 10), 10);
    }

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(CostKey::bucketed(1, 0, 1).level_bucket, 0);
        assert_eq!(CostKey::bucketed(1, 1, 1).level_bucket, 0);
        assert_eq!(CostKey::bucketed(1, 2, 1).level_bucket, 1);
        assert_eq!(CostKey::bucketed(1, 3, 1).level_bucket, 1);
        assert_eq!(CostKey::bucketed(1, 4, 1).level_bucket, 2);
        assert_eq!(CostKey::bucketed(1, 1, 400).bin_bucket, 8);
    }
}
