//! Per-device health tracking: the quarantine ladder.
//!
//! Placement must react to device failures, not just queue depth: a
//! device refusing every launch still looks attractively idle to the
//! load arrays, so the scheduler would keep feeding it work that only
//! comes back as retries. The tracker runs one small state machine per
//! device:
//!
//! ```text
//!            consecutive failures ≥ degraded_after
//!   Healthy ──────────────────────────────────────▶ Degraded
//!      ▲  ▲                                            │
//!      │  │ one success                                │ consecutive ≥ quarantine_after
//!      │  └────────────────────────────────────────────┤ or error rate ≥ threshold
//!      │                                               ▼
//!      │ probation_successes in a row            Quarantined ◀──┐
//!      │                                               │        │ any failure
//!      │            probation_cooldown elapsed         │        │ during probation
//!      └───────────── Probation ◀──────────────────────┘        │
//!                        └──────────────────────────────────────┘
//! ```
//!
//! `Quarantined` devices are invisible to placement (the scheduler
//! presents them as full); after a cooldown they re-enter as
//! `Probation`, which admits **one probe task at a time** until a
//! success streak re-earns `Healthy`. A device marked *lost* is
//! quarantined forever — its cooldown never elapses.
//!
//! The tracker is deliberately advisory: it never touches grant
//! accounting, so health decisions can never leak a queue slot.

use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The ladder states (see the module diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HealthState {
    /// Full placement eligibility.
    #[default]
    Healthy,
    /// Failures observed; still placed, one more streak quarantines.
    Degraded,
    /// Out of placement until the cooldown elapses (forever if lost).
    Quarantined,
    /// Re-admitted on trial: one probe task at a time.
    Probation,
}

/// Thresholds driving the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Consecutive failures before `Healthy → Degraded`.
    pub degraded_after: u32,
    /// Consecutive failures before `→ Quarantined`.
    pub quarantine_after: u32,
    /// Failure fraction over the observation window that quarantines
    /// even without a consecutive streak (flapping devices).
    pub error_rate_threshold: f64,
    /// Minimum observations before the error-rate rule applies.
    pub error_rate_window: u32,
    /// How long a quarantined device rests before probation.
    pub probation_cooldown: Duration,
    /// Consecutive probe successes before `Probation → Healthy`.
    pub probation_successes: u32,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            degraded_after: 2,
            quarantine_after: 5,
            error_rate_threshold: 0.5,
            error_rate_window: 8,
            probation_cooldown: Duration::from_millis(25),
            probation_successes: 3,
        }
    }
}

#[derive(Debug, Default)]
struct DeviceHealth {
    state: HealthState,
    consecutive_failures: u32,
    /// Failure/total counts since the last state change (error rate).
    window_failures: u32,
    window_total: u32,
    probation_streak: u32,
    quarantined_at: Option<Instant>,
    lost: bool,
    // Lifetime counters for observability.
    failures: u64,
    successes: u64,
    quarantines: u64,
    probations: u64,
    recoveries: u64,
}

impl DeviceHealth {
    fn reset_window(&mut self) {
        self.window_failures = 0;
        self.window_total = 0;
    }

    fn quarantine(&mut self, now: Instant) {
        self.state = HealthState::Quarantined;
        self.quarantines += 1;
        self.quarantined_at = Some(now);
        self.consecutive_failures = 0;
        self.probation_streak = 0;
        self.reset_window();
    }
}

/// Read-only view of the tracker for reports and metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Current state per device.
    pub states: Vec<HealthState>,
    /// Lifetime failed task attempts per device.
    pub failures: Vec<u64>,
    /// Lifetime successful completions per device.
    pub successes: Vec<u64>,
    /// Total `→ Quarantined` transitions.
    pub quarantines: u64,
    /// Total `Quarantined → Probation` transitions.
    pub probations: u64,
    /// Total `Probation → Healthy` recoveries (full ladder cycles).
    pub recoveries: u64,
}

impl HealthSnapshot {
    /// An all-healthy snapshot for `devices` devices (the zero-GPU and
    /// pre-observation default).
    #[must_use]
    pub fn healthy(devices: usize) -> HealthSnapshot {
        HealthSnapshot {
            states: vec![HealthState::Healthy; devices],
            failures: vec![0; devices],
            successes: vec![0; devices],
            quarantines: 0,
            probations: 0,
            recoveries: 0,
        }
    }

    /// How many devices are currently quarantined.
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == HealthState::Quarantined)
            .count()
    }

    /// Whether **every** device is quarantined — the routing tier's
    /// demotion signal: a shard in this state can still answer through
    /// its CPU-fallback path but should stop receiving preferred
    /// placements. `false` when there are no devices at all (a
    /// CPU-only shard is degraded by construction, not by faults).
    #[must_use]
    pub fn all_quarantined(&self) -> bool {
        !self.states.is_empty() && self.quarantined() == self.states.len()
    }
}

/// Shared per-device health state machine. Cloning shares state (like
/// the scheduler it rides in).
#[derive(Debug, Clone)]
pub struct HealthTracker {
    inner: Arc<Mutex<Vec<DeviceHealth>>>,
    config: HealthConfig,
}

impl HealthTracker {
    /// A tracker for `devices` devices under `config`.
    #[must_use]
    pub fn new(devices: usize, config: HealthConfig) -> HealthTracker {
        HealthTracker {
            inner: Arc::new(Mutex::new(
                (0..devices).map(|_| DeviceHealth::default()).collect(),
            )),
            config,
        }
    }

    /// The thresholds in force.
    #[must_use]
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    fn with<R>(&self, f: impl FnOnce(&mut Vec<DeviceHealth>) -> R) -> R {
        f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Record a successful completion on `device`.
    pub fn record_success(&self, device: usize) {
        self.with(|devices| {
            let Some(d) = devices.get_mut(device) else {
                return;
            };
            d.successes += 1;
            d.consecutive_failures = 0;
            d.window_total += 1;
            match d.state {
                HealthState::Probation => {
                    d.probation_streak += 1;
                    if d.probation_streak >= self.config.probation_successes {
                        d.state = HealthState::Healthy;
                        d.recoveries += 1;
                        d.probation_streak = 0;
                        d.reset_window();
                    }
                }
                HealthState::Degraded => {
                    d.state = HealthState::Healthy;
                    d.reset_window();
                }
                // A task granted before quarantine may still complete;
                // it counts but does not re-admit the device early.
                HealthState::Quarantined | HealthState::Healthy => {}
            }
        });
    }

    /// Record a failed task attempt on `device`.
    pub fn record_failure(&self, device: usize) {
        let now = Instant::now();
        self.with(|devices| {
            let Some(d) = devices.get_mut(device) else {
                return;
            };
            d.failures += 1;
            d.consecutive_failures += 1;
            d.window_total += 1;
            d.window_failures += 1;
            match d.state {
                HealthState::Probation => d.quarantine(now),
                HealthState::Healthy | HealthState::Degraded => {
                    let streak = d.consecutive_failures >= self.config.quarantine_after;
                    let rate = d.window_total >= self.config.error_rate_window
                        && f64::from(d.window_failures)
                            >= self.config.error_rate_threshold * f64::from(d.window_total);
                    if streak || rate {
                        d.quarantine(now);
                    } else if d.consecutive_failures >= self.config.degraded_after {
                        d.state = HealthState::Degraded;
                    }
                }
                HealthState::Quarantined => {}
            }
        });
    }

    /// Mark `device` permanently lost: quarantined with a cooldown that
    /// never elapses.
    pub fn mark_lost(&self, device: usize) {
        let now = Instant::now();
        self.with(|devices| {
            let Some(d) = devices.get_mut(device) else {
                return;
            };
            if !d.lost {
                d.lost = true;
                if d.state != HealthState::Quarantined {
                    d.quarantine(now);
                }
                d.quarantined_at = None;
            }
        });
    }

    /// Whether `device` may receive new placements right now, given its
    /// current queue `load`. Quarantined devices whose cooldown has
    /// elapsed transition to probation here (lazy re-admission);
    /// probation devices accept only when idle (one probe at a time).
    pub fn placement_eligible(&self, device: usize, load: u64) -> bool {
        self.with(|devices| {
            let Some(d) = devices.get_mut(device) else {
                return false;
            };
            match d.state {
                HealthState::Healthy | HealthState::Degraded => true,
                HealthState::Probation => load == 0,
                HealthState::Quarantined => {
                    if d.lost {
                        return false;
                    }
                    let rested = d
                        .quarantined_at
                        .is_none_or(|t| t.elapsed() >= self.config.probation_cooldown);
                    if rested {
                        d.state = HealthState::Probation;
                        d.probations += 1;
                        d.probation_streak = 0;
                        d.reset_window();
                        load == 0
                    } else {
                        false
                    }
                }
            }
        })
    }

    /// Current state of one device.
    #[must_use]
    pub fn state(&self, device: usize) -> HealthState {
        self.with(|devices| {
            devices
                .get(device)
                .map_or(HealthState::Healthy, |d| d.state)
        })
    }

    /// Whether `device` was marked lost.
    #[must_use]
    pub fn is_lost(&self, device: usize) -> bool {
        self.with(|devices| devices.get(device).is_some_and(|d| d.lost))
    }

    /// Read the full tracker state.
    #[must_use]
    pub fn snapshot(&self) -> HealthSnapshot {
        self.with(|devices| HealthSnapshot {
            states: devices.iter().map(|d| d.state).collect(),
            failures: devices.iter().map(|d| d.failures).collect(),
            successes: devices.iter().map(|d| d.successes).collect(),
            quarantines: devices.iter().map(|d| d.quarantines).sum(),
            probations: devices.iter().map(|d| d.probations).sum(),
            recoveries: devices.iter().map(|d| d.recoveries).sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> HealthConfig {
        HealthConfig {
            probation_cooldown: Duration::from_millis(1),
            ..HealthConfig::default()
        }
    }

    #[test]
    fn failures_walk_the_ladder_down() {
        let t = HealthTracker::new(1, fast_config());
        assert_eq!(t.state(0), HealthState::Healthy);
        t.record_failure(0);
        assert_eq!(t.state(0), HealthState::Healthy, "one failure tolerated");
        t.record_failure(0);
        assert_eq!(t.state(0), HealthState::Degraded);
        for _ in 0..3 {
            t.record_failure(0);
        }
        assert_eq!(t.state(0), HealthState::Quarantined);
        assert!(!t.placement_eligible(0, 0), "cooldown not yet elapsed");
    }

    #[test]
    fn success_heals_a_degraded_device() {
        let t = HealthTracker::new(1, fast_config());
        t.record_failure(0);
        t.record_failure(0);
        assert_eq!(t.state(0), HealthState::Degraded);
        t.record_success(0);
        assert_eq!(t.state(0), HealthState::Healthy);
    }

    #[test]
    fn full_cycle_quarantine_probation_healthy() {
        let t = HealthTracker::new(1, fast_config());
        for _ in 0..5 {
            t.record_failure(0);
        }
        assert_eq!(t.state(0), HealthState::Quarantined);
        std::thread::sleep(Duration::from_millis(3));
        assert!(t.placement_eligible(0, 0), "cooldown elapsed: probation");
        assert_eq!(t.state(0), HealthState::Probation);
        assert!(!t.placement_eligible(0, 1), "one probe at a time");
        for _ in 0..3 {
            t.record_success(0);
        }
        assert_eq!(t.state(0), HealthState::Healthy);
        let snap = t.snapshot();
        assert_eq!(snap.quarantines, 1);
        assert_eq!(snap.probations, 1);
        assert_eq!(snap.recoveries, 1, "one full ladder cycle");
    }

    #[test]
    fn failure_during_probation_re_quarantines() {
        let t = HealthTracker::new(1, fast_config());
        for _ in 0..5 {
            t.record_failure(0);
        }
        std::thread::sleep(Duration::from_millis(3));
        assert!(t.placement_eligible(0, 0));
        t.record_failure(0);
        assert_eq!(t.state(0), HealthState::Quarantined);
        assert_eq!(t.snapshot().quarantines, 2);
    }

    #[test]
    fn error_rate_quarantines_a_flapping_device() {
        // Alternating success/failure never builds a 5-streak, but the
        // windowed error rate catches it.
        let t = HealthTracker::new(1, fast_config());
        for _ in 0..8 {
            t.record_failure(0);
            t.record_success(0);
        }
        assert_eq!(t.state(0), HealthState::Quarantined, "50% failure rate");
    }

    #[test]
    fn lost_devices_never_return() {
        let t = HealthTracker::new(2, fast_config());
        t.mark_lost(0);
        assert_eq!(t.state(0), HealthState::Quarantined);
        assert!(t.is_lost(0));
        std::thread::sleep(Duration::from_millis(5));
        assert!(!t.placement_eligible(0, 0), "no probation for a lost card");
        assert!(t.placement_eligible(1, 0), "the healthy peer is unaffected");
    }

    #[test]
    fn snapshot_counts_lifetime_events() {
        let t = HealthTracker::new(2, fast_config());
        t.record_failure(0);
        t.record_success(0);
        t.record_success(1);
        let snap = t.snapshot();
        assert_eq!(snap.failures, vec![1, 0]);
        assert_eq!(snap.successes, vec![1, 1]);
        assert_eq!(snap.states, vec![HealthState::Healthy; 2]);
    }
}
