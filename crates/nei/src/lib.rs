//! Non-equilibrium ionization (NEI) substrate.
//!
//! Paper §IV-D evaluates the hybrid framework's adaptability on NEI: at
//! every point of the parameter space, "about a dozen of ODE groups"
//! (one per element) evolve the ion-stage populations under paper
//! Eq. 4:
//!
//! ```text
//! dn_i/dt = Ne [ n_{i+1} a_{i+1} + n_{i-1} S_{i-1} - n_i (a_i + S_i) ]
//! ```
//!
//! The ODEs are "stiff and sparse" (tridiagonal, with rate contrasts of
//! many orders of magnitude), and the paper solves them with LSODA.
//! This crate provides:
//!
//! * [`system`] — the rate equations over the synthetic
//!   [`atomdb`] coefficients, with their tridiagonal Jacobian;
//! * [`linalg`] — the dense LU solver the implicit method needs
//!   (systems are at most 32×32, one row per ionization stage);
//! * [`solver`] — an LSODA-style switching integrator: an explicit
//!   adaptive Runge–Kutta method while the problem is non-stiff, an
//!   implicit BDF with Newton iteration when stiffness is detected,
//!   with automatic switching like LSODA's;
//! * [`equilibrium`] — the closed-form CIE steady state (the birth–
//!   death chain balance), used for initial conditions and as a test
//!   oracle;
//! * [`task`] — packing of timestep batches into scheduler tasks ("every
//!   ten time-dependent calculations are packed into one task");
//! * [`alpha`] — the alpha-chain nucleosynthesis network (the paper's
//!   §V future-work application), integrated by the same solver through
//!   the [`OdeSystem`] trait.

pub mod alpha;
pub mod equilibrium;
pub mod history;
pub mod linalg;
pub mod solver;
pub mod system;
pub mod task;

pub use alpha::AlphaChain;
pub use equilibrium::equilibrium_fractions;
pub use history::{PlasmaHistory, PlasmaSample};
pub use linalg::LuMatrix;
pub use solver::{LsodaSolver, Method, OdeSystem, SolverConfig, SolverStats};
pub use system::NeiSystem;
pub use task::{NeiTask, NeiWorkload};
