//! NEI task packing.
//!
//! Paper §IV-D: "every ten time-dependent calculations are packed into
//! one task for reducing the frequency of data copy between host and
//! device". A [`NeiTask`] is therefore a batch of consecutive timesteps
//! of one grid point's ODE groups; [`NeiWorkload`] describes the full
//! experiment (10⁶ points × 1000 timesteps in the paper) and hands out
//! tasks.

use crate::solver::{LsodaSolver, SolverStats};
use crate::system::NeiSystem;

/// The elements whose ODE groups one grid point evolves — "about a
/// dozen of ODE groups" (paper §IV-D): the astrophysically abundant
/// dozen.
pub const NEI_ELEMENTS: [u8; 12] = [1, 2, 6, 7, 8, 10, 12, 14, 16, 18, 20, 26];

/// One schedulable NEI task: `steps` consecutive timesteps of every ODE
/// group of one grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeiTask {
    /// Index of the grid point this task belongs to.
    pub point: usize,
    /// First timestep covered (inclusive).
    pub first_step: usize,
    /// Number of consecutive timesteps packed into the task.
    pub steps: usize,
    /// Duration of one timestep in seconds.
    pub dt_s: f64,
    /// Plasma temperature at this point, kelvin.
    pub temperature_k: f64,
    /// Electron density at this point, cm^-3.
    pub electron_density: f64,
}

impl NeiTask {
    /// Execute the task for real: advance every element's ion-fraction
    /// vector through the packed timesteps. `state` holds one vector per
    /// element of [`NEI_ELEMENTS`] and is advanced in place. Returns
    /// aggregate solver statistics (the task's true cost).
    ///
    /// # Panics
    /// Panics if `state` does not have one correctly sized vector per
    /// element.
    pub fn execute(&self, solver: &LsodaSolver, state: &mut [Vec<f64>]) -> SolverStats {
        assert_eq!(state.len(), NEI_ELEMENTS.len(), "one state per element");
        let mut total = SolverStats::default();
        for (z, x) in NEI_ELEMENTS.iter().zip(state.iter_mut()) {
            let sys = NeiSystem {
                z: *z,
                electron_density: self.electron_density,
                temperature_k: self.temperature_k,
            };
            assert_eq!(x.len(), sys.dim(), "state dim for Z={z}");
            let t0 = self.first_step as f64 * self.dt_s;
            let t1 = t0 + self.steps as f64 * self.dt_s;
            let stats = solver.integrate(&sys, x, t0, t1);
            total.steps += stats.steps;
            total.rejected += stats.rejected;
            total.rhs_evals += stats.rhs_evals;
            total.jac_evals += stats.jac_evals;
            total.lu_factorizations += stats.lu_factorizations;
            total.method_switches += stats.method_switches;
            total.truncated |= stats.truncated;
        }
        total
    }

    /// Fresh per-element state vectors, all population neutral — the
    /// standard NEI initial condition for a suddenly heated plasma.
    #[must_use]
    pub fn neutral_state() -> Vec<Vec<f64>> {
        NEI_ELEMENTS
            .iter()
            .map(|&z| {
                let mut x = vec![0.0; usize::from(z) + 1];
                x[0] = 1.0;
                x
            })
            .collect()
    }
}

/// The full NEI experiment shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeiWorkload {
    /// Number of grid points (paper: 10⁶).
    pub points: usize,
    /// Timesteps evolved per point (paper: 1000).
    pub timesteps: usize,
    /// Timesteps packed per task (paper: 10).
    pub steps_per_task: usize,
    /// Physical timestep, seconds.
    pub dt_s: f64,
}

impl NeiWorkload {
    /// The paper's configuration.
    #[must_use]
    pub fn paper() -> NeiWorkload {
        NeiWorkload {
            points: 1_000_000,
            timesteps: 1000,
            steps_per_task: 10,
            dt_s: 1e4,
        }
    }

    /// Tasks per point (ceiling division: a final short task covers the
    /// remainder).
    #[must_use]
    pub fn tasks_per_point(&self) -> usize {
        self.timesteps.div_ceil(self.steps_per_task.max(1))
    }

    /// Total task count.
    #[must_use]
    pub fn total_tasks(&self) -> usize {
        self.points * self.tasks_per_point()
    }

    /// Materialize the `k`-th task of `point` (plasma state supplied by
    /// the caller's parameter space).
    ///
    /// # Panics
    /// Panics if `k >= tasks_per_point()` or `point >= points`.
    #[must_use]
    pub fn task(
        &self,
        point: usize,
        k: usize,
        temperature_k: f64,
        electron_density: f64,
    ) -> NeiTask {
        assert!(point < self.points, "point out of range");
        assert!(k < self.tasks_per_point(), "task index out of range");
        let first_step = k * self.steps_per_task;
        let steps = self.steps_per_task.min(self.timesteps - first_step);
        NeiTask {
            point,
            first_step,
            steps,
            dt_s: self.dt_s,
            temperature_k,
            electron_density,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_dimensions() {
        let w = NeiWorkload::paper();
        assert_eq!(w.tasks_per_point(), 100);
        assert_eq!(w.total_tasks(), 100_000_000);
    }

    #[test]
    fn remainder_timesteps_form_a_short_task() {
        let w = NeiWorkload {
            points: 1,
            timesteps: 25,
            steps_per_task: 10,
            dt_s: 1.0,
        };
        assert_eq!(w.tasks_per_point(), 3);
        let last = w.task(0, 2, 1e7, 1.0);
        assert_eq!(last.first_step, 20);
        assert_eq!(last.steps, 5);
    }

    #[test]
    fn executing_a_task_advances_all_elements() {
        let w = NeiWorkload {
            points: 1,
            timesteps: 10,
            steps_per_task: 10,
            dt_s: 1e4,
        };
        let task = w.task(0, 0, 1e7, 1.0);
        let mut state = NeiTask::neutral_state();
        let solver = LsodaSolver::default();
        let stats = task.execute(&solver, &mut state);
        assert!(stats.steps > 0);
        // Every element still has a unit-sum distribution.
        for (z, x) in NEI_ELEMENTS.iter().zip(&state) {
            let sum: f64 = x.iter().sum();
            assert!((sum - 1.0).abs() < 1e-8, "Z={z}: sum {sum}");
        }
        // Hydrogen at 1e7 K for 1e5 s with Ne=1 ionizes measurably.
        assert!(state[0][0] < 1.0);
    }

    #[test]
    fn consecutive_tasks_tile_the_timeline() {
        let w = NeiWorkload {
            points: 2,
            timesteps: 30,
            steps_per_task: 10,
            dt_s: 2.0,
        };
        let mut covered = 0;
        for k in 0..w.tasks_per_point() {
            let t = w.task(1, k, 1e6, 1.0);
            assert_eq!(t.first_step, covered);
            covered += t.steps;
        }
        assert_eq!(covered, 30);
    }

    #[test]
    fn dozen_ode_groups_per_point() {
        assert_eq!(NEI_ELEMENTS.len(), 12);
        let state = NeiTask::neutral_state();
        assert_eq!(state.len(), 12);
        assert_eq!(state[11].len(), 27); // iron: 27 stages
    }
}
