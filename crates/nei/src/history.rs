//! Time-dependent plasma histories.
//!
//! In a hydrodynamic simulation each tracer particle carries a
//! temperature and density *history* — the NEI state must be integrated
//! along it (this is the workload of the paper's companion work
//! [Xiao et al., ICA3PP 2014] that §IV-D builds on). A
//! [`PlasmaHistory`] is a piecewise-linear `(t, T, n_e)` track; the
//! solver advances segment by segment, re-evaluating the rate
//! coefficients as the plasma evolves.

use crate::solver::{LsodaSolver, SolverStats};
use crate::system::NeiSystem;

/// One sample of a tracer's thermodynamic track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlasmaSample {
    /// Epoch in seconds.
    pub time_s: f64,
    /// Electron temperature in kelvin.
    pub temperature_k: f64,
    /// Electron density in cm^-3.
    pub electron_density: f64,
}

/// A piecewise-linear plasma history.
#[derive(Debug, Clone, PartialEq)]
pub struct PlasmaHistory {
    samples: Vec<PlasmaSample>,
}

impl PlasmaHistory {
    /// Build from samples; they must be strictly increasing in time and
    /// non-empty.
    ///
    /// # Panics
    /// Panics on an empty or non-monotonic sample list.
    #[must_use]
    pub fn new(samples: Vec<PlasmaSample>) -> PlasmaHistory {
        assert!(!samples.is_empty(), "history needs at least one sample");
        for pair in samples.windows(2) {
            assert!(
                pair[0].time_s < pair[1].time_s,
                "history samples must increase in time"
            );
        }
        PlasmaHistory { samples }
    }

    /// A constant-state history (reduces the solver to the fixed-state
    /// path; used as a consistency oracle in tests).
    #[must_use]
    pub fn constant(temperature_k: f64, electron_density: f64) -> PlasmaHistory {
        PlasmaHistory::new(vec![PlasmaSample {
            time_s: 0.0,
            temperature_k,
            electron_density,
        }])
    }

    /// An (effectively) instantaneous shock at `t_shock`: cold before,
    /// hot after, with the transition confined to a 1e-6-relative sliver
    /// — the canonical supernova-remnant driver.
    #[must_use]
    pub fn shock(t_shock: f64, t_cold_k: f64, t_hot_k: f64, ne: f64) -> PlasmaHistory {
        let eps = t_shock * 1e-6;
        PlasmaHistory::new(vec![
            PlasmaSample {
                time_s: 0.0,
                temperature_k: t_cold_k,
                electron_density: ne,
            },
            PlasmaSample {
                time_s: t_shock - eps,
                temperature_k: t_cold_k,
                electron_density: ne,
            },
            PlasmaSample {
                time_s: t_shock,
                temperature_k: t_hot_k,
                electron_density: ne,
            },
        ])
    }

    /// The samples.
    #[must_use]
    pub fn samples(&self) -> &[PlasmaSample] {
        &self.samples
    }

    /// Interpolated `(temperature, density)` at time `t` (clamped to the
    /// track's ends).
    #[must_use]
    pub fn at(&self, t: f64) -> (f64, f64) {
        let first = self.samples.first().expect("non-empty");
        if t <= first.time_s {
            return (first.temperature_k, first.electron_density);
        }
        let last = self.samples.last().expect("non-empty");
        if t >= last.time_s {
            return (last.temperature_k, last.electron_density);
        }
        let idx = self
            .samples
            .partition_point(|s| s.time_s <= t)
            .saturating_sub(1);
        let a = self.samples[idx];
        let b = self.samples[idx + 1];
        let w = (t - a.time_s) / (b.time_s - a.time_s);
        (
            a.temperature_k + w * (b.temperature_k - a.temperature_k),
            a.electron_density + w * (b.electron_density - a.electron_density),
        )
    }

    /// Integrate element `z`'s ion fractions along this history from
    /// `t0` to `t1`, splitting the solve into `substeps` per sample
    /// segment (rates are re-evaluated at each substep's midpoint
    /// state, second-order accurate in the history resolution).
    pub fn integrate(
        &self,
        solver: &LsodaSolver,
        z: u8,
        x: &mut [f64],
        t0: f64,
        t1: f64,
        substeps: usize,
    ) -> SolverStats {
        let substeps = substeps.max(1);
        let mut total = SolverStats::default();
        if t1 <= t0 {
            return total;
        }
        // Build the breakpoints: t0, interior sample times, t1.
        let mut cuts: Vec<f64> = vec![t0];
        for s in &self.samples {
            if s.time_s > t0 && s.time_s < t1 {
                cuts.push(s.time_s);
            }
        }
        cuts.push(t1);
        for pair in cuts.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let dt = (b - a) / substeps as f64;
            for k in 0..substeps {
                let lo = a + k as f64 * dt;
                let hi = lo + dt;
                let (temperature_k, electron_density) = self.at(0.5 * (lo + hi));
                let sys = NeiSystem {
                    z,
                    electron_density,
                    temperature_k,
                };
                let stats = solver.integrate(&sys, x, lo, hi);
                total.steps += stats.steps;
                total.rejected += stats.rejected;
                total.rhs_evals += stats.rhs_evals;
                total.jac_evals += stats.jac_evals;
                total.lu_factorizations += stats.lu_factorizations;
                total.method_switches += stats.method_switches;
                total.truncated |= stats.truncated;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::equilibrium_fractions;

    #[test]
    fn constant_history_matches_fixed_state_solver() {
        let solver = LsodaSolver::default();
        let history = PlasmaHistory::constant(1e7, 1.0);
        let sys = NeiSystem {
            z: 8,
            electron_density: 1.0,
            temperature_k: 1e7,
        };
        let mut x_hist = vec![0.0; sys.dim()];
        x_hist[0] = 1.0;
        let mut x_fixed = x_hist.clone();
        history.integrate(&solver, 8, &mut x_hist, 0.0, 1e9, 1);
        solver.integrate(&sys, &mut x_fixed, 0.0, 1e9);
        for (a, b) in x_hist.iter().zip(&x_fixed) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn interpolation_is_linear_and_clamped() {
        let h = PlasmaHistory::new(vec![
            PlasmaSample {
                time_s: 0.0,
                temperature_k: 1e6,
                electron_density: 1.0,
            },
            PlasmaSample {
                time_s: 10.0,
                temperature_k: 3e6,
                electron_density: 2.0,
            },
        ]);
        assert_eq!(h.at(-5.0), (1e6, 1.0));
        assert_eq!(h.at(20.0), (3e6, 2.0));
        let (t, ne) = h.at(5.0);
        assert!((t - 2e6).abs() < 1.0);
        assert!((ne - 1.5).abs() < 1e-12);
    }

    #[test]
    fn shock_history_ionizes_after_the_jump() {
        let solver = LsodaSolver::default();
        let history = PlasmaHistory::shock(1e8, 1e4, 1e7, 1.0);
        let mut x = vec![0.0; 9];
        x[0] = 1.0;
        // Before the shock: cold, nothing happens.
        history.integrate(&solver, 8, &mut x, 0.0, 5e7, 4);
        assert!(x[0] > 0.99, "pre-shock neutral fraction {}", x[0]);
        // Long after the shock: approaches the hot equilibrium.
        history.integrate(&solver, 8, &mut x, 5e7, 1e13, 4);
        let eq = equilibrium_fractions(&NeiSystem {
            z: 8,
            electron_density: 1.0,
            temperature_k: 1e7,
        });
        for (i, (a, b)) in x.iter().zip(&eq).enumerate() {
            assert!((a - b).abs() < 5e-3, "stage {i}: {a} vs eq {b}");
        }
    }

    #[test]
    fn simplex_is_preserved_along_histories() {
        let solver = LsodaSolver::default();
        let history = PlasmaHistory::new(vec![
            PlasmaSample {
                time_s: 0.0,
                temperature_k: 1e5,
                electron_density: 0.5,
            },
            PlasmaSample {
                time_s: 1e8,
                temperature_k: 2e7,
                electron_density: 1.5,
            },
            PlasmaSample {
                time_s: 2e8,
                temperature_k: 5e5,
                electron_density: 3.0,
            },
        ]);
        let mut x = vec![0.0; 13];
        x[0] = 1.0;
        history.integrate(&solver, 12, &mut x, 0.0, 3e8, 8);
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-7, "sum {sum}");
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "must increase in time")]
    fn non_monotonic_history_panics() {
        let _ = PlasmaHistory::new(vec![
            PlasmaSample {
                time_s: 1.0,
                temperature_k: 1e6,
                electron_density: 1.0,
            },
            PlasmaSample {
                time_s: 1.0,
                temperature_k: 2e6,
                electron_density: 1.0,
            },
        ]);
    }
}
