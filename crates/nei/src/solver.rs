//! LSODA-style switching ODE solver.
//!
//! The paper's NEI solver is LSODA: it integrates with a cheap explicit
//! method while the problem is non-stiff and switches to an implicit
//! stiff method when it is not. We reproduce that *cost structure* with
//!
//! * a Cash–Karp embedded Runge–Kutta 4(5) pair (from Numerical
//!   Recipes, which the paper itself cites) for the non-stiff phase, and
//! * an adaptive backward-Euler/Newton method with the tridiagonal
//!   Jacobian and dense LU for the stiff phase,
//!
//! switching when the explicit method's stability limit — not its
//! accuracy — is what pins the step size, which is LSODA's own
//! switching criterion in spirit.

use crate::linalg::LuMatrix;
use crate::system::NeiSystem;

/// An autonomous ODE system the switching solver can integrate.
///
/// Implemented by [`NeiSystem`] (the paper's ionization equations) and
/// by [`crate::alpha::AlphaChain`] (the nucleosynthesis network the
/// paper's §V names as the next target application).
pub trait OdeSystem {
    /// State dimension.
    fn dim(&self) -> usize;
    /// Evaluate `dx/dt` into `out`.
    fn rhs(&self, x: &[f64], out: &mut [f64]);
    /// Dense row-major Jacobian into `jac` (`dim*dim`).
    fn jacobian(&self, x: &[f64], jac: &mut [f64]);
    /// Magnitude of the fastest local rate (1/s) at state `x` — drives
    /// the stiffness switch and the explicit stability clamp.
    fn max_rate(&self, x: &[f64]) -> f64;
    /// Project the state back onto its invariant manifold after a step
    /// (e.g. the unit simplex for populations). Default: no-op.
    fn project(&self, _x: &mut [f64]) {}
}

impl OdeSystem for NeiSystem {
    fn dim(&self) -> usize {
        NeiSystem::dim(self)
    }
    fn rhs(&self, x: &[f64], out: &mut [f64]) {
        NeiSystem::rhs(self, x, out);
    }
    fn jacobian(&self, x: &[f64], jac: &mut [f64]) {
        NeiSystem::jacobian(self, x, jac);
    }
    fn max_rate(&self, _x: &[f64]) -> f64 {
        self.stiffness_estimate(1.0)
    }
    fn project(&self, x: &mut [f64]) {
        clamp_fractions(x);
    }
}

/// Which integration family is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Explicit Cash–Karp RK4(5) — the non-stiff ("Adams") phase.
    NonStiff,
    /// Implicit backward differentiation with Newton — the stiff phase.
    Stiff,
}

/// Solver tolerances and limits.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Relative tolerance on each component.
    pub rtol: f64,
    /// Absolute tolerance on each component.
    pub atol: f64,
    /// Maximum accepted+rejected steps per `integrate` call before
    /// giving up (the state so far is still returned).
    pub max_steps: u64,
    /// e-foldings of the fastest mode over the remaining span above
    /// which the problem counts as stiff (switch threshold).
    pub stiff_efoldings: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            rtol: 1e-6,
            atol: 1e-10,
            max_steps: 200_000,
            stiff_efoldings: 50.0,
        }
    }
}

/// Counters describing one `integrate` call — the cost profile the
/// hybrid framework's NEI cost model consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Accepted steps.
    pub steps: u64,
    /// Rejected (re-tried) steps.
    pub rejected: u64,
    /// Right-hand-side evaluations.
    pub rhs_evals: u64,
    /// Jacobian evaluations.
    pub jac_evals: u64,
    /// LU factorizations.
    pub lu_factorizations: u64,
    /// Times the method switched (non-stiff ↔ stiff).
    pub method_switches: u64,
    /// Whether the solve hit `max_steps` before reaching `t1`.
    pub truncated: bool,
}

/// The switching solver. Stateless between calls apart from config, so
/// one instance can serve many systems.
///
/// ```
/// use nei::{LsodaSolver, NeiSystem};
///
/// let sys = NeiSystem { z: 8, electron_density: 1.0, temperature_k: 1e7 };
/// let mut fractions = vec![0.0; sys.dim()];
/// fractions[0] = 1.0; // start neutral
/// let stats = LsodaSolver::default().integrate(&sys, &mut fractions, 0.0, 1e8);
/// assert!(stats.steps > 0);
/// let sum: f64 = fractions.iter().sum();
/// assert!((sum - 1.0).abs() < 1e-9); // populations stay a distribution
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct LsodaSolver {
    /// Configuration used by [`LsodaSolver::integrate`].
    pub config: SolverConfig,
}

// Cash-Karp tableau (Numerical Recipes 3rd ed., §17.2).
const A2: f64 = 0.2;
const A3: f64 = 0.3;
const A4: f64 = 0.6;
const A5: f64 = 1.0;
const A6: f64 = 0.875;
const B21: f64 = 0.2;
const B31: f64 = 3.0 / 40.0;
const B32: f64 = 9.0 / 40.0;
const B41: f64 = 0.3;
const B42: f64 = -0.9;
const B43: f64 = 1.2;
const B51: f64 = -11.0 / 54.0;
const B52: f64 = 2.5;
const B53: f64 = -70.0 / 27.0;
const B54: f64 = 35.0 / 27.0;
const B61: f64 = 1631.0 / 55296.0;
const B62: f64 = 175.0 / 512.0;
const B63: f64 = 575.0 / 13824.0;
const B64: f64 = 44275.0 / 110592.0;
const B65: f64 = 253.0 / 4096.0;
const C1: f64 = 37.0 / 378.0;
const C3: f64 = 250.0 / 621.0;
const C4: f64 = 125.0 / 594.0;
const C6: f64 = 512.0 / 1771.0;
const DC1: f64 = C1 - 2825.0 / 27648.0;
const DC3: f64 = C3 - 18575.0 / 48384.0;
const DC4: f64 = C4 - 13525.0 / 55296.0;
const DC5: f64 = -277.0 / 14336.0;
const DC6: f64 = C6 - 0.25;

impl LsodaSolver {
    /// A solver with the given tolerances.
    #[must_use]
    pub fn new(rtol: f64, atol: f64) -> LsodaSolver {
        LsodaSolver {
            config: SolverConfig {
                rtol,
                atol,
                ..SolverConfig::default()
            },
        }
    }

    /// Integrate `sys` from `t0` to `t1`, advancing `x` in place.
    /// Returns the cost/stat counters.
    ///
    /// # Panics
    /// Panics if `x.len() != sys.dim()`.
    pub fn integrate<S: OdeSystem>(&self, sys: &S, x: &mut [f64], t0: f64, t1: f64) -> SolverStats {
        let n = sys.dim();
        assert_eq!(x.len(), n, "state dimension");
        let mut stats = SolverStats::default();
        if t1 <= t0 {
            return stats;
        }
        let span = t1 - t0;
        let mut t = t0;
        let mut h = (span / 100.0).min(self.initial_step(sys, x, span));
        let mut method = self.pick_method(sys, x, span);

        // Workspaces reused across steps.
        let mut k = vec![vec![0.0; n]; 6];
        let mut ytmp = vec![0.0; n];
        let mut yerr = vec![0.0; n];
        let mut ynew = vec![0.0; n];
        let mut jac = vec![0.0; n * n];
        let mut lu = LuMatrix::zeros(n);
        let mut newton_rhs = vec![0.0; n];
        let mut f_new = vec![0.0; n];
        // BDF history: the previous accepted state, its step size and
        // the end-of-step second-derivative estimate (None right after a
        // start or a method switch — the first stiff step is then
        // backward Euler).
        let mut bdf_prev: Option<(Vec<f64>, f64, Vec<f64>)> = None;
        let mut f_x = vec![0.0; n];

        while t < t1 {
            if stats.steps + stats.rejected >= self.config.max_steps {
                stats.truncated = true;
                break;
            }
            h = h.min(t1 - t);
            if h <= 0.0 {
                break;
            }
            match method {
                Method::NonStiff => {
                    // Stiffness check: if the fastest mode would need far
                    // more explicit steps than the span justifies, switch.
                    let lambda = sys.max_rate(x); // 1/s
                    if lambda * (t1 - t) > self.config.stiff_efoldings && h * lambda > 2.0_f64 {
                        method = Method::Stiff;
                        stats.method_switches += 1;
                        continue;
                    }
                    // Stability clamp for the explicit method.
                    if lambda > 0.0 {
                        h = h.min(2.0 / lambda);
                    }
                    let accepted = self.rk_step(
                        sys, x, t, h, &mut k, &mut ytmp, &mut yerr, &mut ynew, &mut stats,
                    );
                    if let Some(err) = accepted {
                        t += h;
                        x.copy_from_slice(&ynew);
                        sys.project(x);
                        stats.steps += 1;
                        bdf_prev = None; // RK steps break the BDF history
                                         // PI-ish step growth.
                        let grow = if err > 0.0 {
                            0.9 * (1.0 / err).powf(0.2)
                        } else {
                            5.0
                        };
                        h *= grow.clamp(0.2, 5.0);
                    } else {
                        stats.rejected += 1;
                        h *= 0.5;
                    }
                }
                Method::Stiff => {
                    // If the problem relaxed (e.g. small remaining span or
                    // rates dropped), allow switching back.
                    let lambda = sys.max_rate(x);
                    if lambda * (t1 - t) < self.config.stiff_efoldings * 0.1 {
                        method = Method::NonStiff;
                        stats.method_switches += 1;
                        bdf_prev = None;
                        continue;
                    }
                    let ok = self.bdf_step(
                        sys,
                        x,
                        bdf_prev.as_ref().map(|(y, hp, _)| (y.as_slice(), *hp)),
                        h,
                        &mut jac,
                        &mut lu,
                        &mut newton_rhs,
                        &mut f_new,
                        &mut ynew,
                        &mut stats,
                    );
                    if ok {
                        // Local truncation error from divided differences:
                        // y'' at the step end feeds the BE estimate
                        // (h^2 y''/2); with history, y''' feeds BDF2's
                        // (~2/9 h^3 y''').
                        sys.rhs(x, &mut f_x);
                        sys.rhs(&ynew, &mut f_new);
                        stats.rhs_evals += 2;
                        let ydd: Vec<f64> = (0..n).map(|i| (f_new[i] - f_x[i]) / h).collect();
                        let second_order = bdf_prev.is_some();
                        let mut err: f64 = 0.0;
                        for i in 0..n {
                            let scale =
                                self.config.atol + self.config.rtol * ynew[i].abs().max(x[i].abs());
                            let lte = match &bdf_prev {
                                Some((_, h_prev, ydd_prev)) => {
                                    let yddd = (ydd[i] - ydd_prev[i]) / (0.5 * (h + h_prev));
                                    (2.0 / 9.0) * h * h * h * yddd.abs()
                                }
                                None => 0.5 * h * h * ydd[i].abs(),
                            };
                            err = err.max(lte / scale);
                        }
                        if err <= 1.0 || h <= span * 1e-12 {
                            bdf_prev = Some((x.to_vec(), h, ydd));
                            t += h;
                            x.copy_from_slice(&ynew);
                            sys.project(x);
                            stats.steps += 1;
                            let grow = if err > 0.0 {
                                if second_order {
                                    0.9 * (1.0 / err).powf(1.0 / 3.0)
                                } else {
                                    0.9 / err.sqrt()
                                }
                            } else {
                                3.0
                            };
                            h *= grow.clamp(0.3, 4.0);
                        } else {
                            stats.rejected += 1;
                            h *= 0.5;
                        }
                    } else {
                        stats.rejected += 1;
                        h *= 0.25;
                        bdf_prev = None; // restart with backward Euler
                    }
                }
            }
        }
        stats
    }

    /// Method choice for a fresh interval, from the a-priori stiffness
    /// estimate (LSODA also starts non-stiff; we skip the warm-up when
    /// the estimate is overwhelming).
    fn pick_method<S: OdeSystem>(&self, sys: &S, x: &[f64], span: f64) -> Method {
        if sys.max_rate(x) * span > self.config.stiff_efoldings * 100.0 {
            Method::Stiff
        } else {
            Method::NonStiff
        }
    }

    fn initial_step<S: OdeSystem>(&self, sys: &S, x: &[f64], span: f64) -> f64 {
        let lambda = sys.max_rate(x);
        if lambda > 0.0 {
            (1.0 / lambda).min(span)
        } else {
            span
        }
    }

    /// One Cash–Karp attempt. Returns `Some(normalized_error)` when the
    /// step is acceptable (error <= 1), `None` to reject.
    #[allow(clippy::too_many_arguments)]
    fn rk_step<S: OdeSystem>(
        &self,
        sys: &S,
        x: &[f64],
        _t: f64,
        h: f64,
        k: &mut [Vec<f64>],
        ytmp: &mut [f64],
        yerr: &mut [f64],
        ynew: &mut [f64],
        stats: &mut SolverStats,
    ) -> Option<f64> {
        let n = x.len();
        let _ = (A2, A3, A4, A5, A6); // autonomous system: stage times unused
        sys.rhs(x, &mut k[0]);
        for i in 0..n {
            ytmp[i] = x[i] + h * B21 * k[0][i];
        }
        sys.rhs(ytmp, &mut k[1]);
        for i in 0..n {
            ytmp[i] = x[i] + h * (B31 * k[0][i] + B32 * k[1][i]);
        }
        sys.rhs(ytmp, &mut k[2]);
        for i in 0..n {
            ytmp[i] = x[i] + h * (B41 * k[0][i] + B42 * k[1][i] + B43 * k[2][i]);
        }
        sys.rhs(ytmp, &mut k[3]);
        for i in 0..n {
            ytmp[i] = x[i] + h * (B51 * k[0][i] + B52 * k[1][i] + B53 * k[2][i] + B54 * k[3][i]);
        }
        sys.rhs(ytmp, &mut k[4]);
        for i in 0..n {
            ytmp[i] = x[i]
                + h * (B61 * k[0][i]
                    + B62 * k[1][i]
                    + B63 * k[2][i]
                    + B64 * k[3][i]
                    + B65 * k[4][i]);
        }
        sys.rhs(ytmp, &mut k[5]);
        stats.rhs_evals += 6;

        let mut err: f64 = 0.0;
        for i in 0..n {
            ynew[i] = x[i] + h * (C1 * k[0][i] + C3 * k[2][i] + C4 * k[3][i] + C6 * k[5][i]);
            yerr[i] =
                h * (DC1 * k[0][i] + DC3 * k[2][i] + DC4 * k[3][i] + DC5 * k[4][i] + DC6 * k[5][i]);
            let scale = self.config.atol + self.config.rtol * x[i].abs().max(ynew[i].abs());
            err = err.max((yerr[i] / scale).abs());
        }
        if err <= 1.0 {
            Some(err)
        } else {
            None
        }
    }

    /// One implicit BDF step with Newton iteration. With no history the
    /// step is backward Euler (`y = x + h f(y)`); with the previous
    /// accepted state `(x_prev, h_prev)` it is variable-step BDF2:
    ///
    /// ```text
    /// y = a0 * x + a1 * x_prev + beta * h * f(y)
    /// r  = h / h_prev
    /// a0 = (1+r)^2 / (1+2r),  a1 = -r^2 / (1+2r),  beta = (1+r)/(1+2r)
    /// ```
    ///
    /// Writes the solution into `ynew`; returns `false` when Newton
    /// fails to converge.
    #[allow(clippy::too_many_arguments)]
    fn bdf_step<S: OdeSystem>(
        &self,
        sys: &S,
        x: &[f64],
        prev: Option<(&[f64], f64)>,
        h: f64,
        jac: &mut [f64],
        lu: &mut LuMatrix,
        rhs: &mut [f64],
        f_new: &mut [f64],
        ynew: &mut [f64],
        stats: &mut SolverStats,
    ) -> bool {
        let n = x.len();
        // Fixed part of the BDF formula and the f-coefficient.
        let mut fixed = vec![0.0; n];
        let beta = match prev {
            Some((x_prev, h_prev)) if h_prev > 0.0 => {
                let r = h / h_prev;
                let denom = 1.0 + 2.0 * r;
                let a0 = (1.0 + r) * (1.0 + r) / denom;
                let a1 = -(r * r) / denom;
                for i in 0..n {
                    fixed[i] = a0 * x[i] + a1 * x_prev[i];
                }
                (1.0 + r) / denom
            }
            _ => {
                fixed.copy_from_slice(x);
                1.0
            }
        };
        // Newton matrix M = I - beta h J, evaluated at the predictor.
        ynew.copy_from_slice(x);
        sys.jacobian(ynew, jac);
        stats.jac_evals += 1;
        {
            let data = lu.data_mut();
            for i in 0..n {
                for j in 0..n {
                    data[i * n + j] = -beta * h * jac[i * n + j];
                }
                data[i * n + i] += 1.0;
            }
        }
        if !lu.factorize() {
            return false;
        }
        stats.lu_factorizations += 1;

        for _iter in 0..12 {
            sys.rhs(ynew, f_new);
            stats.rhs_evals += 1;
            // Residual G = y - fixed - beta h f(y); Newton: M dy = -G.
            let mut norm: f64 = 0.0;
            for i in 0..n {
                rhs[i] = -(ynew[i] - fixed[i] - beta * h * f_new[i]);
                let scale = self.config.atol + self.config.rtol * ynew[i].abs();
                norm = norm.max((rhs[i] / scale).abs());
            }
            if norm < 0.1 {
                return true;
            }
            lu.solve(rhs);
            for i in 0..n {
                ynew[i] += rhs[i];
            }
        }
        false
    }
}

/// Project tiny negative round-off back into `[0, 1]` and renormalize —
/// ion fractions are populations, and both the physics and downstream
/// emissivity code assume a unit simplex.
fn clamp_fractions(x: &mut [f64]) {
    let mut sum = 0.0;
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::equilibrium_fractions;

    fn start_neutral(n: usize) -> Vec<f64> {
        let mut x = vec![0.0; n];
        x[0] = 1.0;
        x
    }

    #[test]
    fn conserves_total_population() {
        let sys = NeiSystem {
            z: 8,
            electron_density: 1.0,
            temperature_k: 1e7,
        };
        let mut x = start_neutral(sys.dim());
        let solver = LsodaSolver::default();
        solver.integrate(&sys, &mut x, 0.0, 1e6);
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn relaxes_to_equilibrium() {
        let sys = NeiSystem {
            z: 6,
            electron_density: 1.0,
            temperature_k: 2e6,
        };
        let mut x = start_neutral(sys.dim());
        let solver = LsodaSolver::default();
        // Long enough for many e-foldings of every mode.
        let stats = solver.integrate(&sys, &mut x, 0.0, 1e13);
        assert!(!stats.truncated);
        let eq = equilibrium_fractions(&sys);
        for i in 0..sys.dim() {
            assert!(
                (x[i] - eq[i]).abs() < 1e-3,
                "stage {i}: {} vs equilibrium {}",
                x[i],
                eq[i]
            );
        }
    }

    #[test]
    fn stiff_interval_uses_implicit_method() {
        // Dense, hot plasma over a long span: hugely stiff.
        let sys = NeiSystem {
            z: 8,
            electron_density: 1e10,
            temperature_k: 1e7,
        };
        assert!(sys.stiffness_estimate(1e6) > 1e8);
        let mut x = start_neutral(sys.dim());
        let solver = LsodaSolver::default();
        let stats = solver.integrate(&sys, &mut x, 0.0, 1e6);
        // The implicit path must have been used: LU factorizations happen
        // only there — and the step count must be sane (an explicit
        // method at its stability limit would need ~4e9 steps; the
        // first-order implicit method with error control needs ~4e4).
        assert!(stats.lu_factorizations > 0, "{stats:?}");
        assert!(stats.steps < 100_000, "{stats:?}");
        assert!(!stats.truncated);
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nonstiff_interval_uses_explicit_method() {
        let sys = NeiSystem {
            z: 2,
            electron_density: 1e-4,
            temperature_k: 1e5,
        };
        let mut x = start_neutral(sys.dim());
        let solver = LsodaSolver::default();
        let stats = solver.integrate(&sys, &mut x, 0.0, 1.0);
        assert_eq!(stats.lu_factorizations, 0, "{stats:?}");
        assert!(stats.rhs_evals > 0);
    }

    #[test]
    fn stiff_and_nonstiff_agree_where_both_work() {
        // Moderate stiffness: force each method and compare endpoints.
        let sys = NeiSystem {
            z: 4,
            electron_density: 100.0,
            temperature_k: 3e6,
        };
        let span = 1e4;
        let solver = LsodaSolver::new(1e-9, 1e-13);

        let mut x_auto = start_neutral(sys.dim());
        solver.integrate(&sys, &mut x_auto, 0.0, span);

        // Explicit-only reference: tiny fixed steps of RK (use the solver
        // with a huge stiffness threshold so it never switches).
        let mut explicit_solver = LsodaSolver::new(1e-9, 1e-13);
        explicit_solver.config.stiff_efoldings = f64::MAX;
        let mut x_exp = start_neutral(sys.dim());
        let stats = explicit_solver.integrate(&sys, &mut x_exp, 0.0, span);
        assert!(!stats.truncated);

        for i in 0..sys.dim() {
            assert!(
                (x_auto[i] - x_exp[i]).abs() < 1e-4,
                "stage {i}: {} vs {}",
                x_auto[i],
                x_exp[i]
            );
        }
    }

    #[test]
    fn zero_span_is_a_noop() {
        let sys = NeiSystem {
            z: 8,
            electron_density: 1.0,
            temperature_k: 1e7,
        };
        let mut x = start_neutral(sys.dim());
        let before = x.clone();
        let stats = LsodaSolver::default().integrate(&sys, &mut x, 5.0, 5.0);
        assert_eq!(x, before);
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn bdf2_needs_far_fewer_steps_than_first_order_alone() {
        // The stiff test problem at a fairly tight tolerance: with BDF2
        // history the step count must stay modest. (Before the BDF2
        // upgrade this took ~40k backward-Euler steps.)
        let sys = NeiSystem {
            z: 8,
            electron_density: 1e10,
            temperature_k: 1e7,
        };
        let mut x = vec![0.0; sys.dim()];
        x[0] = 1.0;
        let stats = LsodaSolver::new(1e-8, 1e-12).integrate(&sys, &mut x, 0.0, 1e6);
        assert!(!stats.truncated, "{stats:?}");
        assert!(stats.steps < 20_000, "{stats:?}");
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_count_work() {
        let sys = NeiSystem {
            z: 8,
            electron_density: 1.0,
            temperature_k: 1e7,
        };
        let mut x = start_neutral(sys.dim());
        let stats = LsodaSolver::default().integrate(&sys, &mut x, 0.0, 1e8);
        assert!(stats.steps > 0);
        assert!(stats.rhs_evals >= 6 * stats.steps);
    }
}
