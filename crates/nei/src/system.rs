//! The NEI rate equations (paper Eq. 4).

use atomdb::{ionization_rate, recombination_rate, IonStage};

/// The ionization-balance ODE system of one element in a plasma with a
/// (possibly time-dependent) temperature and electron density history.
///
/// The state vector holds the ion *fractions* `x_0..=x_Z` (they sum to
/// one; the absolute densities factor out of Eq. 4). Rate coefficients
/// are evaluated on demand at the current temperature — the paper notes
/// they "need to be computed on real time", and that evaluation cost is
/// part of what the GPU offload buys back.
#[derive(Debug, Clone, Copy)]
pub struct NeiSystem {
    /// Atomic number of the element.
    pub z: u8,
    /// Electron number density `Ne` in cm^-3.
    pub electron_density: f64,
    /// Plasma temperature in kelvin (constant over a solve interval;
    /// drivers re-set it per timestep for time-dependent histories).
    pub temperature_k: f64,
}

impl NeiSystem {
    /// Dimension of the state vector (`Z + 1` ionization stages).
    #[must_use]
    pub fn dim(&self) -> usize {
        usize::from(self.z) + 1
    }

    /// Ionization rate out of stage `i` at the current temperature.
    #[must_use]
    pub fn s(&self, i: usize) -> f64 {
        IonStage::new(self.z, i as u8).map_or(0.0, |st| ionization_rate(st, self.temperature_k))
    }

    /// Recombination rate out of stage `i` (to `i - 1`).
    #[must_use]
    pub fn alpha(&self, i: usize) -> f64 {
        IonStage::new(self.z, i as u8).map_or(0.0, |st| recombination_rate(st, self.temperature_k))
    }

    /// Evaluate the right-hand side `dx/dt` into `out`.
    ///
    /// # Panics
    /// Panics if slice lengths differ from [`NeiSystem::dim`].
    pub fn rhs(&self, x: &[f64], out: &mut [f64]) {
        let n = self.dim();
        assert_eq!(x.len(), n, "state dimension");
        assert_eq!(out.len(), n, "output dimension");
        let ne = self.electron_density;
        for i in 0..n {
            let gain_from_below = if i > 0 { x[i - 1] * self.s(i - 1) } else { 0.0 };
            let gain_from_above = if i + 1 < n {
                x[i + 1] * self.alpha(i + 1)
            } else {
                0.0
            };
            let loss = x[i] * (self.s(i) + self.alpha(i));
            out[i] = ne * (gain_from_below + gain_from_above - loss);
        }
    }

    /// Dense Jacobian `J[i][j] = d(dx_i/dt)/dx_j` (tridiagonal) written
    /// row-major into `jac` (`dim*dim` entries).
    ///
    /// # Panics
    /// Panics if `jac.len() != dim * dim` or `x.len() != dim`.
    pub fn jacobian(&self, x: &[f64], jac: &mut [f64]) {
        let n = self.dim();
        assert_eq!(x.len(), n, "state dimension");
        assert_eq!(jac.len(), n * n, "jacobian dimension");
        let ne = self.electron_density;
        jac.fill(0.0);
        for i in 0..n {
            if i > 0 {
                jac[i * n + (i - 1)] = ne * self.s(i - 1);
            }
            jac[i * n + i] = -ne * (self.s(i) + self.alpha(i));
            if i + 1 < n {
                jac[i * n + (i + 1)] = ne * self.alpha(i + 1);
            }
        }
    }

    /// Stiffness ratio estimate: `max|J_ii| * interval` — large values
    /// mean the fastest relaxation is much quicker than the solve span,
    /// i.e. the system is stiff on that span.
    #[must_use]
    pub fn stiffness_estimate(&self, interval_s: f64) -> f64 {
        let n = self.dim();
        let mut max_rate: f64 = 0.0;
        for i in 0..n {
            max_rate = max_rate.max(self.electron_density * (self.s(i) + self.alpha(i)));
        }
        max_rate * interval_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oxygen() -> NeiSystem {
        NeiSystem {
            z: 8,
            electron_density: 1.0,
            temperature_k: 1e7,
        }
    }

    #[test]
    fn rhs_conserves_total_population() {
        let sys = oxygen();
        let n = sys.dim();
        let x: Vec<f64> = (0..n).map(|i| (i + 1) as f64 / 45.0).collect();
        let mut dx = vec![0.0; n];
        sys.rhs(&x, &mut dx);
        let sum: f64 = dx.iter().sum();
        assert!(sum.abs() < 1e-18, "sum of dx/dt = {sum}");
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let sys = oxygen();
        let n = sys.dim();
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 2) as f64).collect();
        let mut jac = vec![0.0; n * n];
        sys.jacobian(&x, &mut jac);
        let eps = 1e-3; // RHS is linear in x: larger eps only reduces cancellation
        let mut base = vec![0.0; n];
        sys.rhs(&x, &mut base);
        for j in 0..n {
            let mut xp = x.clone();
            xp[j] += eps;
            let mut fp = vec![0.0; n];
            sys.rhs(&xp, &mut fp);
            for i in 0..n {
                let fd = (fp[i] - base[i]) / eps;
                let an = jac[i * n + j];
                let scale = an.abs().max(fd.abs()).max(1e-12);
                assert!(
                    (fd - an).abs() / scale < 1e-6,
                    "J[{i}][{j}]: fd {fd} vs {an}"
                );
            }
        }
    }

    #[test]
    fn jacobian_is_tridiagonal() {
        let sys = oxygen();
        let n = sys.dim();
        let x = vec![1.0 / n as f64; n];
        let mut jac = vec![0.0; n * n];
        sys.jacobian(&x, &mut jac);
        for i in 0..n {
            for j in 0..n {
                if i.abs_diff(j) > 1 {
                    assert_eq!(jac[i * n + j], 0.0, "J[{i}][{j}] off tridiagonal");
                }
            }
        }
    }

    #[test]
    fn hot_plasma_drives_ionization() {
        // Starting neutral at high temperature, the neutral fraction must
        // decrease.
        let sys = NeiSystem {
            temperature_k: 1e8,
            ..oxygen()
        };
        let mut x = vec![0.0; sys.dim()];
        x[0] = 1.0;
        let mut dx = vec![0.0; sys.dim()];
        sys.rhs(&x, &mut dx);
        assert!(dx[0] < 0.0);
        assert!(dx[1] > 0.0);
    }

    #[test]
    fn cold_plasma_drives_recombination() {
        let sys = NeiSystem {
            temperature_k: 1e4,
            ..oxygen()
        };
        let mut x = vec![0.0; sys.dim()];
        let last = sys.dim() - 1;
        x[last] = 1.0;
        let mut dx = vec![0.0; sys.dim()];
        sys.rhs(&x, &mut dx);
        assert!(dx[last] < 0.0);
        assert!(dx[last - 1] > 0.0);
    }

    #[test]
    fn stiffness_scales_with_density_and_span() {
        let sys = oxygen();
        let dense = NeiSystem {
            electron_density: 1e6,
            ..sys
        };
        assert!(dense.stiffness_estimate(1.0) > sys.stiffness_estimate(1.0));
        assert!(sys.stiffness_estimate(100.0) > sys.stiffness_estimate(1.0));
    }
}
