//! Dense LU factorization with partial pivoting.
//!
//! The BDF Newton iteration solves `(I - h*beta*J) dx = r` with `J` at
//! most 32×32 (one row per ionization stage of one element), so a plain
//! dense LU is both simpler and faster than anything clever at this
//! size.

/// A dense square matrix in row-major storage with LU-with-partial-
/// pivoting factorization.
#[derive(Debug, Clone)]
pub struct LuMatrix {
    n: usize,
    /// Row-major entries; after [`LuMatrix::factorize`] holds L\U.
    data: Vec<f64>,
    pivots: Vec<usize>,
    factored: bool,
}

impl LuMatrix {
    /// An `n × n` zero matrix.
    #[must_use]
    pub fn zeros(n: usize) -> LuMatrix {
        LuMatrix {
            n,
            data: vec![0.0; n * n],
            pivots: vec![0; n],
            factored: false,
        }
    }

    /// Build from row-major entries.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    #[must_use]
    pub fn from_rows(n: usize, data: Vec<f64>) -> LuMatrix {
        assert_eq!(data.len(), n * n, "row-major n*n entries");
        LuMatrix {
            n,
            data,
            pivots: vec![0; n],
            factored: false,
        }
    }

    /// Dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Mutable access to entry `(i, j)`; invalidates any factorization.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.factored = false;
        self.data[i * self.n + j] = v;
    }

    /// Entry `(i, j)` (of the factored form after `factorize`).
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Raw mutable row-major storage; invalidates any factorization.
    pub fn data_mut(&mut self) -> &mut [f64] {
        self.factored = false;
        &mut self.data
    }

    /// Factorize in place. Returns `false` if the matrix is singular to
    /// working precision (zero pivot).
    pub fn factorize(&mut self) -> bool {
        let n = self.n;
        for col in 0..n {
            // Partial pivot: largest magnitude in the column at/below
            // the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = self.data[col * n + col].abs();
            for row in col + 1..n {
                let v = self.data[row * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < f64::MIN_POSITIVE * 16.0 {
                self.factored = false;
                return false;
            }
            self.pivots[col] = pivot_row;
            if pivot_row != col {
                for j in 0..n {
                    self.data.swap(col * n + j, pivot_row * n + j);
                }
            }
            let pivot = self.data[col * n + col];
            for row in col + 1..n {
                let factor = self.data[row * n + col] / pivot;
                self.data[row * n + col] = factor;
                for j in col + 1..n {
                    self.data[row * n + j] -= factor * self.data[col * n + j];
                }
            }
        }
        self.factored = true;
        true
    }

    /// Solve `A x = b` in place in `b` using the factorization.
    ///
    /// # Panics
    /// Panics if the matrix has not been successfully factorized or
    /// `b.len() != n`.
    #[allow(clippy::needless_range_loop)] // triangular loops index two arrays
    pub fn solve(&self, b: &mut [f64]) {
        assert!(self.factored, "factorize before solve");
        assert_eq!(b.len(), self.n, "rhs dimension");
        let n = self.n;
        // Apply row permutation.
        for col in 0..n {
            let p = self.pivots[col];
            if p != col {
                b.swap(col, p);
            }
        }
        // Forward substitution (unit lower triangle).
        for i in 1..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.data[i * n + j] * b[j];
            }
            b[i] = sum;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = b[i];
            for j in i + 1..n {
                sum -= self.data[i * n + j] * b[j];
            }
            b[i] = sum / self.data[i * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn multiply(n: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
        (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum())
            .collect()
    }

    #[test]
    fn solves_identity() {
        let mut m = LuMatrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        assert!(m.factorize());
        let mut b = vec![3.0, -1.0, 2.0];
        m.solve(&mut b);
        assert_eq!(b, vec![3.0, -1.0, 2.0]);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let mut m = LuMatrix::from_rows(2, vec![2.0, 1.0, 1.0, 3.0]);
        assert!(m.factorize());
        let mut b = vec![3.0, 5.0];
        m.solve(&mut b);
        assert!((b[0] - 0.8).abs() < 1e-12);
        assert!((b[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero forces a row swap.
        let mut m = LuMatrix::from_rows(2, vec![0.0, 1.0, 1.0, 0.0]);
        assert!(m.factorize());
        let mut b = vec![5.0, 7.0];
        m.solve(&mut b);
        assert!((b[0] - 7.0).abs() < 1e-12);
        assert!((b[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let mut m = LuMatrix::from_rows(2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(!m.factorize());
    }

    #[test]
    fn random_systems_roundtrip() {
        let mut rng = desim::rng(11);
        for n in [1usize, 2, 5, 12, 31] {
            let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let mut b = multiply(n, &a, &x_true);
            let mut m = LuMatrix::from_rows(n, a);
            if !m.factorize() {
                continue; // singular draw: skip
            }
            m.solve(&mut b);
            for i in 0..n {
                assert!(
                    (b[i] - x_true[i]).abs() < 1e-8,
                    "n={n} i={i}: {} vs {}",
                    b[i],
                    x_true[i]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "factorize before solve")]
    fn solve_requires_factorization() {
        let m = LuMatrix::zeros(2);
        let mut b = vec![1.0, 2.0];
        m.solve(&mut b);
    }
}
