//! Collisional ionization equilibrium — the steady state of Eq. 4.
//!
//! The NEI system is a birth–death chain (stage `i` exchanges population
//! only with `i ± 1`), so its steady state satisfies detailed balance:
//!
//! ```text
//! x_{i+1} / x_i = S_i / alpha_{i+1}
//! ```
//!
//! which gives a closed form by running the recurrence and normalizing.
//! Used as the solver's test oracle and as physically sensible initial
//! conditions.

use crate::system::NeiSystem;

/// The equilibrium ion fractions of `sys` (length `dim`, sums to 1).
///
/// Computed in log space so extreme rate ratios (many hundreds of
/// orders of magnitude across a 30-stage chain) cannot overflow.
#[must_use]
pub fn equilibrium_fractions(sys: &NeiSystem) -> Vec<f64> {
    let n = sys.dim();
    // log_weights[i] = log(x_i / x_0)
    let mut log_weights = vec![0.0f64; n];
    for i in 0..n - 1 {
        let s = sys.s(i);
        let a = sys.alpha(i + 1);
        let ratio = if s <= 0.0 {
            f64::NEG_INFINITY // chain truncates: stages above are empty
        } else if a <= 0.0 {
            f64::INFINITY
        } else {
            (s / a).ln()
        };
        log_weights[i + 1] = log_weights[i] + ratio;
    }
    // Normalize via the max trick.
    let max = log_weights
        .iter()
        .cloned()
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    let mut out: Vec<f64> = log_weights
        .iter()
        .map(|&lw| {
            if lw.is_finite() {
                (lw - max).exp()
            } else if lw == f64::INFINITY {
                1.0 // dominated stage handled by normalization below
            } else {
                0.0
            }
        })
        .collect();
    let sum: f64 = out.iter().sum();
    if sum > 0.0 {
        for v in &mut out {
            *v /= sum;
        }
    } else {
        out[0] = 1.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_form_a_distribution() {
        for t in [1e5, 1e6, 1e7, 1e8] {
            let sys = NeiSystem {
                z: 8,
                electron_density: 1.0,
                temperature_k: t,
            };
            let eq = equilibrium_fractions(&sys);
            assert_eq!(eq.len(), 9);
            let sum: f64 = eq.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "T={t}: sum {sum}");
            assert!(eq.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn equilibrium_is_a_fixed_point_of_the_rhs() {
        let sys = NeiSystem {
            z: 6,
            electron_density: 1.0,
            temperature_k: 3e6,
        };
        let eq = equilibrium_fractions(&sys);
        let mut dx = vec![0.0; sys.dim()];
        sys.rhs(&eq, &mut dx);
        // Residual should vanish relative to the fastest rate present.
        let scale = sys.stiffness_estimate(1.0).max(1e-300);
        for (i, &d) in dx.iter().enumerate() {
            assert!(d.abs() / scale < 1e-10, "stage {i}: residual {d}");
        }
    }

    #[test]
    fn hot_equilibrium_is_highly_ionized() {
        let sys = NeiSystem {
            z: 8,
            electron_density: 1.0,
            temperature_k: 1e9,
        };
        let eq = equilibrium_fractions(&sys);
        // Population should concentrate in the top stages.
        let top: f64 = eq[7..].iter().sum();
        assert!(top > 0.9, "top fraction {top}");
    }

    #[test]
    fn cold_equilibrium_is_neutral() {
        let sys = NeiSystem {
            z: 8,
            electron_density: 1.0,
            temperature_k: 1e4,
        };
        let eq = equilibrium_fractions(&sys);
        assert!(eq[0] > 0.9, "neutral fraction {}", eq[0]);
    }

    #[test]
    fn equilibrium_is_density_independent() {
        // Both S and alpha scale with Ne in Eq. 4, so the balance point
        // does not move with density.
        let a = equilibrium_fractions(&NeiSystem {
            z: 10,
            electron_density: 1.0,
            temperature_k: 5e6,
        });
        let b = equilibrium_fractions(&NeiSystem {
            z: 10,
            electron_density: 1e8,
            temperature_k: 5e6,
        });
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-14);
        }
    }
}
