//! The alpha-chain nucleosynthesis network — the "nucleosynthesis
//! reactive network" the paper's §V names as the next application for
//! the hybrid framework.
//!
//! Thirteen isotopes from ⁴He to ⁵⁶Ni connected by successive
//! alpha-captures, seeded by the triple-alpha reaction:
//!
//! ```text
//! 3 He4          -> C12               (rate ~ rho^2 Y_He^3)
//! X_i + He4      -> X_{i+1}           (rate ~ rho   Y_He Y_i)
//! ```
//!
//! Reaction rates use synthetic Arrhenius-in-`T9^{-1/3}` forms with
//! Coulomb barriers growing along the chain (the Gamow-peak scaling of
//! real rates; see `DESIGN.md` on synthetic substitutions). State is
//! molar abundance `Y_i = X_i / A_i`; the invariant is mass
//! conservation `sum A_i Y_i = 1`.

use crate::solver::OdeSystem;

/// Mass numbers of the chain: He4, C12, O16, ..., Ni56.
pub const A: [f64; 13] = [
    4.0, 12.0, 16.0, 20.0, 24.0, 28.0, 32.0, 36.0, 40.0, 44.0, 48.0, 52.0, 56.0,
];

/// Isotope labels, index-aligned with [`A`].
pub const LABELS: [&str; 13] = [
    "He4", "C12", "O16", "Ne20", "Mg24", "Si28", "S32", "Ar36", "Ca40", "Ti44", "Cr48", "Fe52",
    "Ni56",
];

/// The alpha network at fixed thermodynamic conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaChain {
    /// Temperature in units of 1e9 K (`T9`).
    pub t9: f64,
    /// Mass density in g/cm^3.
    pub rho: f64,
}

impl AlphaChain {
    /// Number of species.
    pub const N: usize = 13;

    /// Triple-alpha rate factor (per `Y_He^3`), 1/s.
    #[must_use]
    pub fn rate_3a(&self) -> f64 {
        if self.t9 <= 0.0 {
            return 0.0;
        }
        let rho6 = self.rho / 1e6;
        // Synthetic: steep T dependence around the helium-flash regime.
        1.0e2 * rho6 * rho6 * (-4.4 / self.t9).exp() / self.t9.powi(3)
    }

    /// Alpha-capture rate factor onto chain member `i` (0 = capture on
    /// C12 making O16), per `Y_He * Y_i`, 1/s. The Coulomb barrier grows
    /// with the target charge `Z = 6 + 2 i`.
    #[must_use]
    pub fn rate_capture(&self, i: usize) -> f64 {
        if self.t9 <= 0.0 || i + 2 >= Self::N {
            return 0.0;
        }
        let rho6 = self.rho / 1e6;
        let z_target = 6.0 + 2.0 * i as f64;
        // Gamow scaling: exp(-b Z / T9^(1/3)).
        let barrier = 0.9 * z_target / self.t9.cbrt();
        1.0e7 * rho6 * (-barrier).exp()
    }

    /// Pure-helium initial composition (`Y_He = 1/4`).
    #[must_use]
    pub fn pure_helium() -> Vec<f64> {
        let mut y = vec![0.0; Self::N];
        y[0] = 1.0 / A[0];
        y
    }

    /// Total mass fraction `sum A_i Y_i` (conserved, = 1).
    #[must_use]
    pub fn total_mass(y: &[f64]) -> f64 {
        y.iter().zip(A.iter()).map(|(y, a)| y * a).sum()
    }
}

impl OdeSystem for AlphaChain {
    fn dim(&self) -> usize {
        Self::N
    }

    fn rhs(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), Self::N);
        assert_eq!(out.len(), Self::N);
        out.fill(0.0);
        let he = y[0].max(0.0);
        // Triple-alpha: 3 He4 -> C12.
        let r3a = self.rate_3a() * he * he * he / 6.0;
        out[0] -= 3.0 * r3a;
        out[1] += r3a;
        // Captures: X_{i+1} + He4 -> X_{i+2} for chain slots 1..N-1.
        for (i, &yi) in y.iter().enumerate().take(Self::N - 1).skip(1) {
            let r = self.rate_capture(i - 1) * he * yi.max(0.0);
            out[0] -= r;
            out[i] -= r;
            out[i + 1] += r;
        }
    }

    fn jacobian(&self, y: &[f64], jac: &mut [f64]) {
        let n = Self::N;
        assert_eq!(y.len(), n);
        assert_eq!(jac.len(), n * n);
        jac.fill(0.0);
        let he = y[0].max(0.0);
        let r3a_dhe = self.rate_3a() * he * he / 2.0; // d(r3a)/dY_He
        jac[0] -= 3.0 * r3a_dhe;
        jac[n] += r3a_dhe; // row 1 (C12), column 0
        for i in 1..n - 1 {
            let k = self.rate_capture(i - 1);
            let yi = y[i].max(0.0);
            // d r / d he = k yi ; d r / d yi = k he
            let dr_dhe = k * yi;
            let dr_dyi = k * he;
            jac[0] -= dr_dhe;
            jac[i] -= dr_dyi;
            jac[i * n] -= dr_dhe;
            jac[i * n + i] -= dr_dyi;
            jac[(i + 1) * n] += dr_dhe;
            jac[(i + 1) * n + i] += dr_dyi;
        }
    }

    fn max_rate(&self, y: &[f64]) -> f64 {
        let he = y[0].max(0.0);
        let mut max = self.rate_3a() * he * he * 3.0 / 6.0;
        for (i, &yi) in y.iter().enumerate().take(Self::N - 1).skip(1) {
            let k = self.rate_capture(i - 1);
            max = max.max(k * he).max(k * yi.max(0.0));
        }
        max
    }

    fn project(&self, y: &mut [f64]) {
        // Clamp round-off negatives, then restore total mass exactly.
        for v in y.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let mass = AlphaChain::total_mass(y);
        if mass > 0.0 {
            for v in y.iter_mut() {
                *v /= mass;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::LsodaSolver;

    #[test]
    fn rhs_conserves_mass() {
        let net = AlphaChain { t9: 2.0, rho: 1e6 };
        let mut y = AlphaChain::pure_helium();
        y[1] = 0.01; // some carbon
        y[0] -= 0.03; // keep mass = 1
        let mut dy = vec![0.0; AlphaChain::N];
        net.rhs(&y, &mut dy);
        let dm: f64 = dy.iter().zip(A.iter()).map(|(d, a)| d * a).sum();
        assert!(dm.abs() < 1e-12 * net.max_rate(&y).max(1.0), "dm/dt = {dm}");
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let net = AlphaChain { t9: 1.5, rho: 1e5 };
        let n = AlphaChain::N;
        // Strictly positive state: the RHS clamps negatives to zero, and
        // a central difference straddling that kink would halve.
        let mut y = vec![1e-3; n];
        y[0] = 0.2;
        y[1] = 0.005;
        y[2] = 0.002;
        let mut jac = vec![0.0; n * n];
        net.jacobian(&y, &mut jac);
        // Central differences with a generous step: the RHS is at most
        // cubic and spans ~14 orders of magnitude across terms, so a
        // small step drowns in the big terms' ulp quantization.
        let eps = 1e-4;
        for j in 0..n {
            let mut yp = y.clone();
            let mut ym = y.clone();
            yp[j] += eps;
            ym[j] -= eps;
            let mut fp = vec![0.0; n];
            let mut fm = vec![0.0; n];
            net.rhs(&yp, &mut fp);
            net.rhs(&ym, &mut fm);
            for i in 0..n {
                let fd = (fp[i] - fm[i]) / (2.0 * eps);
                let an = jac[i * n + j];
                let scale = an.abs().max(fd.abs()).max(1e-6);
                assert!(
                    (fd - an).abs() / scale < 1e-3,
                    "J[{i}][{j}]: fd {fd} vs {an}"
                );
            }
        }
    }

    #[test]
    fn cold_helium_does_not_burn() {
        let net = AlphaChain { t9: 0.05, rho: 1e4 };
        let mut y = AlphaChain::pure_helium();
        let stats = LsodaSolver::default().integrate(&net, &mut y, 0.0, 1e6);
        assert!(!stats.truncated);
        assert!(y[0] > 0.2499, "helium burned at 5e7 K: Y_He = {}", y[0]);
    }

    #[test]
    fn hot_dense_helium_burns_toward_the_iron_group() {
        // Explosive conditions: the chain should run well past carbon.
        let net = AlphaChain { t9: 5.0, rho: 1e7 };
        let mut y = AlphaChain::pure_helium();
        let stats = LsodaSolver::new(1e-6, 1e-12).integrate(&net, &mut y, 0.0, 1.0);
        assert!(!stats.truncated, "{stats:?}");
        let mass = AlphaChain::total_mass(&y);
        assert!((mass - 1.0).abs() < 1e-6, "mass {mass}");
        // Heavy half of the chain (Ca and beyond) holds real mass.
        let heavy: f64 = y[8..].iter().zip(&A[8..]).map(|(y, a)| y * a).sum();
        assert!(heavy > 0.1, "heavy mass fraction {heavy}");
        assert!(y[0] < 0.20, "Y_He = {}", y[0]);
    }

    #[test]
    fn burning_stalls_mid_chain_at_moderate_temperature() {
        // At T9 = 0.6 the Coulomb barrier freezes the chain before the
        // iron group: mass piles up in the intermediate isotopes while
        // Ni56 stays marginal.
        let net = AlphaChain { t9: 0.6, rho: 1e6 };
        let mut y = AlphaChain::pure_helium();
        let stats = LsodaSolver::default().integrate(&net, &mut y, 0.0, 1e4);
        assert!(!stats.truncated, "{stats:?}");
        let intermediate: f64 = y[1..11].iter().zip(&A[1..11]).map(|(y, a)| y * a).sum();
        let ni = y[12] * A[12];
        assert!(
            intermediate > 0.01,
            "no intermediate products: {intermediate}"
        );
        assert!(
            ni < intermediate / 2.0,
            "nickel {ni} vs intermediate {intermediate}"
        );
    }

    #[test]
    fn mass_stays_on_the_manifold_under_projection() {
        let net = AlphaChain { t9: 3.0, rho: 1e6 };
        let mut y = AlphaChain::pure_helium();
        LsodaSolver::default().integrate(&net, &mut y, 0.0, 10.0);
        assert!((AlphaChain::total_mass(&y) - 1.0).abs() < 1e-9);
        assert!(y.iter().all(|&v| v >= 0.0));
    }
}
