//! Long-horizon and cross-API consistency tests for the NEI substrate.

use nei::{equilibrium_fractions, LsodaSolver, NeiSystem, NeiTask, NeiWorkload, PlasmaHistory};

#[test]
fn all_twelve_elements_relax_to_their_equilibria() {
    let solver = LsodaSolver::default();
    for &z in &nei::task::NEI_ELEMENTS {
        let sys = NeiSystem {
            z,
            electron_density: 1.0,
            temperature_k: 3e6,
        };
        let mut x = vec![0.0; sys.dim()];
        x[0] = 1.0;
        let stats = solver.integrate(&sys, &mut x, 0.0, 1e14);
        assert!(!stats.truncated, "Z={z} truncated: {stats:?}");
        let eq = equilibrium_fractions(&sys);
        for (i, (a, b)) in x.iter().zip(&eq).enumerate() {
            assert!(
                (a - b).abs() < 5e-3,
                "Z={z} stage {i}: {a} vs equilibrium {b}"
            );
        }
    }
}

#[test]
fn task_packing_is_equivalent_to_one_long_solve() {
    // 10 packed timesteps must land on the same state as a single solve
    // over the same span (the solver is restartable).
    let workload = NeiWorkload {
        points: 1,
        timesteps: 50,
        steps_per_task: 10,
        dt_s: 1e5,
    };
    let solver = LsodaSolver::new(1e-9, 1e-13);

    let mut packed = NeiTask::neutral_state();
    for k in 0..workload.tasks_per_point() {
        let task = workload.task(0, k, 8e6, 1.0);
        task.execute(&solver, &mut packed);
    }

    let mut single = NeiTask::neutral_state();
    let span = workload.timesteps as f64 * workload.dt_s;
    for (z, x) in nei::task::NEI_ELEMENTS.iter().zip(single.iter_mut()) {
        let sys = NeiSystem {
            z: *z,
            electron_density: 1.0,
            temperature_k: 8e6,
        };
        solver.integrate(&sys, x, 0.0, span);
    }

    for (z, (a, b)) in nei::task::NEI_ELEMENTS
        .iter()
        .zip(packed.iter().zip(&single))
    {
        for (i, (xa, xb)) in a.iter().zip(b).enumerate() {
            assert!(
                (xa - xb).abs() < 1e-5,
                "Z={z} stage {i}: packed {xa} vs single {xb}"
            );
        }
    }
}

#[test]
fn history_with_cooling_recombines() {
    // Heat, then cool: the final state must be more recombined than the
    // hot equilibrium.
    let solver = LsodaSolver::default();
    let history = PlasmaHistory::new(vec![
        nei::PlasmaSample {
            time_s: 0.0,
            temperature_k: 2e7,
            electron_density: 1.0,
        },
        nei::PlasmaSample {
            time_s: 1e12,
            temperature_k: 2e7,
            electron_density: 1.0,
        },
        nei::PlasmaSample {
            time_s: 1.01e12,
            temperature_k: 1e5,
            electron_density: 100.0,
        },
    ]);
    let mut x = vec![0.0; 9];
    x[0] = 1.0;
    // Through heating and deep into the cold phase.
    history.integrate(&solver, 8, &mut x, 0.0, 1e14, 4);
    let hot_eq = equilibrium_fractions(&NeiSystem {
        z: 8,
        electron_density: 1.0,
        temperature_k: 2e7,
    });
    let mean = |v: &[f64]| -> f64 { v.iter().enumerate().map(|(q, f)| q as f64 * f).sum() };
    assert!(
        mean(&x) < mean(&hot_eq),
        "cooled plasma should be less ionized: {} vs {}",
        mean(&x),
        mean(&hot_eq)
    );
}

#[test]
fn tightening_tolerances_converges_to_the_reference() {
    let sys = NeiSystem {
        z: 6,
        electron_density: 1.0,
        temperature_k: 2e6,
    };
    let solve = |rtol: f64, atol: f64| {
        let mut x = vec![0.0; sys.dim()];
        x[0] = 1.0;
        let stats = LsodaSolver::new(rtol, atol).integrate(&sys, &mut x, 0.0, 1e10);
        // A tolerance the step budget cannot honor would silently stop
        // early; the comparison is only meaningful on completed solves.
        assert!(!stats.truncated, "rtol={rtol} truncated: {stats:?}");
        x
    };
    let reference = solve(1e-9, 1e-13);
    let medium = solve(1e-6, 1e-10);
    let loose = solve(1e-3, 1e-7);
    let err = |x: &[f64]| -> f64 {
        x.iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    };
    // Global error shrinks as tolerances tighten (a first-order method
    // accumulates error at loose tolerance; the ordering is the
    // contract).
    assert!(
        err(&medium) < err(&loose),
        "medium {} vs loose {}",
        err(&medium),
        err(&loose)
    );
    assert!(err(&medium) < 1e-4, "medium error {}", err(&medium));
}
