//! Communication-pattern stress tests for the message-passing runtime.

use mpi_sim::{run, ANY_SOURCE};

#[test]
fn ring_pipeline_passes_a_token_around() {
    let n = 8;
    let results = run(n, |ctx| {
        let next = (ctx.rank() + 1) % ctx.size();
        let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
        if ctx.rank() == 0 {
            ctx.send(next, 1, 1u64);
            let (_, token) = ctx.recv::<u64>(prev, 1);
            token
        } else {
            let (_, token) = ctx.recv::<u64>(prev, 1);
            ctx.send(next, 1, token + 1);
            token
        }
    });
    // The token accumulates one increment per hop; rank 0 sees n.
    assert_eq!(results[0], 8);
}

#[test]
fn all_to_all_message_storm() {
    let n = 6;
    let results = run(n, |ctx| {
        for to in 0..ctx.size() {
            if to != ctx.rank() {
                ctx.send(to, 9, ctx.rank() * 100);
            }
        }
        let mut sum = 0usize;
        for _ in 0..ctx.size() - 1 {
            let (_, v) = ctx.recv::<usize>(ANY_SOURCE, 9);
            sum += v;
        }
        sum
    });
    // Each rank receives every other rank's id * 100.
    let total: usize = (0..n).sum::<usize>() * 100;
    for (rank, &sum) in results.iter().enumerate() {
        assert_eq!(sum, total - rank * 100);
    }
}

#[test]
fn scatter_gather_roundtrip_preserves_data() {
    let n = 5;
    let results = run(n, |ctx| {
        let item = if ctx.rank() == 0 {
            ctx.scatter(0, Some((0..5).map(|i| i * i).collect::<Vec<usize>>()))
        } else {
            ctx.scatter::<usize>(0, None)
        };
        ctx.gather(0, item * 10)
    });
    assert_eq!(results[0], Some(vec![0, 10, 40, 90, 160]));
}

#[test]
fn repeated_barriers_do_not_deadlock() {
    let results = run(16, |ctx| {
        let mut acc = 0u64;
        for round in 0..50u64 {
            ctx.barrier();
            acc += round;
        }
        acc
    });
    assert!(results.iter().all(|&v| v == (0..50).sum::<u64>()));
}

#[test]
fn reduce_handles_non_commutative_carefully() {
    // all_reduce with string concatenation in rank order is
    // deterministic because gather collects in rank order.
    let results = run(4, |ctx| {
        ctx.all_reduce(ctx.rank().to_string(), |a, b| format!("{a}{b}"))
    });
    assert!(results.iter().all(|v| v == "0123"));
}

#[test]
fn shared_region_synchronizes_with_messages() {
    use mpi_sim::SharedRegion;
    let region = SharedRegion::new(1);
    let r2 = region.clone();
    let results = run(2, move |ctx| {
        if ctx.rank() == 0 {
            r2.store(0, 77);
            ctx.send(1, 1, ());
            0
        } else {
            let _ = ctx.recv::<()>(0, 1);
            r2.load(0)
        }
    });
    assert_eq!(results[1], 77);
}
