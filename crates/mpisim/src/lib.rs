//! Thread-backed message-passing runtime.
//!
//! The paper wraps APEC in MPI and runs 24 ranks on one node; the ranks
//! also talk to the GPU scheduler through SysV shared memory (`shmat`).
//! Everything is intra-node, so OS threads with mailboxes and a shared
//! atomic region exercise the same code paths (see `DESIGN.md`):
//!
//! * [`run`] spawns `size` rank threads and gives each a [`RankCtx`]
//!   with point-to-point `send`/`recv`, a reusable [`RankCtx::barrier`],
//!   and the collectives the spectral driver needs (`broadcast`,
//!   `scatter`, `gather`, `all_reduce`).
//! * [`SharedRegion`] is the `shmat` analogue: a fixed-size array of
//!   atomic 64-bit words shared by all ranks (the scheduler keeps its
//!   per-device *load* and *history task count* arrays in one).
//! * [`BoundedQueue`] is a bounded, closable MPMC work queue — the
//!   admission-control primitive of the resident engine and the
//!   service tier (queue depth is the backpressure lever).
//! * [`ScatterGather`] lifts the scatter/gather collectives onto
//!   [`BoundedQueue`] lanes for long-lived shard workers outside a
//!   fixed rank world: every scattered part resolves exactly once
//!   (answered, or missing when its worker died), so gathers never
//!   hang on a dead shard.
//!
//! Messages are typed at the call site; a `recv::<T>` matching a message
//! of a different payload type panics — message misrouting is a bug, not
//! a recoverable condition.

pub mod collective;
pub mod queue;
pub mod shared;

pub use collective::{
    Envelope, Gather, Lane, LaneFault, LaneFaultPlan, OpenGather, Promise, ScatterGather,
};
pub use queue::{BoundedQueue, TryPushError};
pub use shared::SharedRegion;

use std::any::Any;
use std::collections::VecDeque;
use std::sync::{Arc, Barrier, Condvar, Mutex};

/// Wildcard source for [`RankCtx::recv`], like `MPI_ANY_SOURCE`.
pub const ANY_SOURCE: usize = usize::MAX;

type Payload = Box<dyn Any + Send>;

struct Mail {
    src: usize,
    tag: u64,
    payload: Payload,
}

struct Mailbox {
    queue: Mutex<VecDeque<Mail>>,
    signal: Condvar,
}

struct CommState {
    size: usize,
    mailboxes: Vec<Mailbox>,
    barrier: Barrier,
}

/// Per-rank handle passed to the rank body by [`run`].
pub struct RankCtx {
    rank: usize,
    state: Arc<CommState>,
}

impl RankCtx {
    /// This rank's id, `0..size`.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[must_use]
    pub fn size(&self) -> usize {
        self.state.size
    }

    /// Send `value` to rank `to` with `tag`. Non-blocking (mailboxes are
    /// unbounded, as intra-node MPI effectively is at these sizes).
    ///
    /// # Panics
    /// Panics if `to` is out of range.
    pub fn send<T: Send + 'static>(&self, to: usize, tag: u64, value: T) {
        assert!(to < self.state.size, "rank {to} out of range");
        let mailbox = &self.state.mailboxes[to];
        let mut queue = mailbox.queue.lock().expect("mailbox poisoned");
        queue.push_back(Mail {
            src: self.rank,
            tag,
            payload: Box::new(value),
        });
        mailbox.signal.notify_all();
    }

    /// Blocking receive of a `T` from rank `from` (or [`ANY_SOURCE`])
    /// with `tag`. Returns `(source, value)`. Messages that do not match
    /// stay queued for other `recv` calls (MPI-style matching).
    ///
    /// # Panics
    /// Panics if a matching message's payload is not a `T`.
    pub fn recv<T: Send + 'static>(&self, from: usize, tag: u64) -> (usize, T) {
        let mailbox = &self.state.mailboxes[self.rank];
        let mut queue = mailbox.queue.lock().expect("mailbox poisoned");
        loop {
            if let Some(pos) = queue
                .iter()
                .position(|e| e.tag == tag && (from == ANY_SOURCE || e.src == from))
            {
                let env = queue.remove(pos).expect("position valid");
                let src = env.src;
                let value = env.payload.downcast::<T>().unwrap_or_else(|_| {
                    panic!("type mismatch receiving tag {tag} from rank {src}")
                });
                return (src, *value);
            }
            queue = mailbox.signal.wait(queue).expect("mailbox poisoned");
        }
    }

    /// Non-blocking receive: returns `Some((source, value))` if a
    /// matching message is already queued, `None` otherwise (like
    /// `MPI_Iprobe` + receive).
    ///
    /// # Panics
    /// Panics if a matching message's payload is not a `T`.
    pub fn try_recv<T: Send + 'static>(&self, from: usize, tag: u64) -> Option<(usize, T)> {
        let mailbox = &self.state.mailboxes[self.rank];
        let mut queue = mailbox.queue.lock().expect("mailbox poisoned");
        let pos = queue
            .iter()
            .position(|e| e.tag == tag && (from == ANY_SOURCE || e.src == from))?;
        let env = queue.remove(pos).expect("position valid");
        let src = env.src;
        let value = env
            .payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("type mismatch receiving tag {tag} from rank {src}"));
        Some((src, *value))
    }

    /// Combined send+receive (like `MPI_Sendrecv`): ship `value` to
    /// `to`, then block for a `T` from `from` with the same tag.
    /// Deadlock-free even in rings because the send is non-blocking.
    pub fn send_recv<T: Send + 'static>(
        &self,
        to: usize,
        from: usize,
        tag: u64,
        value: T,
    ) -> (usize, T) {
        self.send(to, tag, value);
        self.recv(from, tag)
    }

    /// Synchronize all ranks. Reusable.
    pub fn barrier(&self) {
        self.state.barrier.wait();
    }

    /// Broadcast `value` from `root` to every rank; each rank returns its
    /// copy.
    pub fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        const TAG: u64 = u64::MAX - 1;
        if self.rank == root {
            let v = value.expect("root must supply the broadcast value");
            for r in 0..self.state.size {
                if r != root {
                    self.send(r, TAG, v.clone());
                }
            }
            v
        } else {
            self.recv::<T>(root, TAG).1
        }
    }

    /// Scatter one element of `items` (root only) to each rank; every
    /// rank returns its element. `items.len()` must equal `size`.
    pub fn scatter<T: Send + 'static>(&self, root: usize, items: Option<Vec<T>>) -> T {
        const TAG: u64 = u64::MAX - 2;
        if self.rank == root {
            let items = items.expect("root must supply the scatter items");
            assert_eq!(items.len(), self.state.size, "one item per rank");
            let mut own = None;
            for (r, item) in items.into_iter().enumerate() {
                if r == root {
                    own = Some(item);
                } else {
                    self.send(r, TAG, item);
                }
            }
            own.expect("root owns one item")
        } else {
            self.recv::<T>(root, TAG).1
        }
    }

    /// Gather every rank's `value` at `root` (rank order). Non-roots get
    /// `None`.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        const TAG: u64 = u64::MAX - 3;
        if self.rank == root {
            let mut slots: Vec<Option<T>> = (0..self.state.size).map(|_| None).collect();
            slots[root] = Some(value);
            for _ in 0..self.state.size - 1 {
                let (src, v) = self.recv::<T>(ANY_SOURCE, TAG);
                slots[src] = Some(v);
            }
            Some(
                slots
                    .into_iter()
                    .map(|s| s.expect("every rank contributed"))
                    .collect(),
            )
        } else {
            self.send(root, TAG, value);
            None
        }
    }

    /// Reduce every rank's `value` with `op` (associative, commutative)
    /// and return the result on all ranks.
    pub fn all_reduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        if let Some(all) = self.gather(0, value) {
            let mut iter = all.into_iter();
            let first = iter.next().expect("size >= 1");
            let reduced = iter.fold(first, op);
            self.broadcast(0, Some(reduced))
        } else {
            self.broadcast::<T>(0, None)
        }
    }
}

/// Spawn `size` rank threads running `body` and return their results in
/// rank order. Panics in any rank propagate (the join unwraps), matching
/// MPI's all-or-nothing job semantics.
pub fn run<R, F>(size: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&RankCtx) -> R + Send + Sync,
{
    assert!(size >= 1, "need at least one rank");
    let state = Arc::new(CommState {
        size,
        mailboxes: (0..size)
            .map(|_| Mailbox {
                queue: Mutex::new(VecDeque::new()),
                signal: Condvar::new(),
            })
            .collect(),
        barrier: Barrier::new(size),
    });
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let state = Arc::clone(&state);
                let body = &body;
                scope.spawn(move || {
                    let ctx = RankCtx { rank, state };
                    body(&ctx)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_know_their_identity() {
        let ranks = run(4, |ctx| (ctx.rank(), ctx.size()));
        assert_eq!(ranks, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let results = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, 42u64);
                let (_, reply) = ctx.recv::<String>(1, 8);
                reply
            } else {
                let (src, v) = ctx.recv::<u64>(0, 7);
                assert_eq!(src, 0);
                ctx.send(0, 8, format!("got {v}"));
                String::new()
            }
        });
        assert_eq!(results[0], "got 42");
    }

    #[test]
    fn tag_matching_leaves_other_messages_queued() {
        let results = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, 100u32);
                ctx.send(1, 2, 200u32);
                0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let (_, b) = ctx.recv::<u32>(0, 2);
                let (_, a) = ctx.recv::<u32>(0, 1);
                assert_eq!((a, b), (100, 200));
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn any_source_receives_from_all() {
        let results = run(4, |ctx| {
            if ctx.rank() == 0 {
                let mut seen = [false; 4];
                for _ in 0..3 {
                    let (src, v) = ctx.recv::<usize>(ANY_SOURCE, 5);
                    assert_eq!(src, v);
                    seen[src] = true;
                }
                seen.iter().skip(1).all(|&s| s)
            } else {
                ctx.send(0, 5, ctx.rank());
                true
            }
        });
        assert!(results.iter().all(|&r| r));
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let results = run(5, |ctx| {
            if ctx.rank() == 2 {
                ctx.broadcast(2, Some(vec![1, 2, 3]))
            } else {
                ctx.broadcast::<Vec<i32>>(2, None)
            }
        });
        assert!(results.iter().all(|v| v == &vec![1, 2, 3]));
    }

    #[test]
    fn scatter_distributes_in_rank_order() {
        let results = run(4, |ctx| {
            if ctx.rank() == 0 {
                ctx.scatter(0, Some(vec![10, 11, 12, 13]))
            } else {
                ctx.scatter::<i32>(0, None)
            }
        });
        assert_eq!(results, vec![10, 11, 12, 13]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = run(4, |ctx| ctx.gather(0, ctx.rank() * 2));
        assert_eq!(results[0], Some(vec![0, 2, 4, 6]));
        assert!(results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        let results = run(6, |ctx| ctx.all_reduce(ctx.rank() as u64 + 1, |a, b| a + b));
        assert!(results.iter().all(|&r| r == 21));
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let results = run(8, |ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all 8 arrivals.
            phase1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&r| r == 8));
    }

    #[test]
    fn single_rank_world_works() {
        let results = run(1, |ctx| {
            ctx.barrier();
            let v = ctx.broadcast(0, Some(9));
            let g = ctx.gather(0, v).unwrap();
            let r = ctx.all_reduce(3, |a, b| a * b);
            (v, g, r)
        });
        assert_eq!(results[0], (9, vec![9], 3));
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let results = run(2, |ctx| {
            if ctx.rank() == 0 {
                // Nothing sent yet: must not block.
                assert!(ctx.try_recv::<u8>(1, 3).is_none());
                ctx.barrier(); // rank 1 sends before this barrier
                               // Message may need a moment to be observable after the
                               // barrier; poll.
                loop {
                    if let Some((src, v)) = ctx.try_recv::<u8>(1, 3) {
                        return (src, v);
                    }
                    std::thread::yield_now();
                }
            } else {
                ctx.send(0, 3, 9u8);
                ctx.barrier();
                (usize::MAX, 0)
            }
        });
        assert_eq!(results[0], (1, 9));
    }

    #[test]
    fn send_recv_shifts_around_a_ring() {
        let n = 5;
        let results = run(n, |ctx| {
            let right = (ctx.rank() + 1) % n;
            let left = (ctx.rank() + n - 1) % n;
            let (_, got) = ctx.send_recv(right, left, 4, ctx.rank());
            got
        });
        // Everyone receives their left neighbour's rank.
        for (rank, &got) in results.iter().enumerate() {
            assert_eq!(got, (rank + n - 1) % n);
        }
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn type_mismatch_panics() {
        run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, 5u8);
            } else {
                let _ = ctx.recv::<u64>(0, 1);
            }
        });
    }
}
