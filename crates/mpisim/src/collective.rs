//! Scatter/gather collectives over [`BoundedQueue`] lanes.
//!
//! The sharded service tier fans one request out to many engine shards
//! and folds their partial answers back together. [`RankCtx`]'s
//! collectives assume a fixed rank world created by [`crate::run`];
//! shard workers are long-lived threads with independent lifetimes, so
//! the router needs the same scatter/gather *shape* over the queue
//! primitive instead:
//!
//! * [`ScatterGather`] owns one bounded lane per destination. A
//!   [`ScatterGather::scatter`] call splits a request into parts, each
//!   addressed to a lane, and returns a [`Gather`] that blocks until
//!   **every** part is resolved.
//! * Workers loop `while let Some(env) = lane.pop()` and answer each
//!   [`Envelope`] through its [`Promise`]. A promise that is dropped
//!   unfulfilled — worker panic, shutdown drain, refused push —
//!   resolves its part as `None`, so a gather can never hang on a dead
//!   shard: missing parts surface to the caller, which re-routes them.
//! * Close-and-drain semantics come from the underlying queues:
//!   [`ScatterGather::close`] refuses further scatters and drains every
//!   lane, resolving any still-queued envelope as missing.
//!
//! Lock poisoning is tolerated throughout (inherited from
//! [`BoundedQueue`]): a worker that panics mid-operation never wedges
//! the other shards or the gathering caller.
//!
//! [`RankCtx`]: crate::RankCtx

use crate::queue::BoundedQueue;

/// A worker-facing lane handle: pop [`Envelope`]s until `None`.
pub type Lane<Req, Resp> = BoundedQueue<Envelope<Req, Resp>>;

/// The write-once resolution slot of one scattered part. Fulfil it
/// with the worker's answer; dropping it unfulfilled resolves the part
/// as missing (`None` at the gather).
pub struct Promise<Resp> {
    seq: usize,
    reply: BoundedQueue<(usize, Option<Resp>)>,
    fulfilled: bool,
}

impl<Resp> Promise<Resp> {
    /// Deliver the answer for this part.
    pub fn fulfill(mut self, resp: Resp) {
        // The reply queue's capacity is the part count and every part
        // resolves exactly once, so this push cannot be refused as
        // full; the queue is never closed.
        let _ = self.reply.try_push((self.seq, Some(resp)));
        self.fulfilled = true;
    }
}

impl<Resp> Drop for Promise<Resp> {
    /// An abandoned part — worker panic, shutdown drain, refused
    /// push — still resolves, as missing, so the gather terminates.
    fn drop(&mut self) {
        if !self.fulfilled {
            let _ = self.reply.try_push((self.seq, None));
        }
    }
}

/// One scattered part in flight: the request payload plus the promise
/// that routes its answer back to the gather.
pub struct Envelope<Req, Resp> {
    lane: usize,
    req: Req,
    promise: Promise<Resp>,
}

impl<Req, Resp> Envelope<Req, Resp> {
    /// The lane this part was addressed to.
    #[must_use]
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Borrow the request payload.
    #[must_use]
    pub fn request(&self) -> &Req {
        &self.req
    }

    /// Take ownership of the payload and the reply promise.
    #[must_use]
    pub fn split(self) -> (Req, Promise<Resp>) {
        (self.req, self.promise)
    }

    /// Answer in place (convenience for workers that borrow the
    /// request while computing).
    pub fn reply(self, resp: Resp) {
        self.promise.fulfill(resp);
    }
}

/// The pending result of one [`ScatterGather::scatter`].
#[must_use = "gather() must run, or the scattered parts' answers are dropped"]
pub struct Gather<Resp> {
    reply: BoundedQueue<(usize, Option<Resp>)>,
    expected: usize,
}

impl<Resp> Gather<Resp> {
    /// How many parts were scattered.
    #[must_use]
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Block until every part has resolved; `out[i]` is part `i`'s
    /// answer in scatter order, `None` for parts whose promise was
    /// dropped unfulfilled (dead worker, closed lane).
    pub fn gather(self) -> Vec<Option<Resp>> {
        let mut out: Vec<Option<Resp>> = (0..self.expected).map(|_| None).collect();
        for _ in 0..self.expected {
            let (seq, resp) = self
                .reply
                .pop()
                .expect("every part resolves exactly once (fulfil or drop)");
            out[seq] = resp;
        }
        out
    }
}

/// Fan-out/fan-in over per-destination bounded lanes (module docs).
pub struct ScatterGather<Req, Resp> {
    lanes: Vec<Lane<Req, Resp>>,
}

impl<Req, Resp> ScatterGather<Req, Resp> {
    /// A collective with `lanes` destinations, each lane buffering at
    /// most `depth` parts (the shard-tier backpressure bound).
    ///
    /// # Panics
    /// Panics when `lanes == 0` — a collective needs a destination.
    #[must_use]
    pub fn new(lanes: usize, depth: usize) -> ScatterGather<Req, Resp> {
        assert!(lanes >= 1, "a collective needs at least one lane");
        ScatterGather {
            lanes: (0..lanes).map(|_| BoundedQueue::new(depth)).collect(),
        }
    }

    /// Number of destination lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// A worker handle for lane `lane`.
    ///
    /// # Panics
    /// Panics when `lane` is out of range.
    #[must_use]
    pub fn lane(&self, lane: usize) -> Lane<Req, Resp> {
        self.lanes[lane].clone()
    }

    /// Scatter `parts` (each a `(lane, request)` pair) and return the
    /// gather for their answers. Pushes block for lane backpressure; a
    /// part addressed to a closed lane resolves as missing instead of
    /// blocking forever.
    ///
    /// # Panics
    /// Panics when a part addresses an out-of-range lane.
    pub fn scatter(&self, parts: Vec<(usize, Req)>) -> Gather<Resp> {
        let expected = parts.len();
        let reply: BoundedQueue<(usize, Option<Resp>)> = BoundedQueue::new(expected.max(1));
        for (seq, (lane, req)) in parts.into_iter().enumerate() {
            assert!(lane < self.lanes.len(), "lane {lane} out of range");
            let envelope = Envelope {
                lane,
                req,
                promise: Promise {
                    seq,
                    reply: reply.clone(),
                    fulfilled: false,
                },
            };
            // A refused push (lane closed) drops the envelope, whose
            // promise resolves the part as missing.
            let _ = self.lanes[lane].push(envelope);
        }
        Gather { reply, expected }
    }

    /// Close every lane and drain what they still hold: producers are
    /// refused from now on, workers observe end-of-stream after the
    /// drain, and every still-queued envelope resolves its part as
    /// missing. Idempotent.
    pub fn close(&self) {
        for lane in &self.lanes {
            lane.close();
            // Dropping the leftover envelopes fires their promises.
            while lane.try_pop().is_some() {}
        }
    }

    /// Whether [`ScatterGather::close`] has run.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lanes.iter().all(BoundedQueue::is_closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_gathers_in_part_order() {
        let sg: ScatterGather<u64, u64> = ScatterGather::new(3, 4);
        let workers: Vec<_> = (0..3)
            .map(|l| {
                let lane = sg.lane(l);
                std::thread::spawn(move || {
                    while let Some(env) = lane.pop() {
                        let (req, promise) = env.split();
                        promise.fulfill(req * 10 + l as u64);
                    }
                })
            })
            .collect();
        // Parts deliberately hit lanes out of order; answers come back
        // in part order regardless of which worker finishes first.
        let gather = sg.scatter(vec![(2, 1), (0, 2), (1, 3), (0, 4)]);
        let got = gather.gather();
        assert_eq!(
            got,
            vec![Some(12), Some(20), Some(31), Some(40)],
            "answers keyed by scatter order, not completion order"
        );
        sg.close();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn dropped_envelope_resolves_as_missing() {
        let sg: ScatterGather<u32, u32> = ScatterGather::new(2, 4);
        let dead = sg.lane(0);
        let live = sg.lane(1);
        let worker = std::thread::spawn(move || {
            while let Some(env) = live.pop() {
                let (req, promise) = env.split();
                promise.fulfill(req + 1);
            }
        });
        let gather = sg.scatter(vec![(0, 7), (1, 8)]);
        // Lane 0's "worker" drops the envelope without replying.
        drop(dead.pop().expect("part queued"));
        assert_eq!(
            gather.gather(),
            vec![None, Some(9)],
            "the dead lane's part is missing, the live one answered"
        );
        sg.close();
        worker.join().unwrap();
    }

    #[test]
    fn close_drains_and_resolves_everything_missing() {
        let sg: ScatterGather<u8, u8> = ScatterGather::new(2, 4);
        // No workers: parts sit queued until close drains them.
        let pending = sg.scatter(vec![(0, 1), (1, 2), (0, 3)]);
        sg.close();
        assert!(sg.is_closed());
        assert_eq!(pending.gather(), vec![None, None, None]);
        // Scatter after close: pushes are refused, parts resolve
        // missing immediately instead of blocking.
        let refused = sg.scatter(vec![(0, 4), (1, 5)]);
        assert_eq!(refused.gather(), vec![None, None]);
    }

    #[test]
    fn concurrent_scatters_do_not_crosstalk() {
        let sg = std::sync::Arc::new(ScatterGather::<u64, u64>::new(2, 8));
        let workers: Vec<_> = (0..2)
            .map(|l| {
                let lane = sg.lane(l);
                std::thread::spawn(move || {
                    while let Some(env) = lane.pop() {
                        let (req, promise) = env.split();
                        promise.fulfill(req);
                    }
                })
            })
            .collect();
        let callers: Vec<_> = (0..4u64)
            .map(|c| {
                let sg = std::sync::Arc::clone(&sg);
                std::thread::spawn(move || {
                    let base = c * 100;
                    let gather =
                        sg.scatter(vec![(0, base), (1, base + 1), (0, base + 2), (1, base + 3)]);
                    let got = gather.gather();
                    // Each caller's gather sees exactly its own echoes.
                    assert_eq!(
                        got,
                        (0..4).map(|i| Some(base + i)).collect::<Vec<_>>(),
                        "caller {c} crosstalked"
                    );
                })
            })
            .collect();
        for c in callers {
            c.join().unwrap();
        }
        sg.close();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn worker_panic_resolves_its_part_and_spares_the_rest() {
        let sg: ScatterGather<u32, u32> = ScatterGather::new(1, 4);
        let lane = sg.lane(0);
        let panicker = std::thread::spawn(move || {
            let env = lane.pop().expect("first part queued");
            let (_req, _promise) = env.split();
            panic!("injected worker death");
        });
        let gather = sg.scatter(vec![(0, 1)]);
        assert_eq!(
            gather.gather(),
            vec![None],
            "the unwound promise resolves the part as missing"
        );
        assert!(panicker.join().is_err(), "the worker did panic");
        // The collective survives the poisoned thread: a fresh worker
        // keeps serving the same lane.
        let lane = sg.lane(0);
        let worker = std::thread::spawn(move || {
            while let Some(env) = lane.pop() {
                let (req, promise) = env.split();
                promise.fulfill(req * 2);
            }
        });
        assert_eq!(sg.scatter(vec![(0, 21)]).gather(), vec![Some(42)]);
        sg.close();
        worker.join().unwrap();
    }

    #[test]
    fn lane_backpressure_bounds_queued_parts() {
        let sg: ScatterGather<usize, usize> = ScatterGather::new(1, 2);
        let lane = sg.lane(0);
        // A slow worker: scatter's blocking push must wait for lane
        // slots, never drop or reorder parts.
        let worker = std::thread::spawn(move || {
            let mut served = 0usize;
            while let Some(env) = lane.pop() {
                let (req, promise) = env.split();
                assert_eq!(req, served, "FIFO per lane");
                served += 1;
                promise.fulfill(req);
            }
            served
        });
        let gather = sg.scatter((0..16).map(|i| (0, i)).collect());
        let got = gather.gather();
        assert_eq!(got, (0..16).map(Some).collect::<Vec<_>>());
        sg.close();
        assert_eq!(worker.join().unwrap(), 16);
    }
}
