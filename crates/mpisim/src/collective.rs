//! Scatter/gather collectives over [`BoundedQueue`] lanes.
//!
//! The sharded service tier fans one request out to many engine shards
//! and folds their partial answers back together. [`RankCtx`]'s
//! collectives assume a fixed rank world created by [`crate::run`];
//! shard workers are long-lived threads with independent lifetimes, so
//! the router needs the same scatter/gather *shape* over the queue
//! primitive instead:
//!
//! * [`ScatterGather`] owns one bounded lane per destination. A
//!   [`ScatterGather::scatter`] call splits a request into parts, each
//!   addressed to a lane, and returns a [`Gather`] that blocks until
//!   **every** part is resolved.
//! * Workers loop `while let Some(env) = lane.pop()` and answer each
//!   [`Envelope`] through its [`Promise`]. A promise that is dropped
//!   unfulfilled — worker panic, shutdown drain, refused push —
//!   resolves its part as `None`, so a gather can never hang on a dead
//!   shard: missing parts surface to the caller, which re-routes them.
//! * Close-and-drain semantics come from the underlying queues:
//!   [`ScatterGather::close`] refuses further scatters and drains every
//!   lane, resolving any still-queued envelope as missing.
//!
//! Lock poisoning is tolerated throughout (inherited from
//! [`BoundedQueue`]): a worker that panics mid-operation never wedges
//! the other shards or the gathering caller.
//!
//! [`RankCtx`]: crate::RankCtx

use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use desim::SimRng;

use crate::queue::BoundedQueue;

/// A worker-facing lane handle: pop [`Envelope`]s until `None`.
pub type Lane<Req, Resp> = BoundedQueue<Envelope<Req, Resp>>;

/// What failure fires on a faulted lane delivery (mirror of
/// `gpu_sim::FaultKind`, scaled down to the two things a transport can
/// do to a message: delay it or lose it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneFault {
    /// The part's answer is delayed by `millis` — the worker computes
    /// normally but its reply lands late (a straggling replica).
    Stall {
        /// Added reply latency in milliseconds.
        millis: u64,
    },
    /// The part is dropped before delivery; its promise resolves as
    /// missing (`None`) so the gather never hangs on it.
    Drop,
}

/// A reproducible fault schedule for one lane (mirror of
/// `gpu_sim::FaultPlan`'s `fire_at` API). [`Default`] is the empty plan
/// (a healthy lane); builders add indexed triggers, probabilistic
/// rates, and a persistent slow-lane skew.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneFaultPlan {
    seed: u64,
    stall_rate: f64,
    stall_millis: u64,
    drop_rate: f64,
    /// Every delivery on this lane is slowed by this much — the
    /// "slow replica" skew (composes with, and is superseded by, an
    /// explicit [`LaneFault`] firing on the same delivery).
    delay_millis: u64,
    /// Exact triggers: fire the fault when the lane's delivery counter
    /// reaches the given index (0-based).
    at: Vec<(u64, LaneFault)>,
}

impl LaneFaultPlan {
    /// An empty plan drawing probabilistic faults from `seed`.
    #[must_use]
    pub fn seeded(seed: u64) -> LaneFaultPlan {
        LaneFaultPlan {
            seed,
            ..LaneFaultPlan::default()
        }
    }

    /// Probability that any one delivery stalls for `millis` first.
    #[must_use]
    pub fn stall_rate(mut self, rate: f64, millis: u64) -> LaneFaultPlan {
        self.stall_rate = rate.clamp(0.0, 1.0);
        self.stall_millis = millis;
        self
    }

    /// Probability that any one delivery is dropped outright.
    #[must_use]
    pub fn drop_rate(mut self, rate: f64) -> LaneFaultPlan {
        self.drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Slow every delivery on this lane by `millis` (persistent
    /// slow-replica skew).
    #[must_use]
    pub fn delay(mut self, millis: u64) -> LaneFaultPlan {
        self.delay_millis = millis;
        self
    }

    /// Fire `fault` exactly when this lane's delivery counter reaches
    /// `index` (0-based).
    #[must_use]
    pub fn fire_at(mut self, index: u64, fault: LaneFault) -> LaneFaultPlan {
        self.at.push((index, fault));
        self
    }
}

/// Live per-lane fault state: the plan plus the delivery counter and
/// the seeded dice.
struct LaneFaultState {
    plan: LaneFaultPlan,
    rng: SimRng,
    deliveries: u64,
}

impl LaneFaultState {
    fn new(plan: LaneFaultPlan) -> LaneFaultState {
        let rng = desim::rng(plan.seed);
        LaneFaultState {
            plan,
            rng,
            deliveries: 0,
        }
    }

    /// The verdict for the next delivery on this lane: an optional
    /// fault plus the persistent skew folded in.
    fn next(&mut self) -> Option<LaneFault> {
        let index = self.deliveries;
        self.deliveries += 1;
        // Exact triggers outrank the dice (reproducible replays).
        if let Some(&(_, fault)) = self.plan.at.iter().find(|&&(at, _)| at == index) {
            return Some(fault);
        }
        if self.plan.drop_rate > 0.0 && self.rng.gen_range(0.0..1.0) < self.plan.drop_rate {
            return Some(LaneFault::Drop);
        }
        if self.plan.stall_rate > 0.0 && self.rng.gen_range(0.0..1.0) < self.plan.stall_rate {
            return Some(LaneFault::Stall {
                millis: self.plan.stall_millis + self.plan.delay_millis,
            });
        }
        (self.plan.delay_millis > 0).then_some(LaneFault::Stall {
            millis: self.plan.delay_millis,
        })
    }
}

/// The write-once resolution slot of one scattered part. Fulfil it
/// with the worker's answer; dropping it unfulfilled resolves the part
/// as missing (`None` at the gather).
pub struct Promise<Resp> {
    seq: usize,
    reply: BoundedQueue<(usize, Option<Resp>)>,
    fulfilled: bool,
    /// Injected reply latency (lane stall / slow-replica skew): the
    /// fulfilling worker sleeps this long before its answer lands.
    delay: Option<Duration>,
}

impl<Resp> Promise<Resp> {
    /// Deliver the answer for this part.
    pub fn fulfill(mut self, resp: Resp) {
        if let Some(delay) = self.delay.take() {
            // The stall burns the *worker's* time, exactly like a slow
            // replica would; the gather side keeps running.
            std::thread::sleep(delay);
        }
        // The reply queue's capacity covers every part that can
        // resolve, and each part resolves exactly once, so this push
        // cannot be refused as full; the queue is never closed.
        let _ = self.reply.try_push((self.seq, Some(resp)));
        self.fulfilled = true;
    }
}

impl<Resp> Drop for Promise<Resp> {
    /// An abandoned part — worker panic, shutdown drain, refused
    /// push — still resolves, as missing, so the gather terminates.
    fn drop(&mut self) {
        if !self.fulfilled {
            let _ = self.reply.try_push((self.seq, None));
        }
    }
}

/// One scattered part in flight: the request payload plus the promise
/// that routes its answer back to the gather.
pub struct Envelope<Req, Resp> {
    lane: usize,
    req: Req,
    promise: Promise<Resp>,
}

impl<Req, Resp> Envelope<Req, Resp> {
    /// The lane this part was addressed to.
    #[must_use]
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Borrow the request payload.
    #[must_use]
    pub fn request(&self) -> &Req {
        &self.req
    }

    /// Take ownership of the payload and the reply promise.
    #[must_use]
    pub fn split(self) -> (Req, Promise<Resp>) {
        (self.req, self.promise)
    }

    /// Answer in place (convenience for workers that borrow the
    /// request while computing).
    pub fn reply(self, resp: Resp) {
        self.promise.fulfill(resp);
    }
}

/// The pending result of one [`ScatterGather::scatter`].
#[must_use = "gather() must run, or the scattered parts' answers are dropped"]
pub struct Gather<Resp> {
    reply: BoundedQueue<(usize, Option<Resp>)>,
    expected: usize,
}

impl<Resp> Gather<Resp> {
    /// How many parts were scattered.
    #[must_use]
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Block until every part has resolved; `out[i]` is part `i`'s
    /// answer in scatter order, `None` for parts whose promise was
    /// dropped unfulfilled (dead worker, closed lane).
    pub fn gather(self) -> Vec<Option<Resp>> {
        let mut out: Vec<Option<Resp>> = (0..self.expected).map(|_| None).collect();
        for _ in 0..self.expected {
            let (seq, resp) = self
                .reply
                .pop()
                .expect("every part resolves exactly once (fulfil or drop)");
            out[seq] = resp;
        }
        out
    }
}

/// An incremental gather that stays open for speculative extra parts —
/// the hedged-re-scatter counterpart of [`Gather`]
/// (see [`ScatterGather::scatter_open`]).
#[must_use = "recv the outstanding parts, or their answers are dropped"]
pub struct OpenGather<Resp> {
    reply: BoundedQueue<(usize, Option<Resp>)>,
    /// Parts sent so far (primary + hedges); also the next seq.
    sent: usize,
    /// Hedge slots still available.
    hedge_left: usize,
}

impl<Resp> OpenGather<Resp> {
    /// Parts sent so far (primary scatter plus hedges); resolutions
    /// received must eventually reach this count.
    #[must_use]
    pub fn sent(&self) -> usize {
        self.sent
    }

    /// Hedge slots still available for [`send_more`](Self::send_more).
    #[must_use]
    pub fn hedge_slots_left(&self) -> usize {
        self.hedge_left
    }

    /// Send one more part into this gather's reply stream (a hedge).
    /// Returns the new part's seq, or `None` when the hedge slots
    /// reserved at [`ScatterGather::scatter_open`] are exhausted.
    ///
    /// # Panics
    /// Panics when `lane` is out of range on `sg`.
    pub fn send_more<Req>(
        &mut self,
        sg: &ScatterGather<Req, Resp>,
        lane: usize,
        req: Req,
    ) -> Option<usize> {
        if self.hedge_left == 0 {
            return None;
        }
        self.hedge_left -= 1;
        let seq = self.sent;
        self.sent += 1;
        sg.deliver(seq, lane, req, &self.reply);
        Some(seq)
    }

    /// Receive the next resolution, blocking at most `timeout`:
    /// `Some((seq, answer))` when a part resolved, `None` when the wait
    /// expired with nothing pending yet.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(usize, Option<Resp>)> {
        self.reply.pop_timeout(timeout)
    }

    /// Receive the next resolution, blocking until one arrives.
    ///
    /// # Panics
    /// Panics if called with no parts outstanding (callers track
    /// `sent()` minus resolutions received).
    pub fn recv(&self) -> (usize, Option<Resp>) {
        self.reply
            .pop()
            .expect("every part resolves exactly once (fulfil or drop)")
    }
}

/// Fan-out/fan-in over per-destination bounded lanes (module docs).
pub struct ScatterGather<Req, Resp> {
    lanes: Vec<Lane<Req, Resp>>,
    faults: Vec<Mutex<LaneFaultState>>,
}

impl<Req, Resp> ScatterGather<Req, Resp> {
    /// A collective with `lanes` destinations, each lane buffering at
    /// most `depth` parts (the shard-tier backpressure bound).
    ///
    /// # Panics
    /// Panics when `lanes == 0` — a collective needs a destination.
    #[must_use]
    pub fn new(lanes: usize, depth: usize) -> ScatterGather<Req, Resp> {
        assert!(lanes >= 1, "a collective needs at least one lane");
        ScatterGather {
            lanes: (0..lanes).map(|_| BoundedQueue::new(depth)).collect(),
            faults: (0..lanes)
                .map(|_| Mutex::new(LaneFaultState::new(LaneFaultPlan::default())))
                .collect(),
        }
    }

    /// Install `plan` on lane `lane`, resetting its delivery counter
    /// and dice (chaos tests drive stalls and drops through this).
    ///
    /// # Panics
    /// Panics when `lane` is out of range.
    pub fn set_lane_faults(&self, lane: usize, plan: LaneFaultPlan) {
        *self.faults[lane]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = LaneFaultState::new(plan);
    }

    /// The fault verdict for one delivery on `lane`.
    fn fault_verdict(&self, lane: usize) -> Option<LaneFault> {
        self.faults[lane]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .next()
    }

    /// Number of destination lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// A worker handle for lane `lane`.
    ///
    /// # Panics
    /// Panics when `lane` is out of range.
    #[must_use]
    pub fn lane(&self, lane: usize) -> Lane<Req, Resp> {
        self.lanes[lane].clone()
    }

    /// Scatter `parts` (each a `(lane, request)` pair) and return the
    /// gather for their answers. Pushes block for lane backpressure; a
    /// part addressed to a closed lane resolves as missing instead of
    /// blocking forever.
    ///
    /// # Panics
    /// Panics when a part addresses an out-of-range lane.
    pub fn scatter(&self, parts: Vec<(usize, Req)>) -> Gather<Resp> {
        let expected = parts.len();
        let reply: BoundedQueue<(usize, Option<Resp>)> = BoundedQueue::new(expected.max(1));
        for (seq, (lane, req)) in parts.into_iter().enumerate() {
            self.deliver(seq, lane, req, &reply);
        }
        Gather { reply, expected }
    }

    /// Scatter `parts` into an [`OpenGather`] that can receive answers
    /// incrementally *and* accept up to `hedge_slots` further parts
    /// ([`OpenGather::send_more`]) into the same reply stream — the
    /// hedged-re-scatter shape: watch for stragglers, speculatively
    /// re-send their work elsewhere, take whichever answer lands first.
    ///
    /// # Panics
    /// Panics when a part addresses an out-of-range lane.
    pub fn scatter_open(&self, parts: Vec<(usize, Req)>, hedge_slots: usize) -> OpenGather<Resp> {
        let expected = parts.len();
        // Capacity covers every part that can ever resolve, so promise
        // pushes are never refused as full.
        let reply: BoundedQueue<(usize, Option<Resp>)> =
            BoundedQueue::new((expected + hedge_slots).max(1));
        for (seq, (lane, req)) in parts.into_iter().enumerate() {
            self.deliver(seq, lane, req, &reply);
        }
        OpenGather {
            reply,
            sent: expected,
            hedge_left: hedge_slots,
        }
    }

    /// Address part `seq` to `lane`, applying the lane's fault verdict:
    /// a dropped part never ships (its promise resolves missing), a
    /// stalled part carries its reply delay with it.
    fn deliver(
        &self,
        seq: usize,
        lane: usize,
        req: Req,
        reply: &BoundedQueue<(usize, Option<Resp>)>,
    ) {
        assert!(lane < self.lanes.len(), "lane {lane} out of range");
        let mut promise = Promise {
            seq,
            reply: reply.clone(),
            fulfilled: false,
            delay: None,
        };
        match self.fault_verdict(lane) {
            Some(LaneFault::Drop) => {
                // Dropping the promise resolves the part as missing —
                // the gather observes `None`, never a hang.
                drop(promise);
                return;
            }
            Some(LaneFault::Stall { millis }) => {
                promise.delay = Some(Duration::from_millis(millis));
            }
            None => {}
        }
        let envelope = Envelope { lane, req, promise };
        // A refused push (lane closed) drops the envelope, whose
        // promise resolves the part as missing.
        let _ = self.lanes[lane].push(envelope);
    }

    /// Close every lane and drain what they still hold: producers are
    /// refused from now on, workers observe end-of-stream after the
    /// drain, and every still-queued envelope resolves its part as
    /// missing. Idempotent.
    pub fn close(&self) {
        for lane in &self.lanes {
            lane.close();
            // Dropping the leftover envelopes fires their promises.
            while lane.try_pop().is_some() {}
        }
    }

    /// Whether [`ScatterGather::close`] has run.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lanes.iter().all(BoundedQueue::is_closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_gathers_in_part_order() {
        let sg: ScatterGather<u64, u64> = ScatterGather::new(3, 4);
        let workers: Vec<_> = (0..3)
            .map(|l| {
                let lane = sg.lane(l);
                std::thread::spawn(move || {
                    while let Some(env) = lane.pop() {
                        let (req, promise) = env.split();
                        promise.fulfill(req * 10 + l as u64);
                    }
                })
            })
            .collect();
        // Parts deliberately hit lanes out of order; answers come back
        // in part order regardless of which worker finishes first.
        let gather = sg.scatter(vec![(2, 1), (0, 2), (1, 3), (0, 4)]);
        let got = gather.gather();
        assert_eq!(
            got,
            vec![Some(12), Some(20), Some(31), Some(40)],
            "answers keyed by scatter order, not completion order"
        );
        sg.close();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn dropped_envelope_resolves_as_missing() {
        let sg: ScatterGather<u32, u32> = ScatterGather::new(2, 4);
        let dead = sg.lane(0);
        let live = sg.lane(1);
        let worker = std::thread::spawn(move || {
            while let Some(env) = live.pop() {
                let (req, promise) = env.split();
                promise.fulfill(req + 1);
            }
        });
        let gather = sg.scatter(vec![(0, 7), (1, 8)]);
        // Lane 0's "worker" drops the envelope without replying.
        drop(dead.pop().expect("part queued"));
        assert_eq!(
            gather.gather(),
            vec![None, Some(9)],
            "the dead lane's part is missing, the live one answered"
        );
        sg.close();
        worker.join().unwrap();
    }

    #[test]
    fn close_drains_and_resolves_everything_missing() {
        let sg: ScatterGather<u8, u8> = ScatterGather::new(2, 4);
        // No workers: parts sit queued until close drains them.
        let pending = sg.scatter(vec![(0, 1), (1, 2), (0, 3)]);
        sg.close();
        assert!(sg.is_closed());
        assert_eq!(pending.gather(), vec![None, None, None]);
        // Scatter after close: pushes are refused, parts resolve
        // missing immediately instead of blocking.
        let refused = sg.scatter(vec![(0, 4), (1, 5)]);
        assert_eq!(refused.gather(), vec![None, None]);
    }

    #[test]
    fn concurrent_scatters_do_not_crosstalk() {
        let sg = std::sync::Arc::new(ScatterGather::<u64, u64>::new(2, 8));
        let workers: Vec<_> = (0..2)
            .map(|l| {
                let lane = sg.lane(l);
                std::thread::spawn(move || {
                    while let Some(env) = lane.pop() {
                        let (req, promise) = env.split();
                        promise.fulfill(req);
                    }
                })
            })
            .collect();
        let callers: Vec<_> = (0..4u64)
            .map(|c| {
                let sg = std::sync::Arc::clone(&sg);
                std::thread::spawn(move || {
                    let base = c * 100;
                    let gather =
                        sg.scatter(vec![(0, base), (1, base + 1), (0, base + 2), (1, base + 3)]);
                    let got = gather.gather();
                    // Each caller's gather sees exactly its own echoes.
                    assert_eq!(
                        got,
                        (0..4).map(|i| Some(base + i)).collect::<Vec<_>>(),
                        "caller {c} crosstalked"
                    );
                })
            })
            .collect();
        for c in callers {
            c.join().unwrap();
        }
        sg.close();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn worker_panic_resolves_its_part_and_spares_the_rest() {
        let sg: ScatterGather<u32, u32> = ScatterGather::new(1, 4);
        let lane = sg.lane(0);
        let panicker = std::thread::spawn(move || {
            let env = lane.pop().expect("first part queued");
            let (_req, _promise) = env.split();
            panic!("injected worker death");
        });
        let gather = sg.scatter(vec![(0, 1)]);
        assert_eq!(
            gather.gather(),
            vec![None],
            "the unwound promise resolves the part as missing"
        );
        assert!(panicker.join().is_err(), "the worker did panic");
        // The collective survives the poisoned thread: a fresh worker
        // keeps serving the same lane.
        let lane = sg.lane(0);
        let worker = std::thread::spawn(move || {
            while let Some(env) = lane.pop() {
                let (req, promise) = env.split();
                promise.fulfill(req * 2);
            }
        });
        assert_eq!(sg.scatter(vec![(0, 21)]).gather(), vec![Some(42)]);
        sg.close();
        worker.join().unwrap();
    }

    #[test]
    fn dropped_lane_fault_delivers_none_not_a_hang() {
        let sg: ScatterGather<u32, u32> = ScatterGather::new(2, 4);
        // Lane 0 drops its first two deliveries; lane 1 is healthy.
        sg.set_lane_faults(
            0,
            LaneFaultPlan::default()
                .fire_at(0, LaneFault::Drop)
                .fire_at(1, LaneFault::Drop),
        );
        let workers: Vec<_> = (0..2)
            .map(|l| {
                let lane = sg.lane(l);
                std::thread::spawn(move || {
                    while let Some(env) = lane.pop() {
                        let (req, promise) = env.split();
                        promise.fulfill(req + 1);
                    }
                })
            })
            .collect();
        let got = sg.scatter(vec![(0, 10), (1, 20), (0, 30)]).gather();
        assert_eq!(
            got,
            vec![None, Some(21), None],
            "dropped parts resolve as missing; the gather terminates"
        );
        // The counter advanced past the triggers: lane 0 heals.
        assert_eq!(sg.scatter(vec![(0, 40)]).gather(), vec![Some(41)]);
        sg.close();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn stalled_lane_delivers_late_but_delivers() {
        let sg: ScatterGather<u32, u32> = ScatterGather::new(2, 4);
        sg.set_lane_faults(0, LaneFaultPlan::default().delay(30));
        let workers: Vec<_> = (0..2)
            .map(|l| {
                let lane = sg.lane(l);
                std::thread::spawn(move || {
                    while let Some(env) = lane.pop() {
                        let (req, promise) = env.split();
                        promise.fulfill(req);
                    }
                })
            })
            .collect();
        let open = sg.scatter_open(vec![(0, 1), (1, 2)], 0);
        // The healthy lane answers well before the stalled one.
        let (first_seq, first) = open.recv();
        assert_eq!((first_seq, first), (1, Some(2)));
        // The stalled part is late — a short poll misses it ...
        let early = open.recv_timeout(Duration::from_millis(1));
        // ... but it still arrives; nothing hangs.
        let (late_seq, late) = match early {
            Some(resolved) => resolved,
            None => open.recv(),
        };
        assert_eq!((late_seq, late), (0, Some(1)));
        sg.close();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn stalled_part_drained_at_close_still_resolves_missing() {
        let sg: ScatterGather<u8, u8> = ScatterGather::new(1, 4);
        sg.set_lane_faults(
            0,
            LaneFaultPlan::default().fire_at(0, LaneFault::Stall { millis: 50 }),
        );
        // No worker ever pops the stalled part; close drains it.
        let pending = sg.scatter(vec![(0, 1)]);
        sg.close();
        assert_eq!(
            pending.gather(),
            vec![None],
            "an undelivered stalled part resolves as missing at close"
        );
    }

    #[test]
    fn seeded_lane_faults_replay_identically() {
        // With no worker attached, the parts that survive the dice sit
        // queued on the lane — count them to observe the verdicts.
        let shipped = |seed: u64| -> Vec<bool> {
            let sg: ScatterGather<u8, u8> = ScatterGather::new(1, 64);
            sg.set_lane_faults(0, LaneFaultPlan::seeded(seed).drop_rate(0.5));
            let gather = sg.scatter((0..32).map(|i| (0, i)).collect());
            let lane = sg.lane(0);
            let mut survived = vec![false; 32];
            while let Some(env) = lane.try_pop() {
                survived[usize::from(*env.request())] = true;
            }
            drop(gather); // resolved by the envelope drops above
            survived
        };
        assert_eq!(shipped(7), shipped(7), "same seed, same verdicts");
        let a = shipped(7);
        let n = a.iter().filter(|&&s| s).count();
        assert!(n > 0 && n < 32, "the dice actually both drop and ship");
        assert_ne!(shipped(7), shipped(8), "different seed, different roll");
    }

    #[test]
    fn open_gather_hedge_first_writer_wins() {
        let sg: ScatterGather<u64, u64> = ScatterGather::new(2, 4);
        // Lane 0 is pathologically slow; lane 1 is fast.
        sg.set_lane_faults(0, LaneFaultPlan::default().delay(80));
        let workers: Vec<_> = (0..2)
            .map(|l| {
                let lane = sg.lane(l);
                std::thread::spawn(move || {
                    while let Some(env) = lane.pop() {
                        let (req, promise) = env.split();
                        promise.fulfill(req * 10 + l as u64);
                    }
                })
            })
            .collect();
        let mut open = sg.scatter_open(vec![(0, 5)], 2);
        assert_eq!(open.sent(), 1);
        // No answer within the hedge trigger window: re-scatter the
        // same work to the fast sibling.
        assert!(open.recv_timeout(Duration::from_millis(5)).is_none());
        let hedge_seq = open.send_more(&sg, 1, 5).expect("hedge slot");
        assert_eq!(hedge_seq, 1);
        assert_eq!(open.hedge_slots_left(), 1);
        // First writer wins: the hedge lands first ...
        let (seq, resp) = open.recv();
        assert_eq!((seq, resp), (1, Some(51)));
        // ... and the straggler still resolves (discarded by callers).
        let (seq, resp) = open.recv();
        assert_eq!((seq, resp), (0, Some(50)));
        // Hedge slots are a hard budget.
        assert!(open.send_more(&sg, 1, 5).is_some());
        assert!(open.send_more(&sg, 1, 5).is_none(), "budget exhausted");
        let _ = open.recv();
        sg.close();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn lane_backpressure_bounds_queued_parts() {
        let sg: ScatterGather<usize, usize> = ScatterGather::new(1, 2);
        let lane = sg.lane(0);
        // A slow worker: scatter's blocking push must wait for lane
        // slots, never drop or reorder parts.
        let worker = std::thread::spawn(move || {
            let mut served = 0usize;
            while let Some(env) = lane.pop() {
                let (req, promise) = env.split();
                assert_eq!(req, served, "FIFO per lane");
                served += 1;
                promise.fulfill(req);
            }
            served
        });
        let gather = sg.scatter((0..16).map(|i| (0, i)).collect());
        let got = gather.gather();
        assert_eq!(got, (0..16).map(Some).collect::<Vec<_>>());
        sg.close();
        assert_eq!(worker.join().unwrap(), 16);
    }
}
