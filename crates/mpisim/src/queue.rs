//! A bounded multi-producer multi-consumer work queue.
//!
//! The resident engine and the service tier both need the same
//! primitive: a FIFO with a *hard* capacity bound (queue depth is the
//! admission-control lever — paper Algorithm 1's "maximum queue
//! length" lifted to the request tier), shared by many submitting
//! threads and many draining workers. `std::sync::mpsc` is
//! single-consumer, so this is a mutex-guarded deque with two condvars
//! (`not_empty` for consumers, `not_full` for producers), the same
//! shape as `gpu_sim`'s command queue but bounded and closable.
//!
//! Cloning a [`BoundedQueue`] clones the handle; all clones address the
//! same queue.
//!
//! Lock acquisition is poison-tolerant: a producer or consumer thread
//! that panics mid-operation (e.g. a worker killed by an injected
//! kernel fault) must not wedge every other rank on a
//! `PoisonError` — the queue state is a plain `VecDeque` plus a
//! `closed` flag, both valid after any partial operation, so the
//! poison flag carries no information here.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity; the item is handed back so the caller
    /// can shed it or run it locally.
    Full(T),
    /// The queue was closed; no further items will ever be accepted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// A bounded, closable MPMC FIFO.
pub struct BoundedQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (`>= 1`).
    #[must_use]
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    items: VecDeque::new(),
                    closed: false,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// The capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Current occupancy (racy by nature, exact at the instant read).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push: refused with [`TryPushError::Full`] at
    /// capacity, [`TryPushError::Closed`] after [`close`](Self::close).
    ///
    /// # Errors
    /// Returns the item back inside the error on refusal.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.inner.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for a free slot. Returns the item back as
    /// an `Err` if the queue was closed while waiting.
    ///
    /// # Errors
    /// Returns the item when the queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.inner.capacity {
                state.items.push_back(item);
                drop(state);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .inner
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocking pop: `None` once the queue is closed *and* drained —
    /// the worker-shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pop with a bounded wait: blocks up to `timeout` for an item,
    /// then returns `None` — either because the queue is closed and
    /// drained (check [`is_closed`](Self::is_closed)) or because the
    /// wait expired. The hedged-gather path uses this to poll for
    /// straggling replies without committing to a full blocking pop.
    pub fn pop_timeout(&self, timeout: std::time::Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            let now = std::time::Instant::now();
            let left = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())?;
            let (next, result) = self
                .inner
                .not_empty
                .wait_timeout(state, left)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if result.timed_out() && state.items.is_empty() {
                return None;
            }
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let item = state.items.pop_front();
        drop(state);
        if item.is_some() {
            self.inner.not_full.notify_one();
        }
        item
    }

    /// Close the queue: producers are refused from now on, consumers
    /// drain the remaining items and then observe end-of-stream.
    /// Idempotent.
    pub fn close(&self) {
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn try_push_refuses_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.len(), 2);
        q.try_pop().unwrap();
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(TryPushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn blocking_push_unblocks_on_pop() {
        let q = BoundedQueue::new(1);
        q.push(0u32).unwrap();
        std::thread::scope(|scope| {
            let q2 = q.clone();
            let pusher = scope.spawn(move || q2.push(1u32));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(q.pop(), Some(0));
            pusher.join().unwrap().unwrap();
            assert_eq!(q.pop(), Some(1));
        });
    }

    #[test]
    fn blocking_push_returns_item_on_close() {
        let q = BoundedQueue::new(1);
        q.push(7u32).unwrap();
        std::thread::scope(|scope| {
            let q2 = q.clone();
            let pusher = scope.spawn(move || q2.push(8u32));
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.close();
            assert_eq!(pusher.join().unwrap(), Err(8));
        });
    }

    #[test]
    fn pop_timeout_returns_item_or_expires() {
        let q = BoundedQueue::new(2);
        q.try_push(1u32).unwrap();
        assert_eq!(q.pop_timeout(std::time::Duration::from_millis(5)), Some(1));
        // Empty queue: the wait expires without an item.
        let started = std::time::Instant::now();
        assert_eq!(q.pop_timeout(std::time::Duration::from_millis(10)), None);
        assert!(started.elapsed() >= std::time::Duration::from_millis(5));
        // A concurrent push wakes the waiter before the timeout.
        std::thread::scope(|scope| {
            let q2 = q.clone();
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                q2.try_push(2u32).unwrap();
            });
            assert_eq!(q.pop_timeout(std::time::Duration::from_secs(5)), Some(2));
        });
        // Closed and drained: immediate None.
        q.close();
        assert_eq!(q.pop_timeout(std::time::Duration::from_secs(5)), None);
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        let q = BoundedQueue::new(4);
        let produced = 4 * 1_000u64;
        let consumed = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for p in 0..4u64 {
                let q = q.clone();
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        q.push(p * 1_000 + i).unwrap();
                    }
                });
            }
            for _ in 0..3 {
                let q = q.clone();
                let consumed = &consumed;
                scope.spawn(move || {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            // Producers finish, then close; consumers drain and exit.
            let q_closer = q.clone();
            let consumed_ref = &consumed;
            scope.spawn(move || {
                while consumed_ref.load(std::sync::atomic::Ordering::Relaxed)
                    + q_closer.len() as u64
                    != produced
                {
                    std::thread::yield_now();
                }
                q_closer.close();
            });
        });
        assert_eq!(
            consumed.load(std::sync::atomic::Ordering::Relaxed),
            produced
        );
    }
}
