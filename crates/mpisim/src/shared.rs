//! Shared atomic memory — the `shmat` analogue.
//!
//! The paper's scheduler keeps two arrays in SysV shared memory: the
//! per-device *load* (current queue occupancy) and the per-device
//! *history task count*, both updated with atomic operations
//! (paper §III-C). [`SharedRegion`] provides the same thing for rank
//! threads: a fixed-size array of `AtomicU64` words with cheap cloneable
//! handles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fixed-size region of shared atomic 64-bit words.
///
/// Cloning a `SharedRegion` clones the *handle*; all clones address the
/// same memory, like multiple processes attaching one shm segment.
#[derive(Debug, Clone)]
pub struct SharedRegion {
    words: Arc<[AtomicU64]>,
}

impl SharedRegion {
    /// Allocate a zeroed region of `len` words.
    #[must_use]
    pub fn new(len: usize) -> SharedRegion {
        let words: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        SharedRegion {
            words: words.into(),
        }
    }

    /// Number of words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Atomic load of word `i` (sequentially consistent — scheduler
    /// decisions read several words and the simplicity is worth more
    /// than the fence cost at these rates; see the Atomics guide on
    /// starting with `SeqCst` and weakening only with evidence).
    #[must_use]
    pub fn load(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::SeqCst)
    }

    /// Atomic store to word `i`.
    pub fn store(&self, i: usize, value: u64) {
        self.words[i].store(value, Ordering::SeqCst);
    }

    /// Atomic fetch-add on word `i`; returns the previous value.
    pub fn fetch_add(&self, i: usize, delta: u64) -> u64 {
        self.words[i].fetch_add(delta, Ordering::SeqCst)
    }

    /// Atomic saturating fetch-sub on word `i`; returns the previous
    /// value. Saturates at zero instead of wrapping (a load count must
    /// never underflow even under a buggy double-free).
    pub fn fetch_sub_saturating(&self, i: usize) -> u64 {
        self.fetch_sub_saturating_by(i, 1)
    }

    /// Atomic saturating fetch-sub of `delta` on word `i`; returns the
    /// previous value. Clamps at zero instead of wrapping — a weighted
    /// load sum must never underflow even if a racing double-free
    /// over-subtracts.
    pub fn fetch_sub_saturating_by(&self, i: usize, delta: u64) -> u64 {
        let mut current = self.words[i].load(Ordering::SeqCst);
        loop {
            if current == 0 {
                return 0;
            }
            match self.words[i].compare_exchange_weak(
                current,
                current.saturating_sub(delta),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(prev) => return prev,
                Err(actual) => current = actual,
            }
        }
    }

    /// Atomic update of word `i` via `f` (CAS loop); returns the
    /// previous value. The scheduler stores per-device EWMA rates as
    /// `f64::to_bits` words and updates them through this.
    pub fn fetch_update(&self, i: usize, mut f: impl FnMut(u64) -> u64) -> u64 {
        let mut current = self.words[i].load(Ordering::SeqCst);
        loop {
            match self.words[i].compare_exchange_weak(
                current,
                f(current),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(prev) => return prev,
                Err(actual) => current = actual,
            }
        }
    }

    /// Atomic compare-exchange on word `i`.
    ///
    /// # Errors
    /// Returns the actual value when it differs from `expected`.
    pub fn compare_exchange(&self, i: usize, expected: u64, new: u64) -> Result<u64, u64> {
        self.words[i].compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Number of live handles (clones) addressing this region — the
    /// analogue of the shm segment's attachment count. `1` means the
    /// caller holds the last handle.
    #[must_use]
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.words)
    }

    /// Snapshot of all words (each load is individually atomic; the
    /// vector is not a consistent cut — same as the paper's scheduler
    /// scanning `l_i`/`h_i` without a global lock).
    #[must_use]
    pub fn snapshot(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::SeqCst))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_memory() {
        let a = SharedRegion::new(4);
        let b = a.clone();
        a.store(2, 99);
        assert_eq!(b.load(2), 99);
        b.fetch_add(2, 1);
        assert_eq!(a.load(2), 100);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let r = SharedRegion::new(1);
        assert_eq!(r.fetch_add(0, 5), 0);
        assert_eq!(r.fetch_add(0, 3), 5);
        assert_eq!(r.load(0), 8);
    }

    #[test]
    fn fetch_sub_saturates_at_zero() {
        let r = SharedRegion::new(1);
        r.store(0, 2);
        assert_eq!(r.fetch_sub_saturating(0), 2);
        assert_eq!(r.fetch_sub_saturating(0), 1);
        assert_eq!(r.fetch_sub_saturating(0), 0);
        assert_eq!(r.load(0), 0);
    }

    #[test]
    fn fetch_sub_by_saturates_at_zero() {
        let r = SharedRegion::new(1);
        r.store(0, 10);
        assert_eq!(r.fetch_sub_saturating_by(0, 4), 10);
        assert_eq!(r.load(0), 6);
        assert_eq!(r.fetch_sub_saturating_by(0, 100), 6);
        assert_eq!(r.load(0), 0);
        assert_eq!(r.fetch_sub_saturating_by(0, 1), 0);
    }

    #[test]
    fn fetch_update_applies_closure_atomically() {
        let r = SharedRegion::new(1);
        r.store(0, 3.5f64.to_bits());
        let prev = r.fetch_update(0, |bits| (f64::from_bits(bits) * 2.0).to_bits());
        assert_eq!(f64::from_bits(prev), 3.5);
        assert_eq!(f64::from_bits(r.load(0)), 7.0);
    }

    #[test]
    fn compare_exchange_semantics() {
        let r = SharedRegion::new(1);
        assert_eq!(r.compare_exchange(0, 0, 7), Ok(0));
        assert_eq!(r.compare_exchange(0, 0, 9), Err(7));
        assert_eq!(r.load(0), 7);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let r = SharedRegion::new(2);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        r.fetch_add(0, 1);
                        r.fetch_add(1, 2);
                    }
                });
            }
        });
        assert_eq!(r.load(0), 8000);
        assert_eq!(r.load(1), 16000);
    }

    #[test]
    fn snapshot_reads_all_words() {
        let r = SharedRegion::new(3);
        r.store(0, 1);
        r.store(1, 2);
        r.store(2, 3);
        assert_eq!(r.snapshot(), vec![1, 2, 3]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }
}
