//! A seeded consistent-hash ring mapping ion indices to shard
//! segments.
//!
//! Each segment contributes `vnodes` virtual points to the ring; a key
//! is owned by the first point clockwise from its hash. Two properties
//! matter to the router and are tested here:
//!
//! * **Determinism** — the ring is a pure function of `(seed, segments,
//!   vnodes)`, so a restarted router (same configuration) routes every
//!   key to the same segment as its predecessor. No state has to
//!   survive the restart.
//! * **Minimal disruption** — adding or removing one segment moves only
//!   the keys whose successor point changed: on the order of `K / N` of
//!   `K` keys across `N` segments, not a full reshuffle. Cached per-ion
//!   partials on the untouched segments stay useful.

/// The `splitmix64` mixer — cheap, stateless, and full-avalanche; the
/// same generator the deterministic traffic/fault seeds in this
/// workspace use.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over shard segment ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    /// `(point hash, segment)` sorted by hash; ties broken by segment
    /// id so construction order never matters.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Build a ring with `vnodes` virtual points per segment
    /// (`0..segments`). Clamps `vnodes` to at least 1.
    ///
    /// # Panics
    /// Panics if `segments == 0` — an empty ring can own nothing.
    #[must_use]
    pub fn new(seed: u64, segments: usize, vnodes: u32) -> HashRing {
        assert!(segments > 0, "a hash ring needs at least one segment");
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(segments * vnodes as usize);
        for segment in 0..segments {
            for v in 0..u64::from(vnodes) {
                let h = splitmix64(seed ^ splitmix64(((segment as u64) << 32) | v));
                points.push((h, segment));
            }
        }
        points.sort_unstable();
        HashRing { seed, points }
    }

    /// The segment owning `key`: hash the key onto the circle and walk
    /// clockwise to the first virtual point (wrapping past the top).
    #[must_use]
    pub fn owner(&self, key: u64) -> usize {
        let h = splitmix64(self.seed ^ key);
        let idx = self.points.partition_point(|p| p.0 < h);
        let idx = if idx == self.points.len() { 0 } else { idx };
        self.points[idx].1
    }

    /// Number of virtual points on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no points (never true for a constructed
    /// ring; kept for the conventional `len`/`is_empty` pair).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEYS: u64 = 496; // the paper's ion count

    fn owners(ring: &HashRing) -> Vec<usize> {
        (0..KEYS).map(|k| ring.owner(k)).collect()
    }

    #[test]
    fn same_seed_same_segments_same_routing_across_restarts() {
        // A "restart" constructs a brand-new ring from config alone.
        let a = HashRing::new(17, 4, 64);
        let b = HashRing::new(17, 4, 64);
        assert_eq!(owners(&a), owners(&b));
    }

    #[test]
    fn different_seeds_route_differently() {
        let a = HashRing::new(17, 4, 64);
        let b = HashRing::new(18, 4, 64);
        assert_ne!(owners(&a), owners(&b), "seed must matter");
    }

    #[test]
    fn every_segment_owns_a_reasonable_share() {
        let ring = HashRing::new(17, 4, 128);
        let mut counts = [0usize; 4];
        for k in 0..KEYS {
            counts[ring.owner(k)] += 1;
        }
        let expected = KEYS as usize / 4;
        for (seg, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 4 && c < expected * 4,
                "segment {seg} owns {c} of {KEYS} keys — too far from {expected}"
            );
        }
    }

    #[test]
    fn adding_a_segment_moves_about_one_nth_of_the_keys() {
        // Property over several seeds: growing N -> N+1 segments moves
        // ~K/(N+1) keys in expectation. Allow generous slack (3x) for
        // vnode placement variance, but fail on anything resembling a
        // full reshuffle.
        for seed in [3u64, 17, 101, 20_260_808] {
            let n = 4usize;
            let before = HashRing::new(seed, n, 64);
            let after = HashRing::new(seed, n + 1, 64);
            let moved = (0..KEYS)
                .filter(|&k| before.owner(k) != after.owner(k))
                .count();
            let expected = KEYS as usize / (n + 1);
            assert!(
                moved <= expected * 3,
                "seed {seed}: {moved} of {KEYS} keys moved; expected about {expected}"
            );
            // And every moved key must land on the new segment — an
            // old->old move would be gratuitous disruption.
            for k in 0..KEYS {
                if before.owner(k) != after.owner(k) {
                    assert_eq!(after.owner(k), n, "key {k} moved between old segments");
                }
            }
        }
    }

    #[test]
    fn removing_the_last_segment_only_reassigns_its_keys() {
        for seed in [3u64, 17, 101] {
            let n = 5usize;
            let before = HashRing::new(seed, n, 64);
            let after = HashRing::new(seed, n - 1, 64);
            for k in 0..KEYS {
                if before.owner(k) != n - 1 {
                    assert_eq!(
                        before.owner(k),
                        after.owner(k),
                        "key {k} moved although its segment survived"
                    );
                }
            }
        }
    }

    #[test]
    fn single_segment_owns_everything() {
        let ring = HashRing::new(0, 1, 8);
        for k in 0..KEYS {
            assert_eq!(ring.owner(k), 0);
        }
    }
}
