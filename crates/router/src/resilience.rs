//! Request-level resilience primitives for the router: the hedge
//! token bucket and the per-replica straggler-latency window.
//!
//! Hedged re-scatter trades duplicate work for tail latency: when a
//! part has waited longer than a high quantile of its replica's recent
//! latencies, the router speculatively re-sends the same work to a
//! sibling and takes whichever answer lands first. Two guards keep the
//! speculation honest:
//!
//! * a [`TokenBucket`] caps the *rate* of hedges — under a full
//!   straggler storm the duplicate load is bounded by the bucket, so
//!   hedging can never double the tier's load for long; and
//! * a [`QuantileWindow`] per replica tracks what "straggling" even
//!   means — the hedge trigger adapts to each replica's own recent
//!   latency distribution instead of a fixed magic timeout.
//!
//! Both are deterministic given a deterministic clock: the bucket's
//! refill is a pure function of elapsed clock seconds, and the window
//! is a plain rolling sample set with no randomness.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// A deterministic token bucket over explicit clock seconds.
///
/// Starts full. [`TokenBucket::try_take`] refills by
/// `refill_per_sec x elapsed` (capped at `capacity`) and then takes one
/// token if at least one is available. All state transitions are pure
/// functions of the `now` values passed in, so a manual clock replays
/// the exact grant/deny sequence.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    inner: Mutex<BucketInner>,
}

#[derive(Debug)]
struct BucketInner {
    tokens: f64,
    last: f64,
    granted: u64,
    denied: u64,
}

impl TokenBucket {
    /// A full bucket holding `capacity` tokens, refilling at
    /// `refill_per_sec` (both floored at 0).
    #[must_use]
    pub fn new(capacity: f64, refill_per_sec: f64) -> TokenBucket {
        let capacity = capacity.max(0.0);
        TokenBucket {
            capacity,
            refill_per_sec: refill_per_sec.max(0.0),
            inner: Mutex::new(BucketInner {
                tokens: capacity,
                last: 0.0,
                granted: 0,
                denied: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BucketInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Refill for the elapsed time and take one token if available.
    /// A `now` earlier than the last call refills nothing (the bucket
    /// never goes backwards).
    pub fn try_take(&self, now: f64) -> bool {
        let mut inner = self.lock();
        let elapsed = (now - inner.last).max(0.0);
        inner.last = inner.last.max(now);
        inner.tokens = (inner.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if inner.tokens >= 1.0 {
            inner.tokens -= 1.0;
            inner.granted += 1;
            true
        } else {
            inner.denied += 1;
            false
        }
    }

    /// Tokens currently available (after refilling to `now`), without
    /// taking any.
    #[must_use]
    pub fn available(&self, now: f64) -> f64 {
        let mut inner = self.lock();
        let elapsed = (now - inner.last).max(0.0);
        inner.last = inner.last.max(now);
        inner.tokens = (inner.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        inner.tokens
    }

    /// Lifetime `(granted, denied)` take counts.
    #[must_use]
    pub fn counts(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.granted, inner.denied)
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

/// A bounded rolling window of latency samples with on-demand
/// quantiles — the per-replica view the hedge trigger reads.
///
/// Until [`QuantileWindow::MIN_SAMPLES`] observations exist the
/// quantile is `None`: a cold replica must not be declared a straggler
/// off one or two samples, so callers fall back to their configured
/// minimum wait.
#[derive(Debug)]
pub struct QuantileWindow {
    samples: Mutex<VecDeque<f64>>,
    cap: usize,
}

impl QuantileWindow {
    /// Observations required before a quantile is reported.
    pub const MIN_SAMPLES: usize = 8;

    /// An empty window keeping the last `cap` samples (floored at
    /// [`Self::MIN_SAMPLES`]).
    #[must_use]
    pub fn new(cap: usize) -> QuantileWindow {
        QuantileWindow {
            samples: Mutex::new(VecDeque::new()),
            cap: cap.max(Self::MIN_SAMPLES),
        }
    }

    /// Record one latency observation in seconds.
    pub fn record(&self, secs: f64) {
        let mut samples = self.samples.lock().unwrap_or_else(PoisonError::into_inner);
        samples.push_back(secs);
        while samples.len() > self.cap {
            samples.pop_front();
        }
    }

    /// The `q`-quantile (nearest-rank) of the current window, `None`
    /// until [`Self::MIN_SAMPLES`] observations exist.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let samples = self.samples.lock().unwrap_or_else(PoisonError::into_inner);
        if samples.len() < Self::MIN_SAMPLES {
            return None;
        }
        let mut sorted: Vec<f64> = samples.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        let rank =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Observations currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the window holds no observations yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_grants_up_to_capacity_then_denies() {
        let b = TokenBucket::new(3.0, 0.0);
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0));
        assert!(!b.try_take(0.0), "capacity is a hard budget");
        assert!(!b.try_take(100.0), "zero refill never mints tokens");
        assert_eq!(b.counts(), (3, 2));
    }

    #[test]
    fn bucket_refills_deterministically_and_caps_at_capacity() {
        let b = TokenBucket::new(2.0, 1.0);
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0));
        assert!(!b.try_take(0.5), "only half a token refilled");
        // 0.5 elapsed more: the half token from before plus this half.
        assert!(b.try_take(1.0));
        // A long idle stretch refills to capacity, not beyond.
        assert!((b.available(100.0) - 2.0).abs() < 1e-12);
        assert!(b.try_take(100.0));
        assert!(b.try_take(100.0));
        assert!(!b.try_take(100.0));
    }

    #[test]
    fn bucket_ignores_backwards_time() {
        let b = TokenBucket::new(1.0, 10.0);
        assert!(b.try_take(5.0));
        assert!(!b.try_take(4.0), "earlier now refills nothing");
        assert!(b.try_take(5.2), "forward time refills normally");
    }

    #[test]
    fn quantile_window_needs_min_samples_then_tracks() {
        let w = QuantileWindow::new(16);
        for i in 0..QuantileWindow::MIN_SAMPLES - 1 {
            w.record(i as f64);
            assert_eq!(w.quantile(0.9), None, "cold window reports nothing");
        }
        w.record(100.0);
        assert_eq!(w.len(), QuantileWindow::MIN_SAMPLES);
        let p99 = w.quantile(0.99).unwrap();
        assert!((p99 - 100.0).abs() < 1e-12, "outlier owns the tail");
        let p50 = w.quantile(0.5).unwrap();
        assert!(p50 < 100.0);
    }

    #[test]
    fn quantile_window_rolls_old_samples_out() {
        let w = QuantileWindow::new(8);
        for _ in 0..8 {
            w.record(1000.0);
        }
        for _ in 0..8 {
            w.record(1.0);
        }
        assert_eq!(w.len(), 8);
        assert!(
            (w.quantile(0.99).unwrap() - 1.0).abs() < 1e-12,
            "the slow epoch aged out of the window"
        );
    }
}
