//! The router's locality tier: a route-level assembled-spectrum
//! cache, single-flight fan-out coalescing, a deterministic hot-state
//! tracker, and rendezvous state-affinity placement.
//!
//! The paper's economics are about amortizing per-task overhead; at
//! this tier the analogous waste is re-fanning-out work for plasma
//! states the tier has already answered. Four mechanisms attack it:
//!
//! * [`RouteCache`] — a bounded LRU of fully assembled responses keyed
//!   on [`RouteKey`] (quantized state + normalized element selection).
//!   A hit costs zero scatter/gather and returns a clone of the
//!   `Arc`-shared bins: the *same bits* the original fold produced, so
//!   cache-on responses stay bitwise identical to cache-off ones.
//! * [`SingleFlight`] — concurrent misses for one route key elect one
//!   leader to fan out; followers block on the leader's published
//!   result instead of duplicating the fan-out. A failed leader
//!   publishes `None` and a follower retries as the next leader, so
//!   coalescing never turns one transient fault into many refusals.
//! * [`HotTracker`] — a seeded count-min sketch over observed state
//!   keys with periodic halving decay. The top-K estimated-hottest
//!   states are *promoted*; the router replicates their per-ion
//!   partials to every sibling replica so affinity's cache
//!   concentration does not become a single-replica hot spot. The
//!   sketch is a pure function of `(seed, observation sequence)` —
//!   restart-deterministic — and its memory is a compile-time bound.
//! * [`preferred_replica`] — rendezvous (highest-random-weight)
//!   hashing of the state key to one replica per segment, so repeated
//!   queries for a state land where its partials already live instead
//!   of diluting across R replica caches.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use rrc_service::{ElementSelection, StateKey};

use crate::ring::splitmix64;

/// The route-cache key: one quantized plasma state asked with one
/// normalized element selection.
///
/// Normalization ([`RouteKey::new`]) makes equal keys imply equal ion
/// sets: `All` maps to `None`, and an explicit element list is sorted
/// and deduplicated — `[8, 26, 8]` and `[26, 8]` are the same route.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouteKey {
    /// The quantized plasma state + grid.
    pub state: StateKey,
    /// `None` for all elements, otherwise the sorted, deduplicated
    /// atomic numbers.
    pub selection: Option<Vec<u8>>,
}

impl RouteKey {
    /// The normalized route key of a request.
    #[must_use]
    pub fn new(state: StateKey, elements: &ElementSelection) -> RouteKey {
        let selection = match elements {
            ElementSelection::All => None,
            ElementSelection::Elements(zs) => {
                let mut zs = zs.clone();
                zs.sort_unstable();
                zs.dedup();
                Some(zs)
            }
        };
        RouteKey { state, selection }
    }
}

/// One cached assembled route: the folded bins and how many ions the
/// fold covered (so a hit can report `ions_from_cache` without
/// re-scanning the database).
#[derive(Debug, Clone)]
pub struct CachedRoute {
    /// The assembled spectrum. Shared: every hit clones out of the
    /// same allocation, so hit bits are identical to the fold's bits.
    pub bins: Arc<Vec<f64>>,
    /// Ions the fold covered.
    pub ions: u64,
}

struct RouteEntry {
    value: CachedRoute,
    touched: u64,
}

struct RouteLru {
    map: HashMap<RouteKey, RouteEntry>,
    clock: u64,
}

/// Bounded LRU of assembled routes. One mutex guards the whole cache:
/// a hit is a hash probe + tick bump, far below the cost of the
/// scatter/gather it replaces, and router queries already serialize on
/// heavier locks than this.
pub struct RouteCache {
    inner: Mutex<RouteLru>,
    capacity: usize,
}

impl RouteCache {
    /// A cache of at most `capacity` routes; 0 disables it.
    #[must_use]
    pub fn new(capacity: usize) -> RouteCache {
        RouteCache {
            inner: Mutex::new(RouteLru {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
        }
    }

    /// Whether the cache stores anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Routes currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("route cache poisoned").map.len()
    }

    /// Whether no routes are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look `key` up, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &RouteKey) -> Option<CachedRoute> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self.inner.lock().expect("route cache poisoned");
        inner.clock += 1;
        let tick = inner.clock;
        inner.map.get_mut(key).map(|entry| {
            entry.touched = tick;
            entry.value.clone()
        })
    }

    /// Store `value` under `key`, evicting the least recently touched
    /// route at capacity.
    pub fn insert(&self, key: RouteKey, value: CachedRoute) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("route cache poisoned");
        inner.clock += 1;
        let tick = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(
            key,
            RouteEntry {
                value,
                touched: tick,
            },
        );
    }
}

struct Flight {
    /// `None` until the leader publishes; then `Some(outcome)`, where
    /// the outcome is `None` when the leader's fan-out failed.
    result: Mutex<Option<Option<CachedRoute>>>,
    done: Condvar,
}

/// Per-key fan-out coalescing. [`SingleFlight::join`] elects exactly
/// one leader per in-flight route key; everyone else blocks until the
/// leader publishes through its [`FlightGuard`].
#[derive(Default)]
pub struct SingleFlight {
    flights: Mutex<HashMap<RouteKey, Arc<Flight>>>,
}

/// What [`SingleFlight::join`] handed the caller.
pub enum Join<'a> {
    /// This caller must perform the fan-out and publish through the
    /// guard (dropping the guard unpublished counts as failure, so a
    /// panicking leader cannot strand its followers).
    Leader(FlightGuard<'a>),
    /// Another caller led. `Some` carries its published route;
    /// `None` means the leader failed — re-`join` to retry as leader.
    Follower(Option<CachedRoute>),
}

/// The leader's obligation to publish. Alive, it marks the key
/// in-flight; [`FlightGuard::publish`] (or drop, as a failure)
/// releases the key and wakes every follower.
pub struct FlightGuard<'a> {
    owner: &'a SingleFlight,
    key: RouteKey,
    flight: Arc<Flight>,
    published: bool,
}

impl SingleFlight {
    /// Fresh coalescer with nothing in flight.
    #[must_use]
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Join the flight for `key`: the first caller becomes the leader,
    /// later callers block until the leader publishes.
    #[must_use]
    pub fn join(&self, key: RouteKey) -> Join<'_> {
        let flight = {
            let mut flights = self.flights.lock().expect("flight map poisoned");
            match flights.get(&key) {
                Some(flight) => Arc::clone(flight),
                None => {
                    let flight = Arc::new(Flight {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    flights.insert(key.clone(), Arc::clone(&flight));
                    return Join::Leader(FlightGuard {
                        owner: self,
                        key,
                        flight,
                        published: false,
                    });
                }
            }
        };
        let mut result = flight.result.lock().expect("flight result poisoned");
        while result.is_none() {
            result = flight
                .done
                .wait(result)
                .expect("flight result poisoned while waiting");
        }
        Join::Follower(result.clone().expect("loop exits only on Some"))
    }

    /// How many keys are currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("flight map poisoned").len()
    }
}

impl FlightGuard<'_> {
    /// Publish the leader's outcome (`None` = the fan-out failed),
    /// retire the key from the in-flight map, and wake every follower.
    pub fn publish(mut self, outcome: Option<CachedRoute>) {
        self.publish_inner(outcome);
    }

    fn publish_inner(&mut self, outcome: Option<CachedRoute>) {
        if self.published {
            return;
        }
        self.published = true;
        // Retire the key first: a caller arriving after retirement
        // starts a fresh flight, which is correct whether the outcome
        // was success (the route cache already holds the value) or
        // failure (someone must retry the fan-out).
        self.owner
            .flights
            .lock()
            .expect("flight map poisoned")
            .remove(&self.key);
        *self.flight.result.lock().expect("flight result poisoned") = Some(outcome);
        self.flight.done.notify_all();
    }
}

impl Drop for FlightGuard<'_> {
    /// An unpublished guard (leader errored out or panicked) publishes
    /// failure so followers wake and retry instead of blocking forever.
    fn drop(&mut self) {
        self.publish_inner(None);
    }
}

/// Count-min sketch depth (independent hash rows).
const SKETCH_DEPTH: usize = 4;
/// Counters per sketch row.
const SKETCH_WIDTH: usize = 512;
/// Observations between halving decays — keeps estimates tracking the
/// *recent* distribution so promoted states demote when traffic
/// drifts.
const DECAY_EVERY: u64 = 1024;
/// Minimum count-min estimate before a state may be promoted; filters
/// one-off states out of the hot set.
const PROMOTE_MIN: u32 = 2;

struct SketchInner {
    rows: Vec<[u32; SKETCH_WIDTH]>,
    observations: u64,
    /// The promoted states with their estimates at promotion/update
    /// time, at most `k` entries.
    hot: Vec<(StateKey, u32)>,
}

/// Deterministic hot-state tracker: a seeded count-min sketch with
/// halving decay plus an explicit top-K promoted set.
///
/// Everything lives behind one mutex and advances only in
/// [`HotTracker::observe`], so the promoted set is a pure function of
/// the seed and the observation sequence — two trackers with the same
/// seed fed the same keys agree at every step (the restart-determinism
/// guarantee, unit-tested below). Memory is bounded by construction:
/// `SKETCH_DEPTH x SKETCH_WIDTH` u32 counters (8 KiB) + K hot entries.
pub struct HotTracker {
    inner: Mutex<SketchInner>,
    k: usize,
    seed: u64,
}

impl HotTracker {
    /// A tracker promoting at most `k` states; `k == 0` disables it
    /// (every observe returns cold).
    #[must_use]
    pub fn new(k: usize, seed: u64) -> HotTracker {
        HotTracker {
            inner: Mutex::new(SketchInner {
                rows: vec![[0u32; SKETCH_WIDTH]; SKETCH_DEPTH],
                observations: 0,
                hot: Vec::with_capacity(k),
            }),
            k,
            seed,
        }
    }

    /// The promotion budget.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Bytes the tracker can ever hold: the fixed sketch plus the full
    /// top-K list. The deflake guard: growth is impossible, not merely
    /// unlikely.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        SKETCH_DEPTH * SKETCH_WIDTH * std::mem::size_of::<u32>()
            + self.k * std::mem::size_of::<(StateKey, u32)>()
    }

    fn column(&self, key: &StateKey, row: usize) -> usize {
        // Each row hashes with its own derived seed — the independent
        // hash family count-min needs.
        (key.stable_hash(splitmix64(self.seed ^ (row as u64 + 1))) % SKETCH_WIDTH as u64) as usize
    }

    /// Record one observation of `key` and report whether it is hot
    /// (promoted) afterwards.
    pub fn observe(&self, key: &StateKey) -> bool {
        if self.k == 0 {
            return false;
        }
        let mut inner = self.inner.lock().expect("hot tracker poisoned");
        inner.observations += 1;
        if inner.observations.is_multiple_of(DECAY_EVERY) {
            for row in &mut inner.rows {
                for cell in row.iter_mut() {
                    *cell /= 2;
                }
            }
            for (_, estimate) in &mut inner.hot {
                *estimate /= 2;
            }
        }
        let mut estimate = u32::MAX;
        for row in 0..SKETCH_DEPTH {
            let col = self.column(key, row);
            let cell = &mut inner.rows[row][col];
            *cell = cell.saturating_add(1);
            estimate = estimate.min(*cell);
        }
        if let Some(slot) = inner.hot.iter_mut().find(|(k, _)| k == key) {
            slot.1 = estimate;
            return true;
        }
        if estimate < PROMOTE_MIN {
            return false;
        }
        if inner.hot.len() < self.k {
            inner.hot.push((*key, estimate));
            return true;
        }
        // Demote-on-drift: replace the coldest promoted state when the
        // candidate's estimate strictly exceeds it.
        let (coldest, &(_, coldest_estimate)) = inner
            .hot
            .iter()
            .enumerate()
            .min_by_key(|(i, (_, e))| (*e, *i))
            .expect("hot set non-empty when full");
        if estimate > coldest_estimate {
            inner.hot[coldest] = (*key, estimate);
            return true;
        }
        false
    }

    /// Whether `key` is currently promoted (no observation recorded).
    #[must_use]
    pub fn is_hot(&self, key: &StateKey) -> bool {
        self.inner
            .lock()
            .expect("hot tracker poisoned")
            .hot
            .iter()
            .any(|(k, _)| k == key)
    }

    /// The promoted states, hottest first (ties by insertion order).
    #[must_use]
    pub fn hot_states(&self) -> Vec<StateKey> {
        let inner = self.inner.lock().expect("hot tracker poisoned");
        let mut hot = inner.hot.clone();
        hot.sort_by_key(|&(_, e)| std::cmp::Reverse(e));
        hot.into_iter().map(|(k, _)| k).collect()
    }
}

/// Rendezvous (highest-random-weight) choice of the preferred replica
/// of `segment` for `key`: every router, restarted or not, computes
/// the same preference from `(seed, key, segment)` alone, and removing
/// a replica from consideration never reshuffles the preference among
/// the survivors — the affinity analogue of the ring's minimal
/// disruption.
///
/// # Panics
/// Panics if `replicas == 0`.
#[must_use]
pub fn preferred_replica(key: &StateKey, segment: usize, replicas: usize, seed: u64) -> usize {
    assert!(replicas > 0, "a segment has at least one replica");
    let digest = key.stable_hash(seed);
    (0..replicas)
        .max_by_key(|&r| {
            (
                splitmix64(digest ^ splitmix64(((segment as u64) << 32) | r as u64)),
                r,
            )
        })
        .expect("replicas > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(kt: u64, density: u64) -> StateKey {
        StateKey {
            kt_q: kt,
            density_q: density,
            grid_id: 0,
        }
    }

    fn route(kt: u64) -> RouteKey {
        RouteKey {
            state: state(kt, 0),
            selection: None,
        }
    }

    #[test]
    fn route_key_normalizes_selection() {
        let s = state(1, 2);
        let all = RouteKey::new(s, &ElementSelection::All);
        assert_eq!(all.selection, None);
        let a = RouteKey::new(s, &ElementSelection::Elements(vec![26, 8, 26, 2]));
        let b = RouteKey::new(s, &ElementSelection::Elements(vec![2, 8, 26]));
        assert_eq!(a, b, "order and duplicates must not split the key");
        assert_ne!(a, all);
    }

    #[test]
    fn route_cache_hits_share_the_allocation_and_lru_evicts() {
        let c = RouteCache::new(2);
        let bins = Arc::new(vec![1.0, 2.0]);
        c.insert(
            route(0),
            CachedRoute {
                bins: Arc::clone(&bins),
                ions: 7,
            },
        );
        let hit = c.get(&route(0)).expect("hit");
        assert!(Arc::ptr_eq(&hit.bins, &bins), "hits return the same bits");
        assert_eq!(hit.ions, 7);
        c.insert(
            route(1),
            CachedRoute {
                bins: Arc::new(vec![]),
                ions: 0,
            },
        );
        // Refresh 0 after 1 arrived: 1 becomes LRU.
        let _ = c.get(&route(0));
        c.insert(
            route(2),
            CachedRoute {
                bins: Arc::new(vec![]),
                ions: 0,
            },
        );
        assert!(c.get(&route(1)).is_none(), "LRU route evicted");
        assert!(c.get(&route(0)).is_some());
        assert_eq!(c.len(), 2);
        let off = RouteCache::new(0);
        off.insert(
            route(0),
            CachedRoute {
                bins: Arc::new(vec![]),
                ions: 0,
            },
        );
        assert!(!off.enabled());
        assert!(off.get(&route(0)).is_none());
    }

    #[test]
    fn single_flight_leader_publishes_and_failure_reelects() {
        let sf = SingleFlight::new();
        let Join::Leader(guard) = sf.join(route(0)) else {
            panic!("first joiner leads");
        };
        assert_eq!(sf.in_flight(), 1);
        guard.publish(Some(CachedRoute {
            bins: Arc::new(vec![1.0]),
            ions: 1,
        }));
        assert_eq!(sf.in_flight(), 0, "publishing retires the key");
        // A failed leader (guard dropped unpublished) hands leadership
        // to the next joiner instead of caching the failure.
        let Join::Leader(failed) = sf.join(route(0)) else {
            panic!("retired key re-elects a leader");
        };
        drop(failed);
        assert_eq!(sf.in_flight(), 0);
        assert!(matches!(sf.join(route(0)), Join::Leader(_)));
    }

    #[test]
    fn single_flight_coalesces_concurrent_followers() {
        let sf = Arc::new(SingleFlight::new());
        let Join::Leader(guard) = sf.join(route(9)) else {
            panic!("first joiner leads");
        };
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let sf = Arc::clone(&sf);
                std::thread::spawn(move || match sf.join(route(9)) {
                    Join::Follower(result) => result.expect("leader published a value").ions,
                    Join::Leader(_) => panic!("key is in flight; nobody else may lead"),
                })
            })
            .collect();
        // Give followers time to block on the flight.
        std::thread::sleep(std::time::Duration::from_millis(10));
        guard.publish(Some(CachedRoute {
            bins: Arc::new(vec![]),
            ions: 42,
        }));
        for f in followers {
            assert_eq!(f.join().expect("follower thread"), 42);
        }
    }

    #[test]
    fn hot_tracker_is_restart_deterministic_for_a_fixed_seed() {
        // The same seed fed the same observation sequence must agree
        // at every step — a restarted router re-learns identically.
        let a = HotTracker::new(2, 17);
        let b = HotTracker::new(2, 17);
        let keys: Vec<StateKey> = (0..40u64)
            .map(|i| state(i % 5, (i * i) % 3)) // skewed repeats
            .collect();
        for key in &keys {
            assert_eq!(a.observe(key), b.observe(key), "diverged at {key:?}");
        }
        assert_eq!(a.hot_states(), b.hot_states());
    }

    #[test]
    fn hot_tracker_promotes_hot_demotes_on_drift_and_bounds_memory() {
        let t = HotTracker::new(1, 3);
        let hot = state(1, 1);
        let cold = state(2, 2);
        assert!(!t.observe(&hot), "first sighting is below PROMOTE_MIN");
        assert!(t.observe(&hot), "second sighting promotes");
        assert!(t.is_hot(&hot));
        assert!(!t.observe(&cold), "full hot set rejects a colder state");
        // Traffic drifts: the former cold state overtakes and evicts.
        for _ in 0..3 {
            let _ = t.observe(&cold);
        }
        assert!(t.is_hot(&cold), "drifted-hot state takes the slot");
        assert!(!t.is_hot(&hot), "former hot state demoted");
        // Deflake guard: the sketch is a compile-time bound, well under
        // 16 KiB + the K entries.
        assert!(t.memory_bytes() <= 16 * 1024, "{}", t.memory_bytes());
        // k == 0 disables tracking entirely.
        let off = HotTracker::new(0, 3);
        assert!(!off.observe(&hot));
        assert!(!off.is_hot(&hot));
    }

    #[test]
    fn preferred_replica_is_deterministic_and_spreads_states() {
        let key = state(5, 9);
        let p = preferred_replica(&key, 0, 4, 17);
        assert_eq!(p, preferred_replica(&key, 0, 4, 17), "pure function");
        assert!(p < 4);
        // Across many states, every replica of a 4-replica segment
        // should be somebody's preference (rendezvous spreads load).
        let mut seen = [false; 4];
        for i in 0..64u64 {
            seen[preferred_replica(&state(i, 0), 1, 4, 17)] = true;
        }
        assert_eq!(seen, [true; 4], "rendezvous must use all replicas");
        // One replica: the only possible answer.
        assert_eq!(preferred_replica(&key, 3, 1, 17), 0);
    }
}
