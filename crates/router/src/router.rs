//! The shard router: consistent-hash ion ownership, replica
//! selection, scatter/gather fan-out, health-aware re-routing, and the
//! capacity rebalancer.
//!
//! # Routing
//!
//! A [`HashRing`] seeded from [`RouterConfig::ring_seed`] maps every
//! ion index onto a segment; the live assignment is materialised in a
//! routing **table** (`ion -> segment`) so the rebalancer can migrate
//! individual ions off the ring's default placement. A request reads
//! the table **once**: all its ions' owners are fixed for the
//! request's lifetime even if a rebalance swaps the table mid-flight,
//! which is what makes migration exactly-once — a request computes on
//! the owner it saw, never on both.
//!
//! # Bitwise parity with the single-engine service
//!
//! Shards answer **per-ion partials**; the router folds them itself
//! through [`rrc_service::assemble`] in ascending ion order from a
//! zero vector — the identical floating-point op sequence the
//! single-engine service executes. With the engines configured for
//! the deterministic kernel (single-chunk launches make each partial
//! placement-invariant), a sharded response is bitwise identical to
//! the unsharded one regardless of shard count, replica choice, or
//! migration history.
//!
//! # Replication and health
//!
//! Each segment is served by `replicas` identical engines. A read
//! picks the least-loaded replica (in-flight envelope count, ties
//! broken by a consistent hash of the quantized state) among those the
//! health ladder has not demoted — a replica whose devices are all
//! quarantined/lost routes around until its CPU-fallback siblings are
//! also exhausted, in which case it still serves (its CPU path
//! answers). Failed or unanswered ions re-route to a different
//! replica up to [`RouterConfig::reroute_retries`] times.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use atomdb::AtomDatabase;
use desim::{Priority, VirtualClock};
use gpu_sim::{DeviceRule, Precision};
use hybrid_sched::{BreakerConfig, BreakerState, CircuitBreaker};
use hybrid_spectral::engine::{EngineConfig, EngineReport};
use hybrid_spectral::ion_task_cost;
use mpi_sim::{OpenGather, ScatterGather};
use rrc_service::{
    assemble, selected_ions, CacheKey, Quantizer, ServiceError, SpectrumRequest, SpectrumResponse,
    StateKey,
};
use rrc_spectral::{EnergyGrid, GridPoint, Integrator};

use crate::locality::{
    preferred_replica, CachedRoute, HotTracker, Join, RouteCache, RouteKey, SingleFlight,
};
use crate::metrics::{ReplicaSnapshot, RouterMetrics, RouterSnapshot, SegmentSnapshot};
use crate::resilience::{QuantileWindow, TokenBucket};
use crate::ring::{splitmix64, HashRing};
use crate::shard::{ReplicaSpec, ShardReplica, ShardRequest, ShardResponse};

/// Cache entries to warm-push, grouped by owning segment.
type WarmBatches = BTreeMap<usize, Vec<(CacheKey, Arc<Vec<f64>>)>>;

/// Configuration of a [`ShardRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-replica engine template (every replica starts an identical
    /// engine; the `Arc`ed atomic database is shared, devices are not).
    pub engine: EngineConfig,
    /// Energy grids a request may name by index.
    pub grids: Vec<EnergyGrid>,
    /// Ring segments (shards).
    pub shards: usize,
    /// Replicas per segment.
    pub replicas: usize,
    /// Per-replica ion-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Per-replica cache shard count.
    pub cache_shards: usize,
    /// Mantissa bits dropped when quantizing plasma states.
    pub quantize_drop_bits: u32,
    /// Capacity of each replica's request lane.
    pub lane_depth: usize,
    /// Shard-internal engine re-fan-out budget (mirrors
    /// [`rrc_service::ServiceConfig::fanout_retries`]).
    pub fanout_retries: u32,
    /// How many times the router re-routes failed/unanswered ions to a
    /// different replica before refusing with
    /// [`ServiceError::DeviceFailed`].
    pub reroute_retries: u32,
    /// Hash-ring seed: restarts must reuse the seed for stable
    /// key-to-shard routing.
    pub ring_seed: u64,
    /// Virtual ring points per segment.
    pub vnodes: u32,
    /// A segment whose capacity cost exceeds `rebalance_factor x` the
    /// mean triggers migration in [`ShardRouter::rebalance`].
    pub rebalance_factor: f64,
    /// Longest a rebalance waits for the migrated-from segment to
    /// drain its in-flight envelopes.
    pub drain_timeout: Duration,
    /// Route reads to the rendezvous-preferred replica of each segment
    /// (state affinity) instead of spreading purely by load. Falls
    /// back to the baseline untried→non-demoted→least-outstanding
    /// order whenever the preferred replica is already tried, demoted,
    /// or saturated — so affinity can only relocate work, never strand
    /// it.
    pub affinity: bool,
    /// In-flight envelopes on the preferred replica at or above which
    /// affinity falls back to the baseline order (backpressure so a
    /// hot state cannot bury its home replica).
    pub affinity_saturation: u64,
    /// Assembled-route cache entries at the router (0 disables — the
    /// default, since whole-response caching is only sound per
    /// normalized route key and costs memory per distinct route).
    pub route_cache_capacity: usize,
    /// Hot-state promotion budget: the top-K sketch-estimated states
    /// get their per-ion partials replicated to every sibling replica
    /// after a fan-out (0 disables hot-state replication).
    pub hot_state_k: usize,
    /// Ship the donor's cached partials for migrated ions to the new
    /// owner's replicas during [`ShardRouter::rebalance`], so a
    /// migration does not manufacture a cold start.
    pub migration_handoff: bool,
    /// Straggler quantile of a replica's recent latencies at which an
    /// unanswered part is hedged to a sibling (0 disables hedging;
    /// hedging also needs `replicas >= 2`).
    pub hedge_quantile: f64,
    /// Floor on the straggler wait — no part hedges before waiting at
    /// least this long, even when a replica's latency window says it
    /// is usually faster.
    pub hedge_min_wait: Duration,
    /// Hedge token-bucket capacity: the burst of speculative
    /// duplicates the router may have in flight before refilling.
    pub hedge_tokens: f64,
    /// Hedge tokens minted per clock second (the sustained duplicate
    /// rate bound).
    pub hedge_refill_per_sec: f64,
    /// Per-replica circuit-breaker tuning (rolling failure window,
    /// trip threshold, probe cooldown).
    pub breaker: BreakerConfig,
    /// The clock breaker cooldowns and the hedge bucket read — a
    /// manual [`VirtualClock`] makes their decisions replayable in
    /// tests.
    pub clock: VirtualClock,
}

impl RouterConfig {
    /// A bitwise-deterministic sharded tier over `db` and `grids`:
    /// each replica runs the fused deterministic kernel with the same
    /// Simpson rule on devices and the CPU fallback, so responses are
    /// identical regardless of shard count or placement (and equal to
    /// the single-engine [`rrc_service::SpectralService`] under
    /// [`rrc_service::ServiceConfig::deterministic`]).
    #[must_use]
    pub fn deterministic(db: Arc<AtomDatabase>, grids: Vec<EnergyGrid>) -> RouterConfig {
        let workers = 2;
        RouterConfig {
            engine: EngineConfig {
                db,
                workers,
                gpus: 2,
                max_queue_len: 6,
                policy: hybrid_sched::SchedPolicy::CostAware,
                gpu_rule: DeviceRule::Simpson { panels: 64 },
                gpu_precision: Precision::Double,
                cpu_integrator: Integrator::Simpson { panels: 64 },
                fused: true,
                async_window: 1,
                queue_depth: 2 * workers,
                deterministic_kernel: true,
                math: quadrature::MathMode::Exact,
                pack_threshold: 0,
                pack_max: 8,
                resilience: hybrid_spectral::ResilienceConfig::default(),
                tuning: hybrid_sched::TuningConfig::default(),
            },
            grids,
            shards: 2,
            replicas: 1,
            cache_capacity: 4096,
            cache_shards: 8,
            quantize_drop_bits: 0,
            lane_depth: 16,
            fanout_retries: 2,
            reroute_retries: 2,
            ring_seed: 17,
            vnodes: 64,
            rebalance_factor: 1.25,
            drain_timeout: Duration::from_secs(5),
            affinity: true,
            affinity_saturation: 4,
            route_cache_capacity: 0,
            hot_state_k: 0,
            migration_handoff: true,
            hedge_quantile: 0.0,
            hedge_min_wait: Duration::from_millis(10),
            hedge_tokens: 32.0,
            hedge_refill_per_sec: 8.0,
            breaker: BreakerConfig::default(),
            clock: VirtualClock::real(),
        }
    }
}

/// What one [`ShardRouter::rebalance`] pass migrated.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Segment the ions moved off (the heavy one).
    pub from: usize,
    /// Segment that took them over (the lightest one).
    pub to: usize,
    /// Migrated ion indices, ascending.
    pub ions: Vec<usize>,
    /// Capacity cost that moved with them.
    pub cost_moved: u64,
    /// Unique donor cache entries (one per `(ion, state)`) shipped to
    /// the new owner's replicas before the drain — 0 when
    /// [`RouterConfig::migration_handoff`] is off or the donor held
    /// nothing for the migrated ions.
    pub handed_off: u64,
    /// Whether the old owner drained its in-flight envelopes within
    /// the configured timeout (the handoff is correct either way — a
    /// straggler request that routed before the swap still completes
    /// on the old owner; `false` only means overlap lasted longer
    /// than the drain window).
    pub drained: bool,
}

/// Everything [`ShardRouter::shutdown`] reports after draining.
#[derive(Debug, Clone)]
pub struct RouterReport {
    /// The tier rollup taken just before teardown.
    pub snapshot: RouterSnapshot,
    /// Every replica engine's drained report, in flat
    /// `segment * replicas + replica` order.
    pub engines: Vec<EngineReport>,
    /// Sum of the engines' leaked memory grants — must be zero.
    pub leaked_grants: u64,
}

/// The running sharded tier. Submit queries from any thread; shut
/// down (or drop) to close the lanes, join the workers, and drain
/// every engine.
pub struct ShardRouter {
    db: Arc<AtomDatabase>,
    grids: Vec<EnergyGrid>,
    quantizer: Quantizer,
    replicas_per_segment: usize,
    reroute_retries: u32,
    rebalance_factor: f64,
    drain_timeout: Duration,
    ring: HashRing,
    /// Live ion ownership: `table[ion] = segment`. Starts at the
    /// ring's placement; the rebalancer migrates entries.
    table: RwLock<Vec<usize>>,
    /// Static per-ion capacity costs at the reference plasma state.
    costs: Vec<u64>,
    sg: ScatterGather<ShardRequest, ShardResponse>,
    replicas: Vec<ShardReplica>,
    metrics: RouterMetrics,
    ring_seed: u64,
    affinity: bool,
    affinity_saturation: u64,
    migration_handoff: bool,
    route_cache: RouteCache,
    flight: SingleFlight,
    hot: HotTracker,
    clock: VirtualClock,
    hedge_quantile: f64,
    hedge_min_wait_s: f64,
    hedge_bucket: TokenBucket,
    /// One breaker per flat `segment * replicas + replica` slot.
    breakers: Vec<CircuitBreaker>,
    /// Tier-wide rolling window of part latencies. Deliberately global,
    /// not per-lane: a straggler is a part that is slow relative to how
    /// the *tier* usually answers — a per-lane baseline would let a
    /// persistently slow replica normalize its own slowness and never
    /// be hedged.
    lat: QuantileWindow,
}

/// The fixed plasma state the capacity model prices ions at. Absolute
/// scale is irrelevant to balancing — only the ratios matter — so one
/// representative mid-range coronal state serves all workloads.
const CAPACITY_REF_POINT: GridPoint = GridPoint {
    temperature_k: 1.0e7,
    density_cm3: 1.0,
    time_s: 0.0,
    index: 0,
};

/// One logical scattered part of a gather round: the ions it covers
/// and whether a winner has landed / a hedge has been attempted.
struct Slot {
    /// Owning segment (where a hedge must find a sibling).
    segment: usize,
    /// Ions this part covers, ascending.
    ions: Vec<usize>,
    /// Whether a first writer already resolved this slot.
    resolved: bool,
    /// Whether this slot has spent its one hedge attempt.
    hedged: bool,
}

/// Bookkeeping for one sent part (primary or hedge), indexed by the
/// gather's resolution seq.
#[derive(Clone, Copy)]
struct SeqInfo {
    /// Flat replica lane the part went to.
    lane: usize,
    /// Logical slot the part serves.
    slot: usize,
    /// Seconds after the round started that this part was sent.
    sent: f64,
    /// Whether this part is a speculative duplicate.
    hedge: bool,
}

/// What one fan-out produced, before response assembly decides what to
/// cache, warm, or return.
struct FanOutcome {
    /// Folded spectrum bins.
    bins: Vec<f64>,
    /// Ions the engines computed this time.
    computed: u64,
    /// Ions answered from replica caches.
    from_cache: u64,
    /// Per-ion partials (the replicas' cache entries), for hot-state
    /// warming.
    partials: BTreeMap<usize, Arc<Vec<f64>>>,
    /// The owner segment each ion routed to this request.
    owner: BTreeMap<usize, usize>,
}

impl ShardRouter {
    /// Bring the tier up: ring, routing table, capacity model, one
    /// scatter/gather fabric, and `shards x replicas` engines.
    ///
    /// # Panics
    /// Panics if `config.grids` is empty or `shards`/`replicas` is 0.
    #[must_use]
    pub fn start(config: RouterConfig) -> ShardRouter {
        assert!(!config.grids.is_empty(), "router needs at least one grid");
        assert!(config.shards >= 1, "router needs at least one shard");
        assert!(
            config.replicas >= 1,
            "each shard needs at least one replica"
        );
        let db = Arc::clone(&config.engine.db);
        let bin_tables: Vec<Arc<Vec<(f64, f64)>>> = config
            .grids
            .iter()
            .map(|g| Arc::new(g.bin_pairs()))
            .collect();
        let ring = HashRing::new(config.ring_seed, config.shards, config.vnodes);
        let table: Vec<usize> = (0..db.ions().len())
            .map(|ion| ring.owner(ion as u64))
            .collect();
        let capacity_bins = &bin_tables[0];
        let costs: Vec<u64> = (0..db.ions().len())
            .map(|ion| {
                let levels = db.levels_by_index(ion).len();
                ion_task_cost(&db, ion, 0..levels, &CAPACITY_REF_POINT, capacity_bins)
            })
            .collect();
        let sg = ScatterGather::new(config.shards * config.replicas, config.lane_depth.max(1));
        let mut replicas = Vec::with_capacity(config.shards * config.replicas);
        for segment in 0..config.shards {
            for replica in 0..config.replicas {
                let lane = sg.lane(segment * config.replicas + replica);
                replicas.push(ShardReplica::start(
                    ReplicaSpec {
                        segment,
                        replica,
                        engine: config.engine.clone(),
                        cache_capacity: config.cache_capacity,
                        cache_shards: config.cache_shards,
                        fanout_retries: config.fanout_retries,
                        grids: config.grids.clone(),
                        bin_tables: bin_tables.clone(),
                    },
                    lane,
                ));
            }
        }
        ShardRouter {
            db,
            grids: config.grids,
            quantizer: Quantizer::new(config.quantize_drop_bits),
            replicas_per_segment: config.replicas,
            reroute_retries: config.reroute_retries,
            rebalance_factor: config.rebalance_factor.max(1.0),
            drain_timeout: config.drain_timeout,
            ring,
            table: RwLock::new(table),
            costs,
            sg,
            replicas,
            metrics: RouterMetrics::new(),
            ring_seed: config.ring_seed,
            affinity: config.affinity,
            affinity_saturation: config.affinity_saturation.max(1),
            migration_handoff: config.migration_handoff,
            route_cache: RouteCache::new(config.route_cache_capacity),
            flight: SingleFlight::new(),
            // The hot tracker reuses the ring seed: one seed in the
            // config reproduces the whole routing + locality state on
            // restart.
            hot: HotTracker::new(config.hot_state_k, config.ring_seed),
            clock: config.clock,
            hedge_quantile: config.hedge_quantile.clamp(0.0, 1.0),
            hedge_min_wait_s: config.hedge_min_wait.as_secs_f64(),
            hedge_bucket: TokenBucket::new(config.hedge_tokens, config.hedge_refill_per_sec),
            breakers: (0..config.shards * config.replicas)
                .map(|_| CircuitBreaker::new(config.breaker))
                .collect(),
            lat: QuantileWindow::new(256),
        }
    }

    /// Ring segments (shards).
    #[must_use]
    pub fn segments(&self) -> usize {
        self.ring_segments()
    }

    fn ring_segments(&self) -> usize {
        self.replicas.len() / self.replicas_per_segment
    }

    /// Replicas per segment.
    #[must_use]
    pub fn replicas_per_segment(&self) -> usize {
        self.replicas_per_segment
    }

    /// The seeded consistent-hash ring (the routing table's initial
    /// placement; restarts with the same seed reproduce it).
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The segment currently owning `ion`.
    ///
    /// # Panics
    /// Panics if `ion` is out of range for the database.
    #[must_use]
    pub fn segment_of(&self, ion: usize) -> usize {
        self.table.read().expect("routing table poisoned")[ion]
    }

    /// A replica handle (fault injection, health and scheduler
    /// introspection for tests, benches, and chaos drills).
    ///
    /// # Panics
    /// Panics if `segment`/`replica` is out of range.
    #[must_use]
    pub fn replica(&self, segment: usize, replica: usize) -> &ShardReplica {
        assert!(replica < self.replicas_per_segment, "replica out of range");
        &self.replicas[segment * self.replicas_per_segment + replica]
    }

    /// The circuit breaker guarding one replica (state/counters for
    /// tests and benches).
    ///
    /// # Panics
    /// Panics if `segment`/`replica` is out of range.
    #[must_use]
    pub fn breaker(&self, segment: usize, replica: usize) -> &CircuitBreaker {
        assert!(replica < self.replicas_per_segment, "replica out of range");
        &self.breakers[segment * self.replicas_per_segment + replica]
    }

    /// The clock breaker cooldowns and the hedge token bucket read.
    #[must_use]
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Hedge tokens currently available (refilled to the clock's now).
    #[must_use]
    pub fn hedge_tokens_available(&self) -> f64 {
        self.hedge_bucket.available(self.clock.now())
    }

    /// The scatter/gather fabric's fault hook: install a seeded
    /// [`mpi_sim::LaneFaultPlan`] on the flat
    /// `segment * replicas + replica` lane (chaos drills: stalls,
    /// drops, slow-replica skew).
    ///
    /// # Panics
    /// Panics if `lane` is out of range.
    pub fn set_lane_faults(&self, lane: usize, plan: mpi_sim::LaneFaultPlan) {
        self.sg.set_lane_faults(lane, plan);
    }

    /// Answer one spectral query through the sharded tier.
    ///
    /// With the route cache enabled, a request whose normalized route
    /// key was answered before returns a clone of the cached bins with
    /// **zero** scatter/gather; concurrent misses for one key coalesce
    /// into a single fan-out (the followers reuse the leader's
    /// result). Both shortcuts return the exact bits a fresh fan-out
    /// would have produced (deterministic kernel assumed), so the
    /// bitwise-parity invariant survives every path.
    ///
    /// # Errors
    /// [`ServiceError::UnknownGrid`] for an out-of-range grid id;
    /// [`ServiceError::DeviceFailed`] when some ion stayed unanswered
    /// after the re-route budget (every owning segment's replicas
    /// failed it); [`ServiceError::Closed`] after shutdown began.
    pub fn query(&self, request: &SpectrumRequest) -> Result<SpectrumResponse, ServiceError> {
        if request.grid_id >= self.grids.len() {
            return Err(ServiceError::UnknownGrid);
        }
        if self.sg.is_closed() {
            return Err(ServiceError::Closed);
        }
        let started = Instant::now();
        self.metrics.on_request();
        let key = self.quantizer.state_key(&request.point, request.grid_id);
        let point = self.quantizer.representative(&key);

        if !self.route_cache.enabled() {
            let outcome = self.fan_out(request, &key, &point)?;
            let response = self.finish(request, &key, outcome);
            self.metrics.on_responded(started.elapsed().as_secs_f64());
            return Ok(response);
        }

        let route_key = RouteKey::new(key, &request.elements);
        if let Some(hit) = self.route_cache.get(&route_key) {
            self.metrics.on_route_hit();
            let response = Self::replay(request, &hit);
            self.metrics.on_responded(started.elapsed().as_secs_f64());
            return Ok(response);
        }
        self.metrics.on_route_miss();
        loop {
            match self.flight.join(route_key.clone()) {
                Join::Leader(guard) => {
                    // Re-probe before fanning out: a leader elected
                    // after a predecessor published necessarily sees
                    // the predecessor's insert (insertion precedes
                    // flight retirement), so a thread whose first
                    // probe raced the publish coalesces here instead
                    // of duplicating the fan-out.
                    if let Some(hit) = self.route_cache.get(&route_key) {
                        self.metrics.on_route_hit();
                        guard.publish(Some(hit.clone()));
                        let response = Self::replay(request, &hit);
                        self.metrics.on_responded(started.elapsed().as_secs_f64());
                        return Ok(response);
                    }
                    // An erroring fan-out drops the guard, which
                    // publishes failure — a waiting follower retries
                    // as the next leader instead of inheriting the
                    // refusal.
                    let outcome = self.fan_out(request, &key, &point)?;
                    let response = self.finish(request, &key, outcome);
                    let cached = CachedRoute {
                        bins: Arc::new(response.bins.clone()),
                        ions: response.ions_computed + response.ions_from_cache,
                    };
                    self.route_cache.insert(route_key, cached.clone());
                    guard.publish(Some(cached));
                    self.metrics.on_responded(started.elapsed().as_secs_f64());
                    return Ok(response);
                }
                Join::Follower(Some(route)) => {
                    self.metrics.on_coalesced();
                    let response = Self::replay(request, &route);
                    self.metrics.on_responded(started.elapsed().as_secs_f64());
                    return Ok(response);
                }
                // The leader failed: loop to re-join — this caller
                // becomes the next leader (or follows a newer one).
                Join::Follower(None) => {}
            }
        }
    }

    /// A response replayed from a cached route: the shared bins cloned
    /// (identical bits), every covered ion accounted as cached.
    fn replay(request: &SpectrumRequest, route: &CachedRoute) -> SpectrumResponse {
        SpectrumResponse {
            bins: route.bins.as_ref().clone(),
            grid_id: request.grid_id,
            ions_computed: 0,
            ions_from_cache: route.ions,
            caller_ran: false,
        }
    }

    /// Turn a fan-out's outcome into the response; on the way, feed
    /// the hot-state tracker and replicate a hot state's partials to
    /// sibling replicas.
    fn finish(
        &self,
        request: &SpectrumRequest,
        key: &StateKey,
        outcome: FanOutcome,
    ) -> SpectrumResponse {
        if self.hot.k() > 0 && self.hot.observe(key) {
            self.warm_hot(key, &outcome);
        }
        SpectrumResponse {
            bins: outcome.bins,
            grid_id: request.grid_id,
            ions_computed: outcome.computed,
            ions_from_cache: outcome.from_cache,
            caller_ran: false,
        }
    }

    /// One full scatter/gather fan-out with health-aware re-routing,
    /// straggler hedging, and per-replica breaker accounting — the
    /// only place shard queries are issued.
    fn fan_out(
        &self,
        request: &SpectrumRequest,
        key: &StateKey,
        point: &GridPoint,
    ) -> Result<FanOutcome, ServiceError> {
        self.metrics.on_fanout();
        let ions = selected_ions(&self.db, request);
        let grid = &self.grids[request.grid_id];
        let priority = request.priority;
        let deadline = request.deadline_secs();
        // Hedging needs a sibling to hedge onto and an enabled
        // quantile; with either missing the round degenerates to the
        // plain blocking gather.
        let hedging = self.hedge_quantile > 0.0 && self.replicas_per_segment > 1;

        // ONE routing-table read per request: each ion's owner is
        // fixed for this request's lifetime even if a rebalance swaps
        // the table mid-flight. Exactly-once migration follows — a
        // request computes on the owner it saw, never on both.
        let owner: BTreeMap<usize, usize> = {
            let table = self.table.read().expect("routing table poisoned");
            ions.iter().map(|&ion| (ion, table[ion])).collect()
        };

        let mut partials: BTreeMap<usize, Arc<Vec<f64>>> = BTreeMap::new();
        let mut computed = 0u64;
        let mut from_cache = 0u64;
        let mut pending: Vec<usize> = ions.clone();
        let mut tried: Vec<Vec<usize>> = vec![Vec::new(); self.ring_segments()];
        let mut attempt = 0u32;
        loop {
            let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for &ion in &pending {
                groups.entry(owner[&ion]).or_default().push(ion);
            }
            let mut parts: Vec<(usize, ShardRequest)> = Vec::with_capacity(groups.len());
            let mut slots: Vec<Slot> = Vec::with_capacity(groups.len());
            let mut seq_info: Vec<SeqInfo> = Vec::with_capacity(groups.len());
            for (segment, seg_ions) in groups {
                let replica = self.pick_replica(segment, key, &tried[segment]);
                tried[segment].push(replica);
                let flat = segment * self.replicas_per_segment + replica;
                self.replicas[flat].add_outstanding();
                parts.push((
                    flat,
                    ShardRequest::Query {
                        key: *key,
                        point: *point,
                        ions: seg_ions.clone(),
                        priority,
                        deadline,
                    },
                ));
                seq_info.push(SeqInfo {
                    lane: flat,
                    slot: slots.len(),
                    sent: 0.0,
                    hedge: false,
                });
                slots.push(Slot {
                    segment,
                    ions: seg_ions,
                    resolved: false,
                    hedged: false,
                });
            }
            if attempt > 0 {
                self.metrics.on_reroute(parts.len() as u64);
            }
            // Each slot may hedge at most once per round.
            let hedge_slots = if hedging { parts.len() } else { 0 };
            let open = self.sg.scatter_open(parts, hedge_slots);
            pending.clear();
            self.gather_round(
                open,
                key,
                point,
                priority,
                deadline,
                &mut slots,
                &mut seq_info,
                &mut tried,
                &mut partials,
                &mut pending,
                &mut computed,
                &mut from_cache,
                hedging,
            );
            if pending.is_empty() {
                break;
            }
            if attempt >= self.reroute_retries {
                self.metrics.on_device_failed();
                return Err(ServiceError::DeviceFailed);
            }
            attempt += 1;
        }

        let bins = assemble(grid.bins(), &ions, &partials);
        Ok(FanOutcome {
            bins,
            computed,
            from_cache,
            partials,
            owner,
        })
    }

    /// Drain one scatter round: receive resolutions (**first writer
    /// wins** per slot — a later duplicate from a hedge or its
    /// straggling original is discarded, so hedging can reorder timing
    /// but never bits), hedge overdue parts under the token budget,
    /// and record each resolution's latency and breaker outcome
    /// against the replica that produced it. Unanswered ions land in
    /// `pending` for the caller's re-route pass.
    #[allow(clippy::too_many_arguments)]
    fn gather_round(
        &self,
        mut open: OpenGather<ShardResponse>,
        key: &StateKey,
        point: &GridPoint,
        priority: Priority,
        deadline: f64,
        slots: &mut [Slot],
        seq_info: &mut Vec<SeqInfo>,
        tried: &mut [Vec<usize>],
        partials: &mut BTreeMap<usize, Arc<Vec<f64>>>,
        pending: &mut Vec<usize>,
        computed: &mut u64,
        from_cache: &mut u64,
        hedging: bool,
    ) {
        let started = Instant::now();
        let mut unresolved = slots.len();
        // Exit as soon as every slot has a winner: straggling
        // duplicates resolve into the (refcounted) reply queue after
        // this gather is dropped and are simply never read.
        while unresolved > 0 {
            let hedge_armed = hedging
                && open.hedge_slots_left() > 0
                && slots.iter().any(|s| !s.resolved && !s.hedged);
            let (seq, answer) = if hedge_armed {
                match open.recv_timeout(self.next_hedge_wait(slots, seq_info, started)) {
                    Some(resolution) => resolution,
                    None => {
                        self.hedge_due(
                            &mut open, key, point, priority, deadline, slots, seq_info, tried,
                            started,
                        );
                        continue;
                    }
                }
            } else {
                open.recv()
            };
            let info = seq_info[seq];
            let now = self.clock.now();
            self.lat.record(started.elapsed().as_secs_f64() - info.sent);
            // A reply with failed ions still counts against the
            // replica: its devices are erring even though the lane is
            // alive.
            match &answer {
                Some(resp) if resp.failed.is_empty() => {
                    self.breakers[info.lane].record_success(now);
                }
                _ => self.breakers[info.lane].record_failure(now),
            }
            if answer.is_none() {
                // The envelope never reached the worker (dropped at
                // delivery, closed lane, dead worker), so the worker
                // cannot balance the router's in-flight increment.
                self.replicas[info.lane].sub_outstanding();
            }
            if slots[info.slot].resolved {
                continue;
            }
            slots[info.slot].resolved = true;
            unresolved -= 1;
            if info.hedge && answer.is_some() {
                self.metrics.on_hedge_win();
            }
            match answer {
                Some(resp) => {
                    *computed += resp.computed;
                    *from_cache += resp.from_cache;
                    for (ion, partial) in resp.partials {
                        partials.insert(ion, partial);
                    }
                    pending.extend(resp.failed);
                }
                // Lane refused or the worker died before replying: the
                // whole part re-routes to a sibling replica.
                None => pending.extend(slots[info.slot].ions.iter().copied()),
            }
        }
        // Every slot has a winner; drain whatever straggler duplicates
        // already resolved so their breaker/latency/in-flight
        // accounting is not lost (later ones are simply never read —
        // their workers balance the in-flight count themselves).
        while let Some((seq, answer)) = open.recv_timeout(Duration::ZERO) {
            let info = seq_info[seq];
            let now = self.clock.now();
            self.lat.record(started.elapsed().as_secs_f64() - info.sent);
            match &answer {
                Some(resp) if resp.failed.is_empty() => {
                    self.breakers[info.lane].record_success(now);
                }
                _ => self.breakers[info.lane].record_failure(now),
            }
            if answer.is_none() {
                self.replicas[info.lane].sub_outstanding();
            }
        }
    }

    /// How long to wait for the next resolution before re-checking
    /// stragglers: until the earliest un-hedged slot crosses its
    /// replica's straggler threshold (clamped to a sane polling band).
    fn next_hedge_wait(&self, slots: &[Slot], seq_info: &[SeqInfo], started: Instant) -> Duration {
        let elapsed = started.elapsed().as_secs_f64();
        let mut earliest = f64::INFINITY;
        for info in seq_info {
            if info.hedge || slots[info.slot].resolved || slots[info.slot].hedged {
                continue;
            }
            earliest = earliest.min(info.sent + self.straggler_threshold());
        }
        Duration::from_secs_f64((earliest - elapsed).clamp(5e-4, 0.05))
    }

    /// Hedge every overdue slot: speculatively re-send its work to an
    /// untried sibling replica, spending one token per hedge. A slot
    /// gets exactly one hedge attempt per round — denied tokens and
    /// exhausted siblings are final for the round, not retried in a
    /// loop.
    #[allow(clippy::too_many_arguments)]
    fn hedge_due(
        &self,
        open: &mut OpenGather<ShardResponse>,
        key: &StateKey,
        point: &GridPoint,
        priority: Priority,
        deadline: f64,
        slots: &mut [Slot],
        seq_info: &mut Vec<SeqInfo>,
        tried: &mut [Vec<usize>],
        started: Instant,
    ) {
        let elapsed = started.elapsed().as_secs_f64();
        let primaries = seq_info.len();
        for seq in 0..primaries {
            let info = seq_info[seq];
            if info.hedge || slots[info.slot].resolved || slots[info.slot].hedged {
                continue;
            }
            if elapsed < info.sent + self.straggler_threshold() {
                continue;
            }
            slots[info.slot].hedged = true;
            let segment = slots[info.slot].segment;
            let sibling = self.pick_replica(segment, key, &tried[segment]);
            if tried[segment].contains(&sibling) {
                // Every sibling already carries this work — nothing
                // fresh to hedge onto.
                continue;
            }
            if !self.hedge_bucket.try_take(self.clock.now()) {
                self.metrics.on_hedge_denied();
                continue;
            }
            let flat = segment * self.replicas_per_segment + sibling;
            let req = ShardRequest::Query {
                key: *key,
                point: *point,
                ions: slots[info.slot].ions.clone(),
                priority,
                deadline,
            };
            let Some(new_seq) = open.send_more(&self.sg, flat, req) else {
                continue;
            };
            tried[segment].push(sibling);
            self.replicas[flat].add_outstanding();
            seq_info.push(SeqInfo {
                lane: flat,
                slot: info.slot,
                sent: elapsed,
                hedge: true,
            });
            debug_assert_eq!(new_seq + 1, seq_info.len());
            self.metrics.on_hedge();
        }
    }

    /// The wait beyond which a part counts as straggling: the
    /// configured quantile of the tier's recent part latencies,
    /// floored at the configured minimum wait (which also covers the
    /// cold window at startup).
    fn straggler_threshold(&self) -> f64 {
        self.lat
            .quantile(self.hedge_quantile)
            .map_or(self.hedge_min_wait_s, |q| q.max(self.hedge_min_wait_s))
    }

    /// Replicate a hot state's per-ion partials to every replica of
    /// each owning segment. The serving replica already holds them —
    /// its `warm_insert` no-ops — so the push only fills siblings.
    fn warm_hot(&self, key: &StateKey, outcome: &FanOutcome) {
        let mut per_segment = WarmBatches::new();
        for (&ion, partial) in &outcome.partials {
            per_segment.entry(outcome.owner[&ion]).or_default().push((
                CacheKey {
                    ion_index: ion,
                    state: *key,
                },
                Arc::clone(partial),
            ));
        }
        let warmed = self.warm_segments(&per_segment);
        if warmed > 0 {
            self.metrics.on_warmed(warmed);
        }
    }

    /// Scatter warm pushes to every replica of each listed segment
    /// over the same lanes queries use, and gather the insert counts.
    /// Returns how many entries were actually inserted (absent-only).
    fn warm_segments(&self, entries: &WarmBatches) -> u64 {
        if self.sg.is_closed() {
            return 0;
        }
        let mut parts: Vec<(usize, ShardRequest)> = Vec::new();
        for (&segment, seg_entries) in entries {
            if seg_entries.is_empty() {
                continue;
            }
            for r in 0..self.replicas_per_segment {
                let flat = segment * self.replicas_per_segment + r;
                self.replicas[flat].add_outstanding();
                parts.push((
                    flat,
                    ShardRequest::Warm {
                        entries: seg_entries.clone(),
                    },
                ));
            }
        }
        if parts.is_empty() {
            return 0;
        }
        let lanes: Vec<usize> = parts.iter().map(|&(lane, _)| lane).collect();
        let results = self.sg.scatter(parts).gather();
        let mut warmed = 0u64;
        for (answer, &lane) in results.into_iter().zip(&lanes) {
            match answer {
                Some(resp) => warmed += resp.warmed,
                // A warm push that never reached its worker (dropped or
                // closed lane) must still balance the in-flight count.
                None => self.replicas[lane].sub_outstanding(),
            }
        }
        warmed
    }

    /// Pick a replica of `segment` for a read. With affinity enabled,
    /// the rendezvous-preferred replica serves whenever it is untried,
    /// healthy, and below the saturation bound — concentrating each
    /// state's partials (and resident spectra) on one home replica
    /// instead of diluting them across R caches. Otherwise — and
    /// always with affinity disabled — fall back to the baseline:
    /// prefer replicas not yet tried this request, among those prefer
    /// ones the health ladder has not demoted, and take the
    /// least-loaded (ties spread by a consistent hash of the quantized
    /// state). When every replica is demoted the least-loaded one
    /// still serves — its CPU fallback answers (graceful degradation,
    /// not refusal).
    fn pick_replica(&self, segment: usize, key: &StateKey, tried: &[usize]) -> usize {
        let base = segment * self.replicas_per_segment;
        let now = self.clock.now();
        // Probes outrank everything: an Open breaker whose cooldown
        // elapsed gets exactly this one request to prove itself —
        // granting the probe and then routing elsewhere would strand
        // the breaker HalfOpen forever.
        for r in 0..self.replicas_per_segment {
            if tried.contains(&r) {
                continue;
            }
            let breaker = &self.breakers[base + r];
            if breaker.state() == BreakerState::Open && breaker.allow(now) {
                return r;
            }
        }
        if self.affinity {
            let pref = preferred_replica(key, segment, self.replicas_per_segment, self.ring_seed);
            let rep = &self.replicas[base + pref];
            if !tried.contains(&pref)
                && !rep.demoted()
                && self.breakers[base + pref].state() == BreakerState::Closed
                && rep.outstanding() < self.affinity_saturation
            {
                self.metrics.on_affinity_pick();
                return pref;
            }
            self.metrics.on_affinity_fallback();
        }
        let fresh: Vec<usize> = (0..self.replicas_per_segment)
            .filter(|r| !tried.contains(r))
            .collect();
        let pool: Vec<usize> = if fresh.is_empty() {
            (0..self.replicas_per_segment).collect()
        } else {
            fresh
        };
        let healthy: Vec<usize> = pool
            .iter()
            .copied()
            .filter(|&r| !self.replicas[base + r].demoted())
            .collect();
        let pool = if healthy.is_empty() {
            pool
        } else {
            if healthy.len() < pool.len() {
                self.metrics.on_demoted_skip();
            }
            healthy
        };
        // Breaker-blocked replicas route around like demoted ones —
        // and like demotion, when every candidate is blocked the
        // least-loaded one still serves (degrade, never strand).
        let flowing: Vec<usize> = pool
            .iter()
            .copied()
            .filter(|&r| self.breakers[base + r].state() == BreakerState::Closed)
            .collect();
        let pool = if flowing.is_empty() {
            pool
        } else {
            if flowing.len() < pool.len() {
                self.metrics.on_breaker_skip();
            }
            flowing
        };
        pool.into_iter()
            .min_by_key(|&r| {
                (
                    self.replicas[base + r].outstanding(),
                    splitmix64(key.stable_hash(self.ring_seed) ^ r as u64),
                )
            })
            .expect("segment has at least one replica")
    }

    /// One capacity-rebalance pass: if the costliest segment exceeds
    /// `rebalance_factor x` the mean capacity cost, migrate its
    /// costliest ions to the lightest segment (greedily, while each
    /// move narrows the gap without reversing it), then wait for the
    /// old owner to drain its in-flight envelopes.
    ///
    /// Returns `None` when the tier is already balanced (or has a
    /// single segment). Run repeatedly to converge.
    ///
    /// # Panics
    /// Panics if the routing-table lock is poisoned.
    pub fn rebalance(&self) -> Option<MigrationReport> {
        let (from, to, ions, cost_moved) = {
            let mut table = self.table.write().expect("routing table poisoned");
            let nseg = self.ring_segments();
            if nseg < 2 {
                return None;
            }
            let mut seg_cost = vec![0u64; nseg];
            for (ion, &seg) in table.iter().enumerate() {
                seg_cost[seg] += self.costs[ion];
            }
            let total: u64 = seg_cost.iter().sum();
            let mean = total as f64 / nseg as f64;
            let heavy = (0..nseg)
                .max_by_key(|&s| seg_cost[s])
                .expect("nseg >= 2 checked above");
            let light = (0..nseg)
                .min_by_key(|&s| seg_cost[s])
                .expect("nseg >= 2 checked above");
            if heavy == light || (seg_cost[heavy] as f64) <= self.rebalance_factor * mean {
                return None;
            }
            let mut owned: Vec<usize> = (0..table.len())
                .filter(|&ion| table[ion] == heavy)
                .collect();
            owned.sort_by_key(|&ion| std::cmp::Reverse(self.costs[ion]));
            let mut heavy_cost = seg_cost[heavy];
            let mut light_cost = seg_cost[light];
            let mut moved = Vec::new();
            let mut cost_moved = 0u64;
            for ion in owned {
                let c = self.costs[ion];
                // Moving c keeps heavy' = heavy - c >= light + c =
                // light', so the gap narrows monotonically and the
                // pass cannot oscillate.
                if heavy_cost >= light_cost + 2 * c {
                    table[ion] = light;
                    heavy_cost -= c;
                    light_cost += c;
                    moved.push(ion);
                    cost_moved += c;
                }
            }
            if moved.is_empty() {
                return None;
            }
            moved.sort_unstable();
            (heavy, light, moved, cost_moved)
            // Write lock drops here: from now on every new request
            // routes the moved ions to their new owner.
        };
        // Cache handoff before the drain: new requests already route
        // to `to`, so the sooner its replicas hold the donor's
        // partials the fewer migrated ions cold-start. Entries are
        // absent-only inserts of the donor's exact cache values —
        // bitwise the same partials, so parity is unaffected.
        let handed_off = if self.migration_handoff {
            self.handoff(from, to, &ions)
        } else {
            0
        };
        let drained = self.drain_segment(from);
        self.metrics.on_rebalance(ions.len() as u64);
        Some(MigrationReport {
            from,
            to,
            ions,
            cost_moved,
            handed_off,
            drained,
        })
    }

    /// Ship the donor segment's cached partials for the migrated ions
    /// to every replica of the new owner. Returns the unique entries
    /// (one per `(ion, state)`) shipped.
    fn handoff(&self, from: usize, to: usize, ions: &[usize]) -> u64 {
        let base = from * self.replicas_per_segment;
        let mut entries: Vec<(CacheKey, Arc<Vec<f64>>)> = (0..self.replicas_per_segment)
            .flat_map(|r| self.replicas[base + r].export_ions(ions))
            .collect();
        // Donor replicas overlap in what they cached; ship one copy
        // per key, in deterministic order.
        entries.sort_by_key(|(k, _)| (k.ion_index, k.state));
        entries.dedup_by_key(|(k, _)| *k);
        if entries.is_empty() {
            return 0;
        }
        let unique = entries.len() as u64;
        let _ = self.warm_segments(&BTreeMap::from([(to, entries)]));
        self.metrics.on_handoff(unique);
        unique
    }

    /// Wait (bounded) until every replica of `segment` has zero
    /// in-flight envelopes.
    fn drain_segment(&self, segment: usize) -> bool {
        let base = segment * self.replicas_per_segment;
        let deadline = Instant::now() + self.drain_timeout;
        loop {
            let busy =
                (0..self.replicas_per_segment).any(|r| self.replicas[base + r].outstanding() > 0);
            if !busy {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// The tier rollup: router counters plus per-segment ownership,
    /// capacity cost, and every replica's cache/health/service view.
    ///
    /// # Panics
    /// Panics if the routing-table lock is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> RouterSnapshot {
        let table = self.table.read().expect("routing table poisoned").clone();
        let nseg = self.ring_segments();
        let mut owned = vec![0u64; nseg];
        let mut cost = vec![0u64; nseg];
        for (ion, &seg) in table.iter().enumerate() {
            owned[seg] += 1;
            cost[seg] += self.costs[ion];
        }
        let segments = (0..nseg)
            .map(|seg| SegmentSnapshot {
                segment: seg,
                owned_ions: owned[seg],
                capacity_cost: cost[seg],
                replicas: (0..self.replicas_per_segment)
                    .map(|r| {
                        let flat = seg * self.replicas_per_segment + r;
                        let rep = &self.replicas[flat];
                        let breaker = &self.breakers[flat];
                        let transitions = breaker.counters();
                        ReplicaSnapshot {
                            replica: r,
                            demoted: rep.demoted(),
                            outstanding: rep.outstanding(),
                            breaker: breaker.state().label(),
                            breaker_opens: transitions.opens,
                            breaker_half_opens: transitions.half_opens,
                            breaker_closes: transitions.closes,
                            cache: rep.cache_stats(),
                            cache_shards: rep.cache_shard_stats(),
                            service: rep.metrics(),
                        }
                    })
                    .collect(),
            })
            .collect();
        RouterSnapshot {
            shards: nseg,
            replicas_per_shard: self.replicas_per_segment,
            counters: self.metrics.snapshot(),
            segments,
        }
    }

    /// Graceful shutdown: refuse new queries, resolve everything
    /// in-flight (queued envelopes resolve as missing; already-popped
    /// ones are answered), join every worker, drain every engine.
    #[must_use]
    pub fn shutdown(mut self) -> RouterReport {
        self.do_shutdown().expect("router not yet shut down")
    }

    fn do_shutdown(&mut self) -> Option<RouterReport> {
        if self.replicas.is_empty() {
            return None;
        }
        let snapshot = self.snapshot();
        self.sg.close();
        let engines: Vec<EngineReport> = self.replicas.drain(..).map(ShardReplica::stop).collect();
        let leaked_grants = engines.iter().map(|e| e.leaked_grants).sum();
        Some(RouterReport {
            snapshot,
            engines,
            leaked_grants,
        })
    }
}

impl Drop for ShardRouter {
    /// Dropping without [`ShardRouter::shutdown`] still closes the
    /// lanes, joins the workers, and drains the engines.
    fn drop(&mut self) {
        let _ = self.do_shutdown();
    }
}
