//! The shard router: consistent-hash ion ownership, replica
//! selection, scatter/gather fan-out, health-aware re-routing, and the
//! capacity rebalancer.
//!
//! # Routing
//!
//! A [`HashRing`] seeded from [`RouterConfig::ring_seed`] maps every
//! ion index onto a segment; the live assignment is materialised in a
//! routing **table** (`ion -> segment`) so the rebalancer can migrate
//! individual ions off the ring's default placement. A request reads
//! the table **once**: all its ions' owners are fixed for the
//! request's lifetime even if a rebalance swaps the table mid-flight,
//! which is what makes migration exactly-once — a request computes on
//! the owner it saw, never on both.
//!
//! # Bitwise parity with the single-engine service
//!
//! Shards answer **per-ion partials**; the router folds them itself
//! through [`rrc_service::assemble`] in ascending ion order from a
//! zero vector — the identical floating-point op sequence the
//! single-engine service executes. With the engines configured for
//! the deterministic kernel (single-chunk launches make each partial
//! placement-invariant), a sharded response is bitwise identical to
//! the unsharded one regardless of shard count, replica choice, or
//! migration history.
//!
//! # Replication and health
//!
//! Each segment is served by `replicas` identical engines. A read
//! picks the least-loaded replica (in-flight envelope count, ties
//! broken by a consistent hash of the quantized state) among those the
//! health ladder has not demoted — a replica whose devices are all
//! quarantined/lost routes around until its CPU-fallback siblings are
//! also exhausted, in which case it still serves (its CPU path
//! answers). Failed or unanswered ions re-route to a different
//! replica up to [`RouterConfig::reroute_retries`] times.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use atomdb::AtomDatabase;
use gpu_sim::{DeviceRule, Precision};
use hybrid_spectral::engine::{EngineConfig, EngineReport};
use hybrid_spectral::ion_task_cost;
use mpi_sim::ScatterGather;
use rrc_service::{
    assemble, selected_ions, Quantizer, ServiceError, SpectrumRequest, SpectrumResponse, StateKey,
};
use rrc_spectral::{EnergyGrid, GridPoint, Integrator};

use crate::metrics::{ReplicaSnapshot, RouterMetrics, RouterSnapshot, SegmentSnapshot};
use crate::ring::{splitmix64, HashRing};
use crate::shard::{ReplicaSpec, ShardReplica, ShardRequest, ShardResponse};

/// Configuration of a [`ShardRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-replica engine template (every replica starts an identical
    /// engine; the `Arc`ed atomic database is shared, devices are not).
    pub engine: EngineConfig,
    /// Energy grids a request may name by index.
    pub grids: Vec<EnergyGrid>,
    /// Ring segments (shards).
    pub shards: usize,
    /// Replicas per segment.
    pub replicas: usize,
    /// Per-replica ion-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Per-replica cache shard count.
    pub cache_shards: usize,
    /// Mantissa bits dropped when quantizing plasma states.
    pub quantize_drop_bits: u32,
    /// Capacity of each replica's request lane.
    pub lane_depth: usize,
    /// Shard-internal engine re-fan-out budget (mirrors
    /// [`rrc_service::ServiceConfig::fanout_retries`]).
    pub fanout_retries: u32,
    /// How many times the router re-routes failed/unanswered ions to a
    /// different replica before refusing with
    /// [`ServiceError::DeviceFailed`].
    pub reroute_retries: u32,
    /// Hash-ring seed: restarts must reuse the seed for stable
    /// key-to-shard routing.
    pub ring_seed: u64,
    /// Virtual ring points per segment.
    pub vnodes: u32,
    /// A segment whose capacity cost exceeds `rebalance_factor x` the
    /// mean triggers migration in [`ShardRouter::rebalance`].
    pub rebalance_factor: f64,
    /// Longest a rebalance waits for the migrated-from segment to
    /// drain its in-flight envelopes.
    pub drain_timeout: Duration,
}

impl RouterConfig {
    /// A bitwise-deterministic sharded tier over `db` and `grids`:
    /// each replica runs the fused deterministic kernel with the same
    /// Simpson rule on devices and the CPU fallback, so responses are
    /// identical regardless of shard count or placement (and equal to
    /// the single-engine [`rrc_service::SpectralService`] under
    /// [`rrc_service::ServiceConfig::deterministic`]).
    #[must_use]
    pub fn deterministic(db: Arc<AtomDatabase>, grids: Vec<EnergyGrid>) -> RouterConfig {
        let workers = 2;
        RouterConfig {
            engine: EngineConfig {
                db,
                workers,
                gpus: 2,
                max_queue_len: 6,
                policy: hybrid_sched::SchedPolicy::CostAware,
                gpu_rule: DeviceRule::Simpson { panels: 64 },
                gpu_precision: Precision::Double,
                cpu_integrator: Integrator::Simpson { panels: 64 },
                fused: true,
                async_window: 1,
                queue_depth: 2 * workers,
                deterministic_kernel: true,
                math: quadrature::MathMode::Exact,
                pack_threshold: 0,
                pack_max: 8,
                resilience: hybrid_spectral::ResilienceConfig::default(),
                tuning: hybrid_sched::TuningConfig::default(),
            },
            grids,
            shards: 2,
            replicas: 1,
            cache_capacity: 4096,
            cache_shards: 8,
            quantize_drop_bits: 0,
            lane_depth: 16,
            fanout_retries: 2,
            reroute_retries: 2,
            ring_seed: 17,
            vnodes: 64,
            rebalance_factor: 1.25,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// What one [`ShardRouter::rebalance`] pass migrated.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Segment the ions moved off (the heavy one).
    pub from: usize,
    /// Segment that took them over (the lightest one).
    pub to: usize,
    /// Migrated ion indices, ascending.
    pub ions: Vec<usize>,
    /// Capacity cost that moved with them.
    pub cost_moved: u64,
    /// Whether the old owner drained its in-flight envelopes within
    /// the configured timeout (the handoff is correct either way — a
    /// straggler request that routed before the swap still completes
    /// on the old owner; `false` only means overlap lasted longer
    /// than the drain window).
    pub drained: bool,
}

/// Everything [`ShardRouter::shutdown`] reports after draining.
#[derive(Debug, Clone)]
pub struct RouterReport {
    /// The tier rollup taken just before teardown.
    pub snapshot: RouterSnapshot,
    /// Every replica engine's drained report, in flat
    /// `segment * replicas + replica` order.
    pub engines: Vec<EngineReport>,
    /// Sum of the engines' leaked memory grants — must be zero.
    pub leaked_grants: u64,
}

/// The running sharded tier. Submit queries from any thread; shut
/// down (or drop) to close the lanes, join the workers, and drain
/// every engine.
pub struct ShardRouter {
    db: Arc<AtomDatabase>,
    grids: Vec<EnergyGrid>,
    quantizer: Quantizer,
    replicas_per_segment: usize,
    reroute_retries: u32,
    rebalance_factor: f64,
    drain_timeout: Duration,
    ring: HashRing,
    /// Live ion ownership: `table[ion] = segment`. Starts at the
    /// ring's placement; the rebalancer migrates entries.
    table: RwLock<Vec<usize>>,
    /// Static per-ion capacity costs at the reference plasma state.
    costs: Vec<u64>,
    sg: ScatterGather<ShardRequest, ShardResponse>,
    replicas: Vec<ShardReplica>,
    metrics: RouterMetrics,
}

/// The fixed plasma state the capacity model prices ions at. Absolute
/// scale is irrelevant to balancing — only the ratios matter — so one
/// representative mid-range coronal state serves all workloads.
const CAPACITY_REF_POINT: GridPoint = GridPoint {
    temperature_k: 1.0e7,
    density_cm3: 1.0,
    time_s: 0.0,
    index: 0,
};

/// A stable 64-bit digest of a quantized state, used only to spread
/// equal-load replica ties deterministically.
fn state_hash(key: &StateKey) -> u64 {
    splitmix64(key.kt_q ^ splitmix64(key.density_q ^ splitmix64(key.grid_id as u64)))
}

impl ShardRouter {
    /// Bring the tier up: ring, routing table, capacity model, one
    /// scatter/gather fabric, and `shards x replicas` engines.
    ///
    /// # Panics
    /// Panics if `config.grids` is empty or `shards`/`replicas` is 0.
    #[must_use]
    pub fn start(config: RouterConfig) -> ShardRouter {
        assert!(!config.grids.is_empty(), "router needs at least one grid");
        assert!(config.shards >= 1, "router needs at least one shard");
        assert!(
            config.replicas >= 1,
            "each shard needs at least one replica"
        );
        let db = Arc::clone(&config.engine.db);
        let bin_tables: Vec<Arc<Vec<(f64, f64)>>> = config
            .grids
            .iter()
            .map(|g| Arc::new(g.bin_pairs()))
            .collect();
        let ring = HashRing::new(config.ring_seed, config.shards, config.vnodes);
        let table: Vec<usize> = (0..db.ions().len())
            .map(|ion| ring.owner(ion as u64))
            .collect();
        let capacity_bins = &bin_tables[0];
        let costs: Vec<u64> = (0..db.ions().len())
            .map(|ion| {
                let levels = db.levels_by_index(ion).len();
                ion_task_cost(&db, ion, 0..levels, &CAPACITY_REF_POINT, capacity_bins)
            })
            .collect();
        let sg = ScatterGather::new(config.shards * config.replicas, config.lane_depth.max(1));
        let mut replicas = Vec::with_capacity(config.shards * config.replicas);
        for segment in 0..config.shards {
            for replica in 0..config.replicas {
                let lane = sg.lane(segment * config.replicas + replica);
                replicas.push(ShardReplica::start(
                    ReplicaSpec {
                        segment,
                        replica,
                        engine: config.engine.clone(),
                        cache_capacity: config.cache_capacity,
                        cache_shards: config.cache_shards,
                        fanout_retries: config.fanout_retries,
                        grids: config.grids.clone(),
                        bin_tables: bin_tables.clone(),
                    },
                    lane,
                ));
            }
        }
        ShardRouter {
            db,
            grids: config.grids,
            quantizer: Quantizer::new(config.quantize_drop_bits),
            replicas_per_segment: config.replicas,
            reroute_retries: config.reroute_retries,
            rebalance_factor: config.rebalance_factor.max(1.0),
            drain_timeout: config.drain_timeout,
            ring,
            table: RwLock::new(table),
            costs,
            sg,
            replicas,
            metrics: RouterMetrics::new(),
        }
    }

    /// Ring segments (shards).
    #[must_use]
    pub fn segments(&self) -> usize {
        self.ring_segments()
    }

    fn ring_segments(&self) -> usize {
        self.replicas.len() / self.replicas_per_segment
    }

    /// Replicas per segment.
    #[must_use]
    pub fn replicas_per_segment(&self) -> usize {
        self.replicas_per_segment
    }

    /// The seeded consistent-hash ring (the routing table's initial
    /// placement; restarts with the same seed reproduce it).
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The segment currently owning `ion`.
    ///
    /// # Panics
    /// Panics if `ion` is out of range for the database.
    #[must_use]
    pub fn segment_of(&self, ion: usize) -> usize {
        self.table.read().expect("routing table poisoned")[ion]
    }

    /// A replica handle (fault injection, health and scheduler
    /// introspection for tests, benches, and chaos drills).
    ///
    /// # Panics
    /// Panics if `segment`/`replica` is out of range.
    #[must_use]
    pub fn replica(&self, segment: usize, replica: usize) -> &ShardReplica {
        assert!(replica < self.replicas_per_segment, "replica out of range");
        &self.replicas[segment * self.replicas_per_segment + replica]
    }

    /// Answer one spectral query through the sharded tier.
    ///
    /// # Errors
    /// [`ServiceError::UnknownGrid`] for an out-of-range grid id;
    /// [`ServiceError::DeviceFailed`] when some ion stayed unanswered
    /// after the re-route budget (every owning segment's replicas
    /// failed it); [`ServiceError::Closed`] after shutdown began.
    pub fn query(&self, request: &SpectrumRequest) -> Result<SpectrumResponse, ServiceError> {
        if request.grid_id >= self.grids.len() {
            return Err(ServiceError::UnknownGrid);
        }
        if self.sg.is_closed() {
            return Err(ServiceError::Closed);
        }
        let started = Instant::now();
        self.metrics.on_request();
        let key = self.quantizer.state_key(&request.point, request.grid_id);
        let point = self.quantizer.representative(&key);
        let ions = selected_ions(&self.db, request);
        let grid = &self.grids[request.grid_id];

        // ONE routing-table read per request: each ion's owner is
        // fixed for this request's lifetime even if a rebalance swaps
        // the table mid-flight. Exactly-once migration follows — a
        // request computes on the owner it saw, never on both.
        let owner: BTreeMap<usize, usize> = {
            let table = self.table.read().expect("routing table poisoned");
            ions.iter().map(|&ion| (ion, table[ion])).collect()
        };

        let mut partials: BTreeMap<usize, Arc<Vec<f64>>> = BTreeMap::new();
        let mut computed = 0u64;
        let mut from_cache = 0u64;
        let mut pending: Vec<usize> = ions.clone();
        let mut tried: Vec<Vec<usize>> = vec![Vec::new(); self.ring_segments()];
        let mut attempt = 0u32;
        loop {
            let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for &ion in &pending {
                groups.entry(owner[&ion]).or_default().push(ion);
            }
            let mut parts: Vec<(usize, ShardRequest)> = Vec::with_capacity(groups.len());
            let mut part_ions: Vec<Vec<usize>> = Vec::with_capacity(groups.len());
            for (segment, seg_ions) in groups {
                let replica = self.pick_replica(segment, &key, &tried[segment]);
                tried[segment].push(replica);
                let flat = segment * self.replicas_per_segment + replica;
                self.replicas[flat].add_outstanding();
                parts.push((
                    flat,
                    ShardRequest {
                        key,
                        point,
                        ions: seg_ions.clone(),
                    },
                ));
                part_ions.push(seg_ions);
            }
            if attempt > 0 {
                self.metrics.on_reroute(parts.len() as u64);
            }
            let answers = self.sg.scatter(parts).gather();
            pending.clear();
            for (slot, answer) in answers.into_iter().enumerate() {
                match answer {
                    Some(resp) => {
                        computed += resp.computed;
                        from_cache += resp.from_cache;
                        for (ion, partial) in resp.partials {
                            partials.insert(ion, partial);
                        }
                        pending.extend(resp.failed);
                    }
                    // Lane refused or the worker died before replying:
                    // the whole part re-routes to a sibling replica.
                    None => pending.extend(part_ions[slot].iter().copied()),
                }
            }
            if pending.is_empty() {
                break;
            }
            if attempt >= self.reroute_retries {
                self.metrics.on_device_failed();
                return Err(ServiceError::DeviceFailed);
            }
            attempt += 1;
        }

        let response = SpectrumResponse {
            bins: assemble(grid.bins(), &ions, &partials),
            grid_id: request.grid_id,
            ions_computed: computed,
            ions_from_cache: from_cache,
            caller_ran: false,
        };
        self.metrics.on_responded(started.elapsed().as_secs_f64());
        Ok(response)
    }

    /// Pick a replica of `segment` for a read: prefer replicas not yet
    /// tried this request, among those prefer ones the health ladder
    /// has not demoted, and take the least-loaded (ties spread by a
    /// consistent hash of the quantized state). When every replica is
    /// demoted the least-loaded one still serves — its CPU fallback
    /// answers (graceful degradation, not refusal).
    fn pick_replica(&self, segment: usize, key: &StateKey, tried: &[usize]) -> usize {
        let base = segment * self.replicas_per_segment;
        let fresh: Vec<usize> = (0..self.replicas_per_segment)
            .filter(|r| !tried.contains(r))
            .collect();
        let pool: Vec<usize> = if fresh.is_empty() {
            (0..self.replicas_per_segment).collect()
        } else {
            fresh
        };
        let healthy: Vec<usize> = pool
            .iter()
            .copied()
            .filter(|&r| !self.replicas[base + r].demoted())
            .collect();
        let pool = if healthy.is_empty() {
            pool
        } else {
            if healthy.len() < pool.len() {
                self.metrics.on_demoted_skip();
            }
            healthy
        };
        pool.into_iter()
            .min_by_key(|&r| {
                (
                    self.replicas[base + r].outstanding(),
                    splitmix64(state_hash(key) ^ r as u64),
                )
            })
            .expect("segment has at least one replica")
    }

    /// One capacity-rebalance pass: if the costliest segment exceeds
    /// `rebalance_factor x` the mean capacity cost, migrate its
    /// costliest ions to the lightest segment (greedily, while each
    /// move narrows the gap without reversing it), then wait for the
    /// old owner to drain its in-flight envelopes.
    ///
    /// Returns `None` when the tier is already balanced (or has a
    /// single segment). Run repeatedly to converge.
    ///
    /// # Panics
    /// Panics if the routing-table lock is poisoned.
    pub fn rebalance(&self) -> Option<MigrationReport> {
        let (from, to, ions, cost_moved) = {
            let mut table = self.table.write().expect("routing table poisoned");
            let nseg = self.ring_segments();
            if nseg < 2 {
                return None;
            }
            let mut seg_cost = vec![0u64; nseg];
            for (ion, &seg) in table.iter().enumerate() {
                seg_cost[seg] += self.costs[ion];
            }
            let total: u64 = seg_cost.iter().sum();
            let mean = total as f64 / nseg as f64;
            let heavy = (0..nseg)
                .max_by_key(|&s| seg_cost[s])
                .expect("nseg >= 2 checked above");
            let light = (0..nseg)
                .min_by_key(|&s| seg_cost[s])
                .expect("nseg >= 2 checked above");
            if heavy == light || (seg_cost[heavy] as f64) <= self.rebalance_factor * mean {
                return None;
            }
            let mut owned: Vec<usize> = (0..table.len())
                .filter(|&ion| table[ion] == heavy)
                .collect();
            owned.sort_by_key(|&ion| std::cmp::Reverse(self.costs[ion]));
            let mut heavy_cost = seg_cost[heavy];
            let mut light_cost = seg_cost[light];
            let mut moved = Vec::new();
            let mut cost_moved = 0u64;
            for ion in owned {
                let c = self.costs[ion];
                // Moving c keeps heavy' = heavy - c >= light + c =
                // light', so the gap narrows monotonically and the
                // pass cannot oscillate.
                if heavy_cost >= light_cost + 2 * c {
                    table[ion] = light;
                    heavy_cost -= c;
                    light_cost += c;
                    moved.push(ion);
                    cost_moved += c;
                }
            }
            if moved.is_empty() {
                return None;
            }
            moved.sort_unstable();
            (heavy, light, moved, cost_moved)
            // Write lock drops here: from now on every new request
            // routes the moved ions to their new owner.
        };
        let drained = self.drain_segment(from);
        self.metrics.on_rebalance(ions.len() as u64);
        Some(MigrationReport {
            from,
            to,
            ions,
            cost_moved,
            drained,
        })
    }

    /// Wait (bounded) until every replica of `segment` has zero
    /// in-flight envelopes.
    fn drain_segment(&self, segment: usize) -> bool {
        let base = segment * self.replicas_per_segment;
        let deadline = Instant::now() + self.drain_timeout;
        loop {
            let busy =
                (0..self.replicas_per_segment).any(|r| self.replicas[base + r].outstanding() > 0);
            if !busy {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// The tier rollup: router counters plus per-segment ownership,
    /// capacity cost, and every replica's cache/health/service view.
    ///
    /// # Panics
    /// Panics if the routing-table lock is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> RouterSnapshot {
        let table = self.table.read().expect("routing table poisoned").clone();
        let nseg = self.ring_segments();
        let mut owned = vec![0u64; nseg];
        let mut cost = vec![0u64; nseg];
        for (ion, &seg) in table.iter().enumerate() {
            owned[seg] += 1;
            cost[seg] += self.costs[ion];
        }
        let segments = (0..nseg)
            .map(|seg| SegmentSnapshot {
                segment: seg,
                owned_ions: owned[seg],
                capacity_cost: cost[seg],
                replicas: (0..self.replicas_per_segment)
                    .map(|r| {
                        let rep = &self.replicas[seg * self.replicas_per_segment + r];
                        ReplicaSnapshot {
                            replica: r,
                            demoted: rep.demoted(),
                            outstanding: rep.outstanding(),
                            cache: rep.cache_stats(),
                            service: rep.metrics(),
                        }
                    })
                    .collect(),
            })
            .collect();
        RouterSnapshot {
            shards: nseg,
            replicas_per_shard: self.replicas_per_segment,
            counters: self.metrics.snapshot(),
            segments,
        }
    }

    /// Graceful shutdown: refuse new queries, resolve everything
    /// in-flight (queued envelopes resolve as missing; already-popped
    /// ones are answered), join every worker, drain every engine.
    #[must_use]
    pub fn shutdown(mut self) -> RouterReport {
        self.do_shutdown().expect("router not yet shut down")
    }

    fn do_shutdown(&mut self) -> Option<RouterReport> {
        if self.replicas.is_empty() {
            return None;
        }
        let snapshot = self.snapshot();
        self.sg.close();
        let engines: Vec<EngineReport> = self.replicas.drain(..).map(ShardReplica::stop).collect();
        let leaked_grants = engines.iter().map(|e| e.leaked_grants).sum();
        Some(RouterReport {
            snapshot,
            engines,
            leaked_grants,
        })
    }
}

impl Drop for ShardRouter {
    /// Dropping without [`ShardRouter::shutdown`] still closes the
    /// lanes, joins the workers, and drains the engines.
    fn drop(&mut self) {
        let _ = self.do_shutdown();
    }
}
