//! One shard replica: a private [`Engine`] (rank pool, simulated
//! devices, scheduler, fault ladder), a private per-ion cache, and a
//! worker thread popping [`ShardRequest`] envelopes off its
//! [`mpi_sim::collective`] lane.
//!
//! A replica answers **per-ion partials**, never pre-summed spectra:
//! floating-point addition is non-associative, so the fold must happen
//! in exactly one place — the router, via [`rrc_service::assemble`] in
//! ascending ion order — for the sharded answer to be bitwise
//! identical to the single-engine one. The worker's fan-out mirrors
//! the service batcher's: submit one [`IonJob`] per cache-missing ion,
//! collect outcomes, re-fan unanswered ions up to the retry budget,
//! and report whatever is still missing as `failed` so the router can
//! re-route those ions to a sibling replica.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

use desim::Priority;
use hybrid_spectral::engine::{Engine, EngineConfig, EngineReport, IonJob, IonOutcome};
use mpi_sim::Lane;
use rrc_service::{CacheKey, ServiceMetrics, ShardedLruCache, StateKey};
use rrc_spectral::{EnergyGrid, GridPoint};

/// One envelope on a replica's lane: either a query for per-ion
/// partials or a cache-warming push. Both ride the same
/// [`mpi_sim::collective`] lanes and the same worker loop, so warming
/// needs no second fabric and is naturally serialized with queries on
/// each replica.
#[derive(Debug, Clone)]
pub enum ShardRequest {
    /// Compute/fetch per-ion partials for one quantized state.
    Query {
        /// Quantized plasma state + grid — the replica's cache key
        /// space.
        key: StateKey,
        /// The representative plasma point of `key` (computed once by
        /// the router so every shard evaluates the identical state).
        point: GridPoint,
        /// Ions this shard owns for the request, ascending.
        ions: Vec<usize>,
        /// The originating request's priority class, carried through
        /// for per-class latency accounting on the replica.
        priority: Priority,
        /// Absolute virtual-clock deadline of the originating request
        /// (`f64::INFINITY` when none): propagated into every
        /// [`IonJob`] so the engine's EDF staging orders urgent work
        /// first even inside a shard.
        deadline: f64,
    },
    /// Push already-computed partials into this replica's cache
    /// (hot-state replication to siblings, migration cache handoff).
    /// The values are the donor's cache entries themselves; under the
    /// deterministic kernel they are the exact bits this replica would
    /// have computed.
    Warm {
        /// `(key, partial)` pairs to insert if absent.
        entries: Vec<(CacheKey, Arc<Vec<f64>>)>,
    },
}

/// A shard's answer: per-ion partial spectra plus accounting.
#[derive(Debug, Clone)]
pub struct ShardResponse {
    /// `(ion, partial)` pairs for every ion that was answered. The
    /// `Arc` is the cache entry itself, so repeated hits return the
    /// identical allocation (bitwise-stable responses).
    pub partials: Vec<(usize, Arc<Vec<f64>>)>,
    /// Ions computed by the engine this time.
    pub computed: u64,
    /// Ions answered from this replica's cache.
    pub from_cache: u64,
    /// Ions the engine never answered (device faults with the retry
    /// budget exhausted) — the router re-routes these.
    pub failed: Vec<usize>,
    /// Warm entries actually inserted (absent-only) by a
    /// [`ShardRequest::Warm`]; always 0 for queries.
    pub warmed: u64,
}

/// State shared between a replica's worker thread and its handle.
pub(crate) struct ReplicaCtx {
    engine: Engine,
    cache: ShardedLruCache,
    grids: Vec<EnergyGrid>,
    bin_tables: Vec<Arc<Vec<(f64, f64)>>>,
    metrics: ServiceMetrics,
    outstanding: AtomicU64,
    fanout_retries: u32,
}

impl ReplicaCtx {
    /// Serve one envelope: queries go through the batcher-mirroring
    /// compute path, warm pushes go straight into the cache.
    fn handle(&self, req: &ShardRequest) -> ShardResponse {
        match req {
            ShardRequest::Query {
                key,
                point,
                ions,
                priority,
                deadline,
            } => self.handle_query(*key, point, ions, *priority, *deadline),
            ShardRequest::Warm { entries } => self.handle_warm(entries),
        }
    }

    /// Insert pushed partials if absent. An entry the replica already
    /// holds is skipped — the local bits are the same bits under the
    /// deterministic kernel, and warming must never steal recency from
    /// entries real traffic is using.
    fn handle_warm(&self, entries: &[(CacheKey, Arc<Vec<f64>>)]) -> ShardResponse {
        let mut warmed = 0u64;
        for (key, value) in entries {
            if self.cache.warm_insert(*key, Arc::clone(value)) {
                warmed += 1;
            }
        }
        if warmed > 0 {
            // Attribute warmed ions in the engine's own report so
            // exactly-once audits (computed + warmed vs. total) can be
            // settled per engine, not just per router.
            self.engine.note_warm_insert(warmed);
        }
        ShardResponse {
            partials: Vec::new(),
            computed: 0,
            from_cache: 0,
            failed: Vec::new(),
            warmed,
        }
    }

    /// Serve one query: cache lookups, engine fan-out with re-fan
    /// retries, cache fills. Mirrors the service batcher's group path
    /// so a shard's partial bits match the single-engine service's
    /// exactly (deterministic kernel assumed).
    fn handle_query(
        &self,
        key: StateKey,
        point: &GridPoint,
        ions: &[usize],
        priority: Priority,
        deadline: f64,
    ) -> ShardResponse {
        let started = Instant::now();
        let db = &self.engine.config().db;
        let grid = &self.grids[key.grid_id];
        let bins = &self.bin_tables[key.grid_id];

        let mut partials: Vec<(usize, Arc<Vec<f64>>)> = Vec::with_capacity(ions.len());
        let mut pending: Vec<usize> = Vec::new();
        for &ion in ions {
            let cache_key = CacheKey {
                ion_index: ion,
                state: key,
            };
            match self.cache.get(&cache_key) {
                Some(hit) => partials.push((ion, hit)),
                None => pending.push(ion),
            }
        }
        let from_cache = partials.len() as u64;

        let mut answered: BTreeMap<usize, Arc<Vec<f64>>> = BTreeMap::new();
        let mut refanouts = 0u32;
        while !pending.is_empty() {
            let (tx, rx) = channel();
            for &ion in &pending {
                let levels = db.levels_by_index(ion).len();
                let job = IonJob {
                    ion_index: ion,
                    level_range: 0..levels,
                    point: *point,
                    grid: grid.clone(),
                    bins: Arc::clone(bins),
                    tag: ion as u64,
                    deadline,
                    reply: tx.clone(),
                };
                if self.engine.submit(job).is_err() {
                    // Engine closing underneath us (shutdown race):
                    // whatever is still pending becomes `failed`.
                    break;
                }
            }
            drop(tx);
            let outcomes: Vec<IonOutcome> = rx.iter().collect();
            for outcome in outcomes {
                let value = Arc::new(outcome.partial);
                self.cache.insert(
                    CacheKey {
                        ion_index: outcome.ion_index,
                        state: key,
                    },
                    Arc::clone(&value),
                );
                answered.insert(outcome.ion_index, value);
            }
            pending.retain(|ion| !answered.contains_key(ion));
            if pending.is_empty() || refanouts >= self.fanout_retries {
                break;
            }
            refanouts += 1;
            self.metrics.on_fanout_retry(pending.len() as u64);
        }
        let computed = answered.len() as u64;
        partials.extend(answered);

        if !pending.is_empty() {
            self.metrics.on_device_failure();
        }
        let elapsed = started.elapsed().as_secs_f64();
        self.metrics.on_responded(priority, elapsed, elapsed);
        ShardResponse {
            partials,
            computed,
            from_cache,
            failed: pending,
            warmed: 0,
        }
    }
}

/// Everything a replica needs at startup besides its lane. Bundled so
/// the router can stamp one spec per `(segment, replica)` slot.
pub(crate) struct ReplicaSpec {
    pub segment: usize,
    pub replica: usize,
    pub engine: EngineConfig,
    pub cache_capacity: usize,
    pub cache_shards: usize,
    pub fanout_retries: u32,
    pub grids: Vec<EnergyGrid>,
    pub bin_tables: Vec<Arc<Vec<(f64, f64)>>>,
}

/// A running shard replica and its worker thread. Stop by closing the
/// lane (the router's scatter/gather `close()` does this for every
/// replica at once) and calling [`ShardReplica::stop`].
pub struct ShardReplica {
    segment: usize,
    replica: usize,
    ctx: Arc<ReplicaCtx>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl ShardReplica {
    /// Bring the replica up: engine, cache, worker thread on `lane`.
    pub(crate) fn start(
        spec: ReplicaSpec,
        lane: Lane<ShardRequest, ShardResponse>,
    ) -> ShardReplica {
        let ReplicaSpec {
            segment,
            replica,
            engine,
            cache_capacity,
            cache_shards,
            fanout_retries,
            grids,
            bin_tables,
        } = spec;
        let ctx = Arc::new(ReplicaCtx {
            engine: Engine::start(engine),
            cache: ShardedLruCache::new(cache_capacity, cache_shards),
            grids,
            bin_tables,
            metrics: ServiceMetrics::new(),
            outstanding: AtomicU64::new(0),
            fanout_retries,
        });
        let worker = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name(format!("shard-{segment}.{replica}"))
                .spawn(move || {
                    while let Some(envelope) = lane.pop() {
                        let (req, promise) = envelope.split();
                        let resp = ctx.handle(&req);
                        promise.fulfill(resp);
                        ctx.outstanding.fetch_sub(1, Ordering::AcqRel);
                    }
                })
                .expect("spawn shard worker")
        };
        ShardReplica {
            segment,
            replica,
            ctx,
            worker: Some(worker),
        }
    }

    /// Segment id this replica serves.
    #[must_use]
    pub fn segment(&self) -> usize {
        self.segment
    }

    /// Replica index within its segment.
    #[must_use]
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// Sub-requests scattered to this replica and not yet answered.
    /// The router increments before scatter; the worker decrements
    /// after fulfilling, so a zero reading after a routing-table swap
    /// means the replica has drained its in-flight work.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.ctx.outstanding.load(Ordering::Acquire)
    }

    pub(crate) fn add_outstanding(&self) {
        self.ctx.outstanding.fetch_add(1, Ordering::AcqRel);
    }

    /// Router-side decrement for a part that resolved as missing
    /// (dropped at delivery, closed lane, dead worker): the worker
    /// never saw the envelope, so it cannot balance the increment
    /// itself — without this the victim replica's in-flight count
    /// would drift upward forever.
    pub(crate) fn sub_outstanding(&self) {
        self.ctx.outstanding.fetch_sub(1, Ordering::AcqRel);
    }

    /// Whether the health ladder currently demotes this replica:
    /// every simulated device is quarantined or lost. A CPU-only
    /// replica (no devices) is never demoted — its CPU path answers.
    #[must_use]
    pub fn demoted(&self) -> bool {
        self.ctx.engine.gpus() > 0 && self.ctx.engine.health_snapshot().all_quarantined()
    }

    /// This replica's engine (fault injection, health, scheduler
    /// introspection for tests and benches).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.ctx.engine
    }

    /// This replica's cache counters, totalled across cache shards.
    #[must_use]
    pub fn cache_stats(&self) -> rrc_service::CacheStats {
        self.ctx.cache.stats()
    }

    /// This replica's cache counters per cache shard, in shard order.
    #[must_use]
    pub fn cache_shard_stats(&self) -> Vec<rrc_service::CacheStats> {
        self.ctx.cache.shard_stats()
    }

    /// Every cached entry for the given ions, in deterministic
    /// `(ion_index, state)` order — the donor side of migration cache
    /// handoff. Stats- and recency-neutral.
    #[must_use]
    pub fn export_ions(&self, ions: &[usize]) -> Vec<(CacheKey, Arc<Vec<f64>>)> {
        self.ctx.cache.export_ions(ions)
    }

    /// This replica's service metrics joined with its engine's live
    /// scheduler view and its cache counters.
    #[must_use]
    pub fn metrics(&self) -> rrc_service::MetricsSnapshot {
        self.ctx
            .metrics
            .snapshot()
            .with_scheduler(&self.ctx.engine.scheduler_snapshot())
            .with_cache(&self.ctx.cache)
    }

    /// Join the worker (the lane must already be closed, or the worker
    /// would never exit) and drain the engine.
    ///
    /// # Panics
    /// Panics if the worker thread panicked, or if called while other
    /// clones of the replica context are still alive.
    #[must_use]
    pub(crate) fn stop(mut self) -> EngineReport {
        if let Some(worker) = self.worker.take() {
            worker.join().expect("shard worker panicked");
        }
        let ctx = Arc::try_unwrap(self.ctx)
            .ok()
            .expect("worker joined; no other holders of the replica context");
        ctx.engine.shutdown()
    }
}
