//! A sharded multi-engine service tier over the hybrid spectral
//! stack.
//!
//! The single-engine [`rrc_service::SpectralService`] scales one
//! resident engine; this crate partitions the ion space across **N
//! independent engine shards** — each with its own rank pool,
//! simulated devices, scheduler, cache, and fault ladder — behind one
//! [`ShardRouter`]:
//!
//! * **consistent-hash routing** ([`ring`]): a seeded [`HashRing`]
//!   assigns every ion a segment; restarts with the same seed route
//!   identically, and resizing moves only ~1/N of the keys;
//! * **scatter/gather fan-out** over [`mpi_sim::collective`] lanes:
//!   one request fans out to the segments owning its ions and the
//!   router folds the gathered per-ion partials in ascending order
//!   ([`rrc_service::assemble`]) — bitwise identical to the
//!   single-engine answer under the deterministic kernel;
//! * **replication + health-aware re-routing** ([`router`]): reads go
//!   to the least-loaded non-demoted replica of each segment; ions a
//!   replica fails re-route to a sibling, and a replica whose devices
//!   are all quarantined/lost is demoted out of selection while its
//!   CPU fallback remains a last resort;
//! * **capacity rebalancing**: static [`hybrid_spectral::
//!   ion_task_cost`] sums per segment feed a greedy rebalancer that
//!   migrates ion ranges off heavy segments with an exactly-once
//!   handoff (single routing-table read per request) and a bounded
//!   drain of the old owner;
//! * **locality tier** ([`locality`]): a bounded router-level
//!   [`RouteCache`] of assembled spectra keyed on the quantized
//!   plasma state (a hit replays identical bits with zero
//!   scatter/gather), [`SingleFlight`] coalescing so racing identical
//!   misses admit exactly one fan-out, rendezvous state→replica
//!   affinity ([`preferred_replica`]), a seeded count-min
//!   [`HotTracker`] that replicates hot states' partials to sibling
//!   replica caches, and a migration cache handoff that ships the
//!   donor's cached partials to the new owner during a rebalance;
//! * **observability** ([`metrics`]): per-shard
//!   [`rrc_service::ServiceMetrics`] roll up into one
//!   [`RouterSnapshot`] with a stable operator-facing JSON rendering.

pub mod locality;
pub mod metrics;
pub mod resilience;
pub mod ring;
pub mod router;
pub mod shard;

pub use locality::{
    preferred_replica, CachedRoute, HotTracker, Join, RouteCache, RouteKey, SingleFlight,
};
pub use metrics::{
    ReplicaSnapshot, RouterCounters, RouterMetrics, RouterSnapshot, SegmentSnapshot,
};
pub use resilience::{QuantileWindow, TokenBucket};
pub use ring::{splitmix64, HashRing};
pub use router::{MigrationReport, RouterConfig, RouterReport, ShardRouter};
pub use shard::{ShardReplica, ShardRequest, ShardResponse};
