//! Router-level observability: request/re-route/rebalance counters and
//! the per-segment, per-replica rollup of each shard's
//! [`rrc_service::ServiceMetrics`].
//!
//! [`RouterSnapshot::to_json`] is the operator-facing document for the
//! whole tier — a **stable contract** (keys sorted by `jsonlite`'s
//! object ordering) covered by a golden-file test in this crate. Every
//! shard contributes its own [`rrc_service::MetricsSnapshot`] JSON
//! under `segments[].replicas[].service`, so one document answers both
//! "how is the tier doing" and "which replica is hurting".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use desim::LatencyHistogram;
use rrc_service::{CacheStats, MetricsSnapshot, StageLatency};

/// Shared router counters; every field is updated concurrently.
#[derive(Default)]
pub struct RouterMetrics {
    requests: AtomicU64,
    responded: AtomicU64,
    device_failed: AtomicU64,
    reroutes: AtomicU64,
    demoted_skips: AtomicU64,
    rebalances: AtomicU64,
    migrated_ions: AtomicU64,
    route_hits: AtomicU64,
    route_misses: AtomicU64,
    coalesced: AtomicU64,
    fanouts: AtomicU64,
    affinity_picks: AtomicU64,
    affinity_fallbacks: AtomicU64,
    warmed_partials: AtomicU64,
    handoff_partials: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    hedge_denied: AtomicU64,
    breaker_skips: AtomicU64,
    latency: Mutex<LatencyHistogram>,
}

impl RouterMetrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> RouterMetrics {
        RouterMetrics::default()
    }

    /// Record one request accepted for routing.
    pub fn on_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one assembled response and its end-to-end latency.
    pub fn on_responded(&self, total_s: f64) {
        self.responded.fetch_add(1, Ordering::Relaxed);
        self.latency
            .lock()
            .expect("latency histogram poisoned")
            .record(total_s);
    }

    /// Record one request refused after the re-route budget ran out.
    pub fn on_device_failed(&self) {
        self.device_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `parts` shard sub-requests sent to a different replica
    /// after a failed or missing first answer.
    pub fn on_reroute(&self, parts: u64) {
        self.reroutes.fetch_add(parts, Ordering::Relaxed);
    }

    /// Record a replica passed over during selection because its
    /// health ladder had every device quarantined or lost.
    pub fn on_demoted_skip(&self) {
        self.demoted_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one rebalance pass that migrated `ions` ion ownerships.
    pub fn on_rebalance(&self, ions: u64) {
        self.rebalances.fetch_add(1, Ordering::Relaxed);
        self.migrated_ions.fetch_add(ions, Ordering::Relaxed);
    }

    /// Record one request answered entirely from the route cache.
    pub fn on_route_hit(&self) {
        self.route_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one route-cache lookup that missed.
    pub fn on_route_miss(&self) {
        self.route_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request answered by following another request's
    /// in-flight fan-out (single-flight coalescing).
    pub fn on_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one scatter/gather fan-out actually performed.
    pub fn on_fanout(&self) {
        self.fanouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one replica selection that took the rendezvous-preferred
    /// replica.
    pub fn on_affinity_pick(&self) {
        self.affinity_picks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one replica selection where affinity was enabled but the
    /// preferred replica was tried, demoted, or saturated, so the
    /// baseline untried→non-demoted→least-outstanding order decided.
    pub fn on_affinity_fallback(&self) {
        self.affinity_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` partials actually inserted into sibling replicas by
    /// hot-state replication.
    pub fn on_warmed(&self, n: u64) {
        self.warmed_partials.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` unique donor cache entries shipped to the new owner
    /// by a migration cache handoff.
    pub fn on_handoff(&self, n: u64) {
        self.handoff_partials.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one hedge actually sent (a straggling part speculatively
    /// re-scattered to a sibling replica).
    pub fn on_hedge(&self) {
        self.hedges.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one hedge that resolved its part before the original
    /// (the speculation paid off).
    pub fn on_hedge_win(&self) {
        self.hedge_wins.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one hedge the token bucket refused (duplicate-load
    /// budget exhausted).
    pub fn on_hedge_denied(&self) {
        self.hedge_denied.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a replica passed over during selection because its
    /// circuit breaker refused traffic.
    pub fn on_breaker_skip(&self) {
        self.breaker_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the counters and latency summary out (segments are filled
    /// in by the router, which owns the replica handles).
    #[must_use]
    pub fn snapshot(&self) -> RouterCounters {
        let latency = {
            let h = self.latency.lock().expect("latency histogram poisoned");
            StageLatency {
                count: h.count(),
                mean_s: h.mean_s(),
                p50_s: h.quantile_s(0.50),
                p95_s: h.quantile_s(0.95),
                p99_s: h.quantile_s(0.99),
            }
        };
        RouterCounters {
            requests: self.requests.load(Ordering::Relaxed),
            responded: self.responded.load(Ordering::Relaxed),
            device_failed: self.device_failed.load(Ordering::Relaxed),
            reroutes: self.reroutes.load(Ordering::Relaxed),
            demoted_skips: self.demoted_skips.load(Ordering::Relaxed),
            rebalances: self.rebalances.load(Ordering::Relaxed),
            migrated_ions: self.migrated_ions.load(Ordering::Relaxed),
            route_hits: self.route_hits.load(Ordering::Relaxed),
            route_misses: self.route_misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            fanouts: self.fanouts.load(Ordering::Relaxed),
            affinity_picks: self.affinity_picks.load(Ordering::Relaxed),
            affinity_fallbacks: self.affinity_fallbacks.load(Ordering::Relaxed),
            warmed_partials: self.warmed_partials.load(Ordering::Relaxed),
            handoff_partials: self.handoff_partials.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            hedge_denied: self.hedge_denied.load(Ordering::Relaxed),
            breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
            latency,
        }
    }
}

/// Point-in-time copy of the router's own counters.
#[derive(Debug, Clone)]
pub struct RouterCounters {
    /// Requests accepted for routing (unknown-grid rejects excluded).
    pub requests: u64,
    /// Responses assembled and returned.
    pub responded: u64,
    /// Requests refused with `DeviceFailed` after re-route retries.
    pub device_failed: u64,
    /// Shard sub-requests re-sent to an alternate replica.
    pub reroutes: u64,
    /// Replica selections that skipped a fault-demoted replica.
    pub demoted_skips: u64,
    /// Rebalance passes that migrated at least one ion.
    pub rebalances: u64,
    /// Total ion ownerships migrated across all rebalances.
    pub migrated_ions: u64,
    /// Requests answered entirely from the route-level assembled-
    /// spectrum cache (zero scatter/gather).
    pub route_hits: u64,
    /// Route-cache lookups that missed.
    pub route_misses: u64,
    /// Requests answered by following another request's in-flight
    /// fan-out (single-flight coalescing).
    pub coalesced: u64,
    /// Scatter/gather fan-outs actually performed — with the route
    /// cache on, `requests = route_hits + coalesced + fanouts` for
    /// successful traffic.
    pub fanouts: u64,
    /// Replica selections that took the rendezvous-preferred replica.
    pub affinity_picks: u64,
    /// Replica selections where the preferred replica was unavailable
    /// (tried/demoted/saturated) and the baseline order decided.
    pub affinity_fallbacks: u64,
    /// Partials inserted into sibling replicas by hot-state
    /// replication.
    pub warmed_partials: u64,
    /// Unique donor cache entries shipped by migration cache handoffs.
    pub handoff_partials: u64,
    /// Straggling parts speculatively re-scattered to a sibling.
    pub hedges: u64,
    /// Hedges whose answer beat the original part's.
    pub hedge_wins: u64,
    /// Hedge attempts refused by the token bucket.
    pub hedge_denied: u64,
    /// Replica selections that skipped a breaker-blocked replica.
    pub breaker_skips: u64,
    /// End-to-end router latency quantiles/mean, seconds.
    pub latency: StageLatency,
}

/// One replica's view inside a [`SegmentSnapshot`].
#[derive(Debug, Clone)]
pub struct ReplicaSnapshot {
    /// Replica index within its segment.
    pub replica: usize,
    /// Whether the health ladder currently demotes this replica
    /// (every device quarantined or lost; a CPU-only replica is never
    /// demoted).
    pub demoted: bool,
    /// Shard sub-requests in flight on this replica right now.
    pub outstanding: u64,
    /// The replica's circuit-breaker state label
    /// (`"closed"`/`"open"`/`"half_open"`).
    pub breaker: &'static str,
    /// Lifetime Closed/HalfOpen → Open breaker transitions.
    pub breaker_opens: u64,
    /// Lifetime Open → HalfOpen transitions (probes granted).
    pub breaker_half_opens: u64,
    /// Lifetime HalfOpen → Closed transitions (probes succeeded).
    pub breaker_closes: u64,
    /// This replica's per-ion cache counters, totalled across cache
    /// shards.
    pub cache: CacheStats,
    /// The same counters per cache shard, in shard order.
    pub cache_shards: Vec<CacheStats>,
    /// This replica's service metrics with its engine's scheduler
    /// view (health ladder states live under `scheduler.health`).
    pub service: MetricsSnapshot,
}

/// One ring segment's view inside a [`RouterSnapshot`].
#[derive(Debug, Clone)]
pub struct SegmentSnapshot {
    /// Segment id (ring position).
    pub segment: usize,
    /// Ions the routing table currently assigns to this segment.
    pub owned_ions: u64,
    /// Sum of the static per-ion cost estimates over the owned ions —
    /// the capacity-accounting figure the rebalancer levels.
    pub capacity_cost: u64,
    /// Every replica serving this segment.
    pub replicas: Vec<ReplicaSnapshot>,
}

/// The router-level rollup: tier shape, router counters, and all
/// per-segment/per-replica detail.
#[derive(Debug, Clone)]
pub struct RouterSnapshot {
    /// Ring segments (shards).
    pub shards: usize,
    /// Replicas per segment.
    pub replicas_per_shard: usize,
    /// The router's own counters and latency.
    pub counters: RouterCounters,
    /// Per-segment detail, ascending segment id.
    pub segments: Vec<SegmentSnapshot>,
}

impl RouterSnapshot {
    /// The operator-facing JSON rendering of the whole tier — a
    /// **stable contract**: keys are sorted by `jsonlite`'s object
    /// ordering, segments and replicas appear in ascending id order,
    /// and each replica embeds its service's own stable
    /// [`MetricsSnapshot::to_json`] document. Changing a key or shape
    /// here (or in the service document) must update
    /// `tests/golden/router_snapshot.json`.
    #[must_use]
    pub fn to_json(&self) -> jsonlite::Value {
        let segments: Vec<jsonlite::Value> = self
            .segments
            .iter()
            .map(|seg| {
                let replicas: Vec<jsonlite::Value> = seg
                    .replicas
                    .iter()
                    .map(|r| {
                        jsonlite::ObjectBuilder::new()
                            .field("replica", r.replica)
                            .field("demoted", r.demoted)
                            .field("outstanding", r.outstanding)
                            .field("breaker", r.breaker)
                            .field("breaker_opens", r.breaker_opens)
                            .field("breaker_half_opens", r.breaker_half_opens)
                            .field("breaker_closes", r.breaker_closes)
                            .field("cache", r.cache.to_json())
                            .field(
                                "cache_shards",
                                r.cache_shards
                                    .iter()
                                    .map(CacheStats::to_json)
                                    .collect::<Vec<_>>(),
                            )
                            .field("service", r.service.to_json())
                            .build()
                    })
                    .collect();
                jsonlite::ObjectBuilder::new()
                    .field("segment", seg.segment)
                    .field("owned_ions", seg.owned_ions)
                    .field("capacity_cost", seg.capacity_cost)
                    .field("replicas", replicas)
                    .build()
            })
            .collect();
        jsonlite::ObjectBuilder::new()
            .field("shards", self.shards)
            .field("replicas_per_shard", self.replicas_per_shard)
            .field("requests", self.counters.requests)
            .field("responded", self.counters.responded)
            .field("device_failed", self.counters.device_failed)
            .field("reroutes", self.counters.reroutes)
            .field("demoted_skips", self.counters.demoted_skips)
            .field("rebalances", self.counters.rebalances)
            .field("migrated_ions", self.counters.migrated_ions)
            .field("route_hits", self.counters.route_hits)
            .field("route_misses", self.counters.route_misses)
            .field("coalesced", self.counters.coalesced)
            .field("fanouts", self.counters.fanouts)
            .field("affinity_picks", self.counters.affinity_picks)
            .field("affinity_fallbacks", self.counters.affinity_fallbacks)
            .field("warmed_partials", self.counters.warmed_partials)
            .field("handoff_partials", self.counters.handoff_partials)
            .field("hedges", self.counters.hedges)
            .field("hedge_wins", self.counters.hedge_wins)
            .field("hedge_denied", self.counters.hedge_denied)
            .field("breaker_skips", self.counters.breaker_skips)
            .field("latency", self.counters.latency.to_json())
            .field("segments", segments)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = RouterMetrics::new();
        m.on_request();
        m.on_request();
        m.on_responded(1e-3);
        m.on_reroute(3);
        m.on_demoted_skip();
        m.on_device_failed();
        m.on_rebalance(12);
        m.on_route_hit();
        m.on_route_miss();
        m.on_route_miss();
        m.on_coalesced();
        m.on_fanout();
        m.on_affinity_pick();
        m.on_affinity_pick();
        m.on_affinity_fallback();
        m.on_warmed(5);
        m.on_handoff(7);
        m.on_hedge();
        m.on_hedge();
        m.on_hedge_win();
        m.on_hedge_denied();
        m.on_breaker_skip();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.responded, 1);
        assert_eq!(s.reroutes, 3);
        assert_eq!(s.demoted_skips, 1);
        assert_eq!(s.device_failed, 1);
        assert_eq!((s.rebalances, s.migrated_ions), (1, 12));
        assert_eq!((s.route_hits, s.route_misses, s.coalesced), (1, 2, 1));
        assert_eq!(s.fanouts, 1);
        assert_eq!((s.affinity_picks, s.affinity_fallbacks), (2, 1));
        assert_eq!((s.warmed_partials, s.handoff_partials), (5, 7));
        assert_eq!((s.hedges, s.hedge_wins, s.hedge_denied), (2, 1, 1));
        assert_eq!(s.breaker_skips, 1);
        assert_eq!(s.latency.count, 1);
    }
}
