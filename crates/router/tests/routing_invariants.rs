//! Tier-level routing invariants:
//!
//! * a sharded response is **bitwise identical** to the single-engine
//!   service's across shard counts and scheduler policies;
//! * routing is stable across restarts (same seed => same owners) and
//!   seed-sensitive;
//! * a replica whose devices are all sticky-lost demotes out of
//!   selection while every request still completes (replica re-route
//!   with the CPU fallback as last resort) and no grants leak;
//! * a capacity rebalance under concurrent load migrates ownership
//!   with no lost and no double-computed work.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use atomdb::{AtomDatabase, DatabaseConfig};
use hybrid_sched::SchedPolicy;
use rrc_router::{RouterConfig, ShardRouter};
use rrc_service::{ElementSelection, ServiceConfig, SpectralService, SpectrumRequest};
use rrc_spectral::{EnergyGrid, GridPoint};

fn db() -> Arc<AtomDatabase> {
    Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: 8,
        ..DatabaseConfig::default()
    }))
}

fn grids() -> Vec<EnergyGrid> {
    vec![EnergyGrid::paper_waveband(64)]
}

fn point(i: usize) -> GridPoint {
    GridPoint {
        temperature_k: 9.0e6 + 7.3e5 * i as f64,
        density_cm3: 1.0,
        time_s: 0.0,
        index: i,
    }
}

fn request(i: usize) -> SpectrumRequest {
    SpectrumRequest::new(point(i), ElementSelection::All, 0)
}

/// Single-engine ground truth for `requests`, leak-checked.
fn baseline(db: &Arc<AtomDatabase>, requests: &[SpectrumRequest]) -> Vec<Vec<f64>> {
    let service = SpectralService::start(ServiceConfig::deterministic(Arc::clone(db), grids()));
    let out: Vec<Vec<f64>> = requests
        .iter()
        .map(|r| {
            service
                .submit(r.clone())
                .expect("baseline submit")
                .wait()
                .expect("baseline response")
                .bins
        })
        .collect();
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0, "baseline leaked grants");
    out
}

fn assert_bits_equal(got: &[f64], want: &[f64], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: bin count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{context}: bin {i} differs ({g:e} vs {w:e})"
        );
    }
}

#[test]
fn sharded_response_is_bitwise_identical_to_single_engine() {
    let db = db();
    let requests: Vec<SpectrumRequest> = (0..3).map(request).collect();
    let expected = baseline(&db, &requests);
    let total_ions = db.ions().len() as u64;
    for shards in [1usize, 2, 4] {
        for policy in [SchedPolicy::CostAware, SchedPolicy::PaperCount] {
            let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
            cfg.shards = shards;
            cfg.engine.policy = policy;
            let router = ShardRouter::start(cfg);
            for (req, want) in requests.iter().zip(&expected) {
                let got = router.query(req).expect("sharded response");
                assert_bits_equal(
                    &got.bins,
                    want,
                    &format!("{shards} shards, {policy:?}, point {}", req.point.index),
                );
                assert_eq!(
                    got.ions_computed + got.ions_from_cache,
                    total_ions,
                    "every ion answered exactly once"
                );
            }
            let report = router.shutdown();
            assert_eq!(report.leaked_grants, 0, "router leaked grants");
            assert_eq!(report.snapshot.counters.device_failed, 0);
        }
    }
}

#[test]
fn element_subset_requests_keep_parity_too() {
    let db = db();
    let subset = SpectrumRequest::new(point(1), ElementSelection::Elements(vec![2, 7]), 0);
    let expected = baseline(&db, std::slice::from_ref(&subset));
    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
    cfg.shards = 3;
    let router = ShardRouter::start(cfg);
    let got = router.query(&subset).expect("subset response");
    assert_bits_equal(&got.bins, &expected[0], "element subset, 3 shards");
    assert_eq!(router.shutdown().leaked_grants, 0);
}

#[test]
fn same_seed_routes_same_ion_to_same_shard_across_restarts() {
    let db = db();
    let start = |seed: u64| {
        let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
        cfg.shards = 4;
        cfg.ring_seed = seed;
        ShardRouter::start(cfg)
    };
    let owners = |router: &ShardRouter| -> Vec<usize> {
        (0..db.ions().len()).map(|i| router.segment_of(i)).collect()
    };
    let first = start(17);
    let map = owners(&first);
    assert_eq!(first.shutdown().leaked_grants, 0);
    // A "restart": a brand-new router built from configuration alone.
    let second = start(17);
    assert_eq!(owners(&second), map, "same seed must route identically");
    assert_eq!(second.shutdown().leaked_grants, 0);
    let reseeded = start(18);
    assert_ne!(owners(&reseeded), map, "the seed must matter");
    assert_eq!(reseeded.shutdown().leaked_grants, 0);
}

#[test]
fn lost_replica_demotes_and_rerouted_traffic_completes_fully() {
    let db = db();
    let requests: Vec<SpectrumRequest> = (0..24).map(request).collect();
    let expected = baseline(&db, &requests);
    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
    cfg.shards = 2;
    cfg.replicas = 2;
    cfg.cache_capacity = 0; // force real compute so the fault is exercised
    let router = ShardRouter::start(cfg);

    // Sticky-lose every device of replica (0, 0): the first task each
    // device touches fails Lost, which quarantines it permanently.
    let victim = router.replica(0, 0);
    for d in 0..victim.engine().gpus() {
        victim
            .engine()
            .device_faults(d)
            .expect("device exists")
            .force_lose();
    }

    let mut demoted_seen = false;
    for (req, want) in requests.iter().zip(&expected) {
        let got = router
            .query(req)
            .expect("every request completes despite the lost replica");
        assert_bits_equal(&got.bins, want, "response under replica loss");
        demoted_seen = demoted_seen || router.replica(0, 0).demoted();
    }
    assert!(
        demoted_seen,
        "sticky loss of every device must demote the replica"
    );

    // Post-demotion traffic still completes, now avoiding the victim.
    let after = request(100);
    let after_expected = baseline(&db, std::slice::from_ref(&after));
    let got = router.query(&after).expect("post-demotion response");
    assert_bits_equal(&got.bins, &after_expected[0], "post-demotion response");

    let snapshot = router.snapshot();
    assert!(
        snapshot.segments[0].replicas[0].demoted,
        "snapshot must report the demotion"
    );
    let report = router.shutdown();
    assert_eq!(report.leaked_grants, 0, "zero leaked grants after chaos");
    assert_eq!(report.snapshot.counters.device_failed, 0, "no refusals");
}

#[test]
fn rebalance_migrates_heavy_segment_without_losing_or_doubling_work() {
    let db = db();
    let total_ions = db.ions().len();
    let probe: Vec<SpectrumRequest> = (0..4).map(request).collect();
    let expected = baseline(&db, &probe);

    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
    cfg.shards = 2;
    cfg.vnodes = 1; // coarse ring => guaranteed capacity skew to level
    cfg.rebalance_factor = 1.0;
    let router = Arc::new(ShardRouter::start(cfg));

    let skew_before = {
        let s = router.snapshot();
        let costs: Vec<u64> = s.segments.iter().map(|g| g.capacity_cost).collect();
        assert_eq!(
            s.segments.iter().map(|g| g.owned_ions).sum::<u64>(),
            total_ions as u64
        );
        *costs.iter().max().unwrap() - *costs.iter().min().unwrap()
    };

    // Concurrent open-loop load while the rebalancer runs.
    let stop = Arc::new(AtomicBool::new(false));
    let served_counter = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let served_counter = Arc::clone(&served_counter);
            let probe = probe.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let slot = (w + i) % probe.len();
                    let got = router.query(&probe[slot]).expect("query during rebalance");
                    assert_bits_equal(
                        &got.bins,
                        &expected[slot],
                        "concurrent response during migration",
                    );
                    assert_eq!(
                        got.ions_computed + got.ions_from_cache,
                        total_ions as u64,
                        "exactly-once: every ion answered once, none dropped or doubled"
                    );
                    served += 1;
                    served_counter.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                served
            })
        })
        .collect();

    let mut migrated = 0usize;
    for _ in 0..32 {
        match router.rebalance() {
            Some(report) => {
                assert_ne!(report.from, report.to);
                assert!(!report.ions.is_empty());
                migrated += report.ions.len();
                // Ownership really moved, and nothing was lost.
                for &ion in &report.ions {
                    assert_eq!(router.segment_of(ion), report.to);
                }
            }
            None => break,
        }
    }
    // The rebalancer can converge before a slow-starting worker
    // finishes its first query (e.g. under full-suite parallel load):
    // keep the tier under load until both workers have demonstrably
    // overlapped the migrated table before calling time.
    while served_counter.load(Ordering::Relaxed) < 4 {
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    let served: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    assert!(served > 0, "workers made progress during migration");
    assert!(migrated > 0, "the skewed ring must trigger a migration");

    let snapshot = router.snapshot();
    assert_eq!(
        snapshot.segments.iter().map(|g| g.owned_ions).sum::<u64>(),
        total_ions as u64,
        "no ion lost or double-owned by migration"
    );
    let costs: Vec<u64> = snapshot.segments.iter().map(|g| g.capacity_cost).collect();
    let skew_after = *costs.iter().max().unwrap() - *costs.iter().min().unwrap();
    assert!(
        skew_after < skew_before,
        "rebalance must narrow the capacity skew ({skew_before} -> {skew_after})"
    );

    // Post-migration queries still match the single-engine bits.
    for (req, want) in probe.iter().zip(&expected) {
        let got = router.query(req).expect("post-migration response");
        assert_bits_equal(&got.bins, want, "post-migration response");
    }
    let router = Arc::try_unwrap(router).ok().expect("workers joined");
    let report = router.shutdown();
    assert_eq!(report.leaked_grants, 0);
    assert!(report.snapshot.counters.rebalances > 0);
    assert_eq!(report.snapshot.counters.device_failed, 0);
}

#[test]
fn unknown_grid_is_refused_and_closed_router_reports_closed() {
    let db = db();
    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
    cfg.shards = 1;
    let router = ShardRouter::start(cfg);
    let bad = SpectrumRequest::new(point(0), ElementSelection::All, 9);
    assert!(matches!(
        router.query(&bad),
        Err(rrc_service::ServiceError::UnknownGrid)
    ));
    assert_eq!(router.shutdown().leaked_grants, 0);
}
