//! Locality-tier invariants (router-level route cache, single-flight
//! coalescing, state affinity, hot-state replication, migration cache
//! handoff):
//!
//! * a route-cache replay is **bitwise identical** to the cache-off
//!   fan-out across shard counts and scheduler policies;
//! * concurrent identical misses admit exactly one fan-out (the rest
//!   coalesce onto the leader's flight or hit the fresh cache entry);
//! * affinity degrades to the baseline replica order when the
//!   preferred replica demotes, with every answer still correct;
//! * a rebalance ships the donor's cached partials to the new owner
//!   exactly once, so post-migration traffic replays instead of
//!   recomputing;
//! * promoting a hot state replicates its partials into sibling
//!   replica caches.

use std::sync::{Arc, Barrier};

use atomdb::{AtomDatabase, DatabaseConfig};
use hybrid_sched::SchedPolicy;
use rrc_router::{preferred_replica, RouterConfig, ShardRouter};
use rrc_service::{ElementSelection, Quantizer, ServiceConfig, SpectralService, SpectrumRequest};
use rrc_spectral::{EnergyGrid, GridPoint};

fn db() -> Arc<AtomDatabase> {
    Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: 8,
        ..DatabaseConfig::default()
    }))
}

fn grids() -> Vec<EnergyGrid> {
    vec![EnergyGrid::paper_waveband(64)]
}

fn point(i: usize) -> GridPoint {
    GridPoint {
        temperature_k: 9.0e6 + 7.3e5 * i as f64,
        density_cm3: 1.0,
        time_s: 0.0,
        index: i,
    }
}

fn request(i: usize) -> SpectrumRequest {
    SpectrumRequest::new(point(i), ElementSelection::All, 0)
}

/// Single-engine ground truth for `requests`, leak-checked.
fn baseline(db: &Arc<AtomDatabase>, requests: &[SpectrumRequest]) -> Vec<Vec<f64>> {
    let service = SpectralService::start(ServiceConfig::deterministic(Arc::clone(db), grids()));
    let out: Vec<Vec<f64>> = requests
        .iter()
        .map(|r| {
            service
                .submit(r.clone())
                .expect("baseline submit")
                .wait()
                .expect("baseline response")
                .bins
        })
        .collect();
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0, "baseline leaked grants");
    out
}

fn assert_bits_equal(got: &[f64], want: &[f64], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: bin count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{context}: bin {i} differs ({g:e} vs {w:e})"
        );
    }
}

#[test]
fn route_cache_replay_is_bitwise_identical_to_the_cache_off_fan_out() {
    let db = db();
    let requests: Vec<SpectrumRequest> = (0..3).map(request).collect();
    let expected = baseline(&db, &requests);
    let total_ions = db.ions().len() as u64;
    for shards in [1usize, 2, 4] {
        for policy in [SchedPolicy::CostAware, SchedPolicy::PaperCount] {
            let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
            cfg.shards = shards;
            cfg.replicas = 2;
            cfg.engine.policy = policy;
            cfg.route_cache_capacity = 64;
            let router = ShardRouter::start(cfg);
            // First pass fans out and populates the route cache.
            for (req, want) in requests.iter().zip(&expected) {
                let got = router.query(req).expect("cold response");
                assert_bits_equal(
                    &got.bins,
                    want,
                    &format!(
                        "cold, {shards} shards, {policy:?}, point {}",
                        req.point.index
                    ),
                );
                assert_eq!(got.ions_computed + got.ions_from_cache, total_ions);
            }
            // Second pass must replay the cached assembly: identical
            // bits, zero scatter/gather, every ion accounted cached.
            for (req, want) in requests.iter().zip(&expected) {
                let got = router.query(req).expect("warm response");
                assert_bits_equal(
                    &got.bins,
                    want,
                    &format!(
                        "warm, {shards} shards, {policy:?}, point {}",
                        req.point.index
                    ),
                );
                assert_eq!(got.ions_computed, 0, "a route hit must not recompute");
                assert_eq!(got.ions_from_cache, total_ions);
            }
            let report = router.shutdown();
            assert_eq!(report.leaked_grants, 0, "router leaked grants");
            let c = &report.snapshot.counters;
            assert_eq!(c.route_hits, requests.len() as u64, "second pass all hits");
            assert_eq!(c.fanouts, requests.len() as u64, "first pass all fan-outs");
            assert_eq!(
                c.requests,
                c.route_hits + c.coalesced + c.fanouts,
                "every request is a hit, a coalesce, or a fan-out"
            );
        }
    }
}

#[test]
fn racing_identical_misses_admit_exactly_one_fan_out() {
    let db = db();
    let req = request(0);
    let expected = baseline(&db, std::slice::from_ref(&req));
    let total_ions = db.ions().len() as u64;

    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
    cfg.shards = 2;
    cfg.route_cache_capacity = 16;
    let router = Arc::new(ShardRouter::start(cfg));

    const RACERS: usize = 8;
    let barrier = Arc::new(Barrier::new(RACERS));
    let racers: Vec<_> = (0..RACERS)
        .map(|_| {
            let router = Arc::clone(&router);
            let barrier = Arc::clone(&barrier);
            let req = req.clone();
            std::thread::spawn(move || {
                barrier.wait();
                router.query(&req).expect("racing query")
            })
        })
        .collect();
    for (i, racer) in racers.into_iter().enumerate() {
        let got = racer.join().expect("racer panicked");
        assert_bits_equal(&got.bins, &expected[0], &format!("racer {i}"));
        assert_eq!(got.ions_computed + got.ions_from_cache, total_ions);
    }

    let router = Arc::try_unwrap(router).ok().expect("racers joined");
    let report = router.shutdown();
    assert_eq!(report.leaked_grants, 0);
    let c = &report.snapshot.counters;
    assert_eq!(c.requests, RACERS as u64);
    assert_eq!(
        c.fanouts, 1,
        "concurrent identical misses must trigger exactly one fan-out"
    );
    assert_eq!(
        c.route_hits + c.coalesced,
        RACERS as u64 - 1,
        "every non-leader replays the leader's route"
    );
}

#[test]
fn affinity_falls_back_to_the_baseline_order_when_preferred_demotes() {
    let db = db();
    let req = request(0);
    let expected = baseline(&db, std::slice::from_ref(&req));

    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
    cfg.shards = 1;
    cfg.replicas = 2;
    cfg.cache_capacity = 0; // force real compute so the fault is exercised
    let ring_seed = cfg.ring_seed;
    let router = ShardRouter::start(cfg);

    // The replica affinity would pick for this state, derived exactly
    // as the router derives it (same quantizer, same seed).
    let key = Quantizer::new(0).state_key(&req.point, req.grid_id);
    let pref = preferred_replica(&key, 0, 2, ring_seed);

    // Sticky-lose every device of the preferred replica: the first
    // task each device touches fails Lost and quarantines it.
    let victim = router.replica(0, pref);
    for d in 0..victim.engine().gpus() {
        victim
            .engine()
            .device_faults(d)
            .expect("device exists")
            .force_lose();
    }

    let mut demoted_seen = false;
    for round in 0..24 {
        let got = router
            .query(&req)
            .expect("every request completes despite the lost preferred replica");
        assert_bits_equal(&got.bins, &expected[0], &format!("round {round}"));
        demoted_seen = demoted_seen || router.replica(0, pref).demoted();
    }
    assert!(
        demoted_seen,
        "sticky loss must demote the preferred replica"
    );

    let report = router.shutdown();
    assert_eq!(report.leaked_grants, 0, "zero leaked grants after chaos");
    let c = &report.snapshot.counters;
    assert_eq!(c.device_failed, 0, "no refusals");
    assert!(
        c.affinity_fallbacks > 0,
        "a demoted preferred replica must fall back to the baseline order"
    );
    assert_eq!(
        c.affinity_picks + c.affinity_fallbacks,
        c.requests,
        "with one segment, every request either picks or falls back"
    );
}

#[test]
fn migration_handoff_ships_cached_partials_exactly_once() {
    let db = db();
    let total_ions = db.ions().len() as u64;
    let probe: Vec<SpectrumRequest> = (0..4).map(request).collect();
    let expected = baseline(&db, &probe);

    let run = |handoff: bool| {
        let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
        cfg.shards = 2;
        cfg.vnodes = 1; // coarse ring => guaranteed capacity skew
        cfg.rebalance_factor = 1.0;
        cfg.migration_handoff = handoff;
        let router = ShardRouter::start(cfg);

        // Warm the tier: every segment computes and caches its ions.
        for (req, want) in probe.iter().zip(&expected) {
            let got = router.query(req).expect("warming query");
            assert_bits_equal(&got.bins, want, "warming response");
        }

        let mut handed_off = 0u64;
        let mut migrated = 0u64;
        for _ in 0..32 {
            match router.rebalance() {
                Some(report) => {
                    migrated += report.ions.len() as u64;
                    handed_off += report.handed_off;
                }
                None => break,
            }
        }
        assert!(migrated > 0, "the skewed ring must trigger a migration");

        // Post-migration replays: with handoff every ion answers from
        // a shard cache (the new owner received the donor's bits).
        let mut recomputed = 0u64;
        for (req, want) in probe.iter().zip(&expected) {
            let got = router.query(req).expect("post-migration response");
            assert_bits_equal(&got.bins, want, "post-migration response");
            assert_eq!(
                got.ions_computed + got.ions_from_cache,
                total_ions,
                "exactly-once: every ion answered once"
            );
            recomputed += got.ions_computed;
        }
        let report = router.shutdown();
        assert_eq!(report.leaked_grants, 0);
        assert_eq!(
            report.snapshot.counters.handoff_partials, handed_off,
            "counter mirrors the per-migration reports"
        );
        let warmed: u64 = report.engines.iter().map(|e| e.warmed_ions).sum();
        (handed_off, recomputed, warmed)
    };

    let (handed_off, recomputed, warmed) = run(true);
    assert!(handed_off > 0, "the warm donor must ship cached partials");
    assert_eq!(
        recomputed, 0,
        "handed-off partials must make post-migration traffic replay, not recompute"
    );
    assert!(
        warmed <= handed_off,
        "absent-only inserts never exceed the shipped entries"
    );
    assert!(warmed > 0, "the new owner must actually absorb entries");

    let (handed_off_off, recomputed_off, warmed_off) = run(false);
    assert_eq!(handed_off_off, 0, "handoff disabled ships nothing");
    assert_eq!(warmed_off, 0);
    assert!(
        recomputed_off > 0,
        "without handoff the migrated ions must be recomputed (the control \
         proving the handoff is what avoided the recompute)"
    );
}

#[test]
fn hot_state_promotion_replicates_partials_into_sibling_caches() {
    let db = db();
    let req = request(0);
    let expected = baseline(&db, std::slice::from_ref(&req));
    let total_ions = db.ions().len() as u64;

    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
    cfg.shards = 1;
    cfg.replicas = 2;
    cfg.hot_state_k = 2;
    let ring_seed = cfg.ring_seed;
    let router = ShardRouter::start(cfg);

    let key = Quantizer::new(0).state_key(&req.point, req.grid_id);
    let pref = preferred_replica(&key, 0, 2, ring_seed);
    let sibling = 1 - pref;

    for round in 0..4 {
        let got = router.query(&req).expect("hot query");
        assert_bits_equal(&got.bins, &expected[0], &format!("hot round {round}"));
        assert_eq!(got.ions_computed + got.ions_from_cache, total_ions);
    }

    let snapshot = router.snapshot();
    assert!(
        snapshot.segments[0].replicas[sibling].cache.warm_insertions >= total_ions,
        "promotion must push the hot state's partials into the sibling \
         replica's cache (got {} warm insertions, want >= {total_ions})",
        snapshot.segments[0].replicas[sibling].cache.warm_insertions
    );

    let report = router.shutdown();
    assert_eq!(report.leaked_grants, 0);
    let c = &report.snapshot.counters;
    assert!(
        c.warmed_partials >= total_ions,
        "the router must account the replicated partials"
    );
    let warmed: u64 = report.engines.iter().map(|e| e.warmed_ions).sum();
    assert_eq!(
        warmed, c.warmed_partials,
        "engine audit matches the router counter"
    );
}
