//! Request-level resilience properties of the sharded tier:
//!
//! * hedged re-scatter under injected lane stalls is **bitwise
//!   identical** to the unhedged tier across shard counts and both
//!   affinity policies — hedging may reorder timing, never bits;
//! * the hedge token bucket is a hard budget: under a 100% straggler
//!   storm with a frozen clock the router spends exactly `capacity`
//!   hedges and denies the rest;
//! * a replica whose lane drops every delivery trips its circuit
//!   breaker, receives **zero** requests while the breaker is open,
//!   and is re-admitted through a single half-open probe once the
//!   cooldown elapses.

use std::sync::Arc;
use std::time::Duration;

use atomdb::{AtomDatabase, DatabaseConfig};
use desim::VirtualClock;
use hybrid_sched::BreakerState;
use mpi_sim::LaneFaultPlan;
use rrc_router::{RouterConfig, ShardRouter};
use rrc_service::{ElementSelection, SpectrumRequest};
use rrc_spectral::{EnergyGrid, GridPoint};

fn db() -> Arc<AtomDatabase> {
    Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: 6,
        ..DatabaseConfig::default()
    }))
}

fn grids() -> Vec<EnergyGrid> {
    vec![EnergyGrid::paper_waveband(48)]
}

fn request(i: usize) -> SpectrumRequest {
    SpectrumRequest::new(
        GridPoint {
            temperature_k: 8.5e6 + 6.1e5 * i as f64,
            density_cm3: 1.0,
            time_s: 0.0,
            index: i,
        },
        ElementSelection::All,
        0,
    )
}

fn assert_bits_equal(got: &[f64], want: &[f64], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: bin count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{context}: bin {i} differs ({g:e} vs {w:e})"
        );
    }
}

/// Hedged fan-out under universal lane stalls returns the identical
/// bits the unhedged tier produces, across {1, 2, 4} shards and both
/// routing policies (affinity on/off) — and the stalls really do force
/// hedges to fire.
#[test]
fn hedged_rescatter_is_bitwise_identical_across_shards_and_policies() {
    let db = db();
    let requests: Vec<SpectrumRequest> = (0..3).map(request).collect();
    for shards in [1usize, 2, 4] {
        for affinity in [false, true] {
            let mut base_cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
            base_cfg.shards = shards;
            base_cfg.replicas = 2;
            base_cfg.affinity = affinity;
            let baseline = ShardRouter::start(base_cfg.clone());
            let want: Vec<Vec<f64>> = requests
                .iter()
                .map(|r| baseline.query(r).expect("baseline answers").bins)
                .collect();
            assert_eq!(baseline.shutdown().leaked_grants, 0);

            let mut hedged_cfg = base_cfg;
            hedged_cfg.hedge_quantile = 0.5;
            hedged_cfg.hedge_min_wait = Duration::from_millis(1);
            let hedged = ShardRouter::start(hedged_cfg);
            // Every lane straggles: each primary part stalls well past
            // the hedge trigger, so every slot hedges to its sibling.
            for lane in 0..shards * 2 {
                hedged.set_lane_faults(
                    lane,
                    LaneFaultPlan::seeded(41 + lane as u64).stall_rate(1.0, 8),
                );
            }
            for (i, r) in requests.iter().enumerate() {
                let got = hedged.query(r).expect("hedged answers");
                assert_bits_equal(
                    &got.bins,
                    &want[i],
                    &format!("shards={shards} affinity={affinity} request={i}"),
                );
            }
            let snapshot = hedged.snapshot();
            assert!(
                snapshot.counters.hedges >= 1,
                "shards={shards} affinity={affinity}: stalls past the \
                 trigger must hedge, got {:?}",
                snapshot.counters
            );
            assert_eq!(hedged.shutdown().leaked_grants, 0);
        }
    }
}

/// With a frozen manual clock (no refill) every hedge attempt beyond
/// the bucket's capacity is denied: a 100% straggler storm spends
/// exactly `capacity` tokens, never more.
#[test]
fn hedge_token_bucket_is_a_hard_budget_under_straggler_storm() {
    let db = db();
    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
    cfg.shards = 1;
    cfg.replicas = 2;
    cfg.affinity = false;
    cfg.hedge_quantile = 0.5;
    cfg.hedge_min_wait = Duration::from_millis(1);
    cfg.hedge_tokens = 2.0;
    cfg.hedge_refill_per_sec = 1000.0; // irrelevant: the clock is frozen
    cfg.clock = VirtualClock::manual();
    let tier = ShardRouter::start(cfg);
    // Both replicas straggle on every delivery, far past the trigger:
    // every request's single slot attempts exactly one hedge.
    for lane in 0..2 {
        tier.set_lane_faults(
            lane,
            LaneFaultPlan::seeded(7 + lane as u64).stall_rate(1.0, 30),
        );
    }
    for i in 0..6 {
        let _ = tier.query(&request(i)).expect("storm answers, slowly");
    }
    let counters = tier.snapshot().counters;
    assert_eq!(
        counters.hedges, 2,
        "exactly the bucket's capacity may hedge: {counters:?}"
    );
    assert_eq!(
        counters.hedge_denied, 4,
        "every further attempt must be denied: {counters:?}"
    );
    assert_eq!(tier.hedge_tokens_available(), 0.0, "bucket spent dry");
    assert_eq!(tier.shutdown().leaked_grants, 0);
}

/// A replica whose lane drops everything trips its breaker; while the
/// breaker is open the replica serves **zero** requests; once the
/// cooldown elapses the very next request carries the half-open probe,
/// and a healed replica closes the breaker and rejoins.
#[test]
fn open_breaker_starves_replica_until_probe_succeeds() {
    let db = db();
    let mut cfg = RouterConfig::deterministic(Arc::clone(&db), grids());
    cfg.shards = 1;
    cfg.replicas = 2;
    cfg.affinity = false;
    cfg.cache_capacity = 0;
    cfg.clock = VirtualClock::manual();
    let tier = ShardRouter::start(cfg);
    // Replica 0's lane eats every delivery; its parts resolve missing
    // and re-route to replica 1, each miss feeding the breaker.
    tier.set_lane_faults(0, LaneFaultPlan::seeded(3).drop_rate(1.0));
    let mut sent = 0usize;
    while tier.breaker(0, 0).state() != BreakerState::Open {
        assert!(sent < 64, "breaker should trip within a few dozen drops");
        let _ = tier.query(&request(sent)).expect("sibling covers the drop");
        sent += 1;
    }
    assert!(tier.breaker(0, 0).counters().opens >= 1);

    // Heal the lane — but the breaker is open and the (manual) clock
    // has not reached the cooldown, so replica 0 must see no traffic.
    tier.set_lane_faults(0, LaneFaultPlan::default());
    let frozen = tier.replica(0, 0).metrics().responded;
    for i in 0..8 {
        let _ = tier.query(&request(100 + i)).expect("replica 1 serves");
    }
    assert_eq!(
        tier.replica(0, 0).metrics().responded,
        frozen,
        "an open breaker must starve its replica completely"
    );
    assert_eq!(tier.breaker(0, 0).state(), BreakerState::Open);
    assert!(tier.snapshot().counters.breaker_skips >= 1);

    // Past the cooldown the next request is the probe — it must land
    // on replica 0 (probe-first selection), succeed, and close the
    // breaker.
    tier.clock().advance(1.0);
    let _ = tier.query(&request(200)).expect("probe succeeds");
    assert_eq!(tier.breaker(0, 0).state(), BreakerState::Closed);
    assert_eq!(
        tier.replica(0, 0).metrics().responded,
        frozen + 1,
        "the probe itself carries real traffic"
    );
    let transitions = tier.breaker(0, 0).counters();
    assert!(transitions.half_opens >= 1, "{transitions:?}");
    assert!(transitions.closes >= 1, "{transitions:?}");

    // A closed breaker readmits the replica to normal rotation.
    for i in 0..8 {
        let _ = tier.query(&request(300 + i)).expect("both replicas serve");
    }
    assert!(
        tier.replica(0, 0).metrics().responded > frozen + 1,
        "a recovered replica must rejoin the rotation"
    );
    assert_eq!(tier.shutdown().leaked_grants, 0);
}
