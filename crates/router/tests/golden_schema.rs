//! Golden-file lock on the operator-facing JSON contract of
//! [`rrc_router::RouterSnapshot::to_json`] (which embeds the service
//! tier's [`rrc_service::MetricsSnapshot::to_json`] per replica).
//!
//! The fixture is a hand-built snapshot with distinctive values so a
//! renamed/retyped/reordered key anywhere in the document fails the
//! byte comparison. To bless an intentional schema change, delete
//! `tests/golden/router_snapshot.json` and re-run this test once — it
//! rewrites the file and fails, and the next run passes. Commit the
//! regenerated file with the change that motivated it.

use hybrid_sched::{DimSnapshot, HealthState, Knob, TunerSnapshot};
use rrc_router::{ReplicaSnapshot, RouterCounters, RouterSnapshot, SegmentSnapshot};
use rrc_service::{CacheStats, MetricsSnapshot, StageLatency};

fn stage(count: u64, scale: f64) -> StageLatency {
    StageLatency {
        count,
        mean_s: 0.002 * scale,
        p50_s: 0.0015 * scale,
        p95_s: 0.004 * scale,
        p99_s: 0.005 * scale,
    }
}

fn cache_stats(hits: u64, misses: u64, insertions: u64, warm: u64, evictions: u64) -> CacheStats {
    CacheStats {
        hits,
        misses,
        insertions,
        warm_insertions: warm,
        evictions,
    }
}

fn service_metrics(demoted: bool) -> MetricsSnapshot {
    MetricsSnapshot {
        submitted: 40,
        responded: 39,
        shed: 3,
        shed_queue_full: 1,
        shed_infeasible: 2,
        caller_runs: 0,
        batches: 13,
        batched_requests: 39,
        queue_depth_peak: 5,
        fanout_retried_ions: 2,
        device_failures: 0,
        neighbor_hits: 3,
        neighbor_rejects: 1,
        queue: stage(39, 0.5),
        compute: stage(39, 1.0),
        total: stage(39, 1.5),
        per_priority: [stage(30, 1.2), stage(9, 3.0)],
        scheduler_steals: vec![4, 0],
        scheduler_cpu_steals: 1,
        scheduler_weighted_loads: vec![120, 80],
        scheduler_health: if demoted {
            vec![HealthState::Quarantined, HealthState::Quarantined]
        } else {
            vec![HealthState::Healthy, HealthState::Degraded]
        },
        scheduler_quarantines: u64::from(demoted) * 2,
        scheduler_probations: 0,
        scheduler_recoveries: 0,
        scheduler_cost_residual_milli: 37,
        scheduler_cost_observations: 210,
        scheduler_tuner: if demoted {
            None
        } else {
            Some(TunerSnapshot {
                epoch: 11,
                settled: false,
                dims: vec![
                    DimSnapshot {
                        knob: Knob::PackThreshold,
                        value: 24,
                        last_move: 1,
                    },
                    DimSnapshot {
                        knob: Knob::MaxBatch,
                        value: 12,
                        last_move: -1,
                    },
                ],
            })
        },
        cache: cache_stats(25, 15, 13, 2, 0),
        cache_shards: vec![cache_stats(20, 10, 9, 1, 0), cache_stats(5, 5, 4, 1, 0)],
    }
}

fn fixture() -> RouterSnapshot {
    RouterSnapshot {
        shards: 2,
        replicas_per_shard: 2,
        counters: RouterCounters {
            requests: 80,
            responded: 79,
            device_failed: 1,
            reroutes: 3,
            demoted_skips: 12,
            rebalances: 1,
            migrated_ions: 7,
            route_hits: 21,
            route_misses: 58,
            coalesced: 5,
            fanouts: 53,
            affinity_picks: 48,
            affinity_fallbacks: 5,
            warmed_partials: 18,
            handoff_partials: 6,
            hedges: 9,
            hedge_wins: 4,
            hedge_denied: 2,
            breaker_skips: 3,
            latency: stage(79, 2.0),
        },
        segments: vec![
            SegmentSnapshot {
                segment: 0,
                owned_ions: 30,
                capacity_cost: 61_234,
                replicas: vec![
                    ReplicaSnapshot {
                        replica: 0,
                        demoted: false,
                        outstanding: 1,
                        breaker: "closed",
                        breaker_opens: 0,
                        breaker_half_opens: 0,
                        breaker_closes: 0,
                        cache: cache_stats(25, 15, 13, 2, 0),
                        cache_shards: vec![
                            cache_stats(20, 10, 9, 1, 0),
                            cache_stats(5, 5, 4, 1, 0),
                        ],
                        service: service_metrics(false),
                    },
                    ReplicaSnapshot {
                        replica: 1,
                        demoted: true,
                        outstanding: 0,
                        breaker: "open",
                        breaker_opens: 2,
                        breaker_half_opens: 1,
                        breaker_closes: 0,
                        cache: cache_stats(10, 30, 30, 0, 4),
                        cache_shards: vec![cache_stats(10, 30, 30, 0, 4)],
                        service: service_metrics(true),
                    },
                ],
            },
            SegmentSnapshot {
                segment: 1,
                owned_ions: 14,
                capacity_cost: 9_876,
                replicas: vec![ReplicaSnapshot {
                    replica: 0,
                    demoted: false,
                    outstanding: 2,
                    breaker: "half_open",
                    breaker_opens: 1,
                    breaker_half_opens: 1,
                    breaker_closes: 1,
                    cache: cache_stats(0, 0, 0, 0, 0),
                    cache_shards: vec![cache_stats(0, 0, 0, 0, 0)],
                    service: service_metrics(false),
                }],
            },
        ],
    }
}

#[test]
fn router_snapshot_json_matches_the_golden_file() {
    let rendered = fixture().to_json().to_pretty();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("router_snapshot.json");
    if !path.exists() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, format!("{rendered}\n")).expect("write golden");
        panic!(
            "golden file was missing; wrote {} — re-run and commit it",
            path.display()
        );
    }
    let golden = std::fs::read_to_string(&path).expect("read golden");
    assert_eq!(
        rendered.trim_end(),
        golden.trim_end(),
        "RouterSnapshot::to_json drifted from the golden schema; if the \
         change is intentional, delete the golden file, re-run, and \
         commit the regenerated one"
    );
}
