//! Physical-consistency properties of the spectral substrate.

use atomdb::{AtomDatabase, DatabaseConfig};
use rrc_spectral::{EnergyGrid, GridPoint, Integrator, SerialCalculator};

fn db() -> AtomDatabase {
    AtomDatabase::generate(DatabaseConfig {
        max_z: 8,
        ..DatabaseConfig::default()
    })
}

fn point(t: f64, ne: f64) -> GridPoint {
    GridPoint {
        temperature_k: t,
        density_cm3: ne,
        time_s: 0.0,
        index: 0,
    }
}

#[test]
fn emissivity_scales_as_density_squared() {
    // dP/dE ~ n_e * n_ion and n_ion ~ n_e: doubling density quadruples
    // the emissivity bin by bin.
    let calc = SerialCalculator::new(
        db(),
        EnergyGrid::linear(50.0, 1500.0, 48),
        Integrator::Simpson { panels: 64 },
    );
    let s1 = calc.spectrum_at(&point(1e7, 1.0));
    let s2 = calc.spectrum_at(&point(1e7, 2.0));
    for (a, b) in s1.bins().iter().zip(s2.bins()) {
        if *a > 0.0 {
            assert!((b / a - 4.0).abs() < 1e-9, "{a} vs {b}");
        }
    }
}

#[test]
fn total_flux_is_stable_under_grid_refinement() {
    // Binned integral of a fixed physical spectrum: refining the grid
    // must not change the total (it is the same definite integral).
    let d = db();
    let coarse = SerialCalculator::new(
        d.clone(),
        EnergyGrid::linear(200.0, 1200.0, 40),
        Integrator::paper_cpu(),
    );
    let fine = SerialCalculator::new(
        d,
        EnergyGrid::linear(200.0, 1200.0, 160),
        Integrator::paper_cpu(),
    );
    let p = point(1e7, 1.0);
    let a = coarse.spectrum_at(&p).total();
    let b = fine.spectrum_at(&p).total();
    assert!((a - b).abs() / a < 1e-6, "coarse {a} vs fine {b}");
}

#[test]
fn log_grid_agrees_with_linear_grid_on_totals() {
    let d = db();
    let p = point(8e6, 1.0);
    let linear = SerialCalculator::new(
        d.clone(),
        EnergyGrid::linear(100.0, 1600.0, 128),
        Integrator::paper_cpu(),
    );
    let log = SerialCalculator::new(
        d,
        EnergyGrid::logarithmic(100.0, 1600.0, 128),
        Integrator::paper_cpu(),
    );
    let a = linear.spectrum_at(&p).total();
    let b = log.spectrum_at(&p).total();
    assert!((a - b).abs() / a < 1e-6, "linear {a} vs log {b}");
}

#[test]
fn recombination_edges_appear_in_the_spectrum() {
    // The fully stripped oxygen edge at 871 eV must produce a visible
    // jump: bins just above the edge carry much more flux than just
    // below once only O+8 contributes.
    let d = AtomDatabase::generate(DatabaseConfig {
        max_z: 8,
        ..DatabaseConfig::default()
    });
    let grid = EnergyGrid::linear(850.0, 890.0, 40);
    let calc = SerialCalculator::new(d.clone(), grid, Integrator::paper_cpu());
    // Only the O+8 -> O+7 ground level has its edge at 871 eV.
    let o8 = atomdb::Ion::new(8, 8).unwrap().dense_index();
    let s = calc.ion_spectrum(o8, &point(3e6, 1.0));
    let edge_ev = 13.605693 * 64.0; // 870.76 eV
    let below = s.grid().locate(edge_ev - 5.0).unwrap();
    let above = s.grid().locate(edge_ev + 5.0).unwrap();
    assert!(
        s.bins()[above] > s.bins()[below] * 3.0,
        "below {} above {}",
        s.bins()[below],
        s.bins()[above]
    );
}

#[test]
fn cie_population_peaks_move_the_dominant_ion() {
    // At low T oxygen's low charge states dominate the RRC; at high T
    // the hydrogen-like stage does.
    let d = db();
    let grid = EnergyGrid::linear(50.0, 1500.0, 64);
    let calc = SerialCalculator::new(d.clone(), grid, Integrator::Simpson { panels: 64 });
    let flux_of = |charge: u8, t: f64| {
        let idx = atomdb::Ion::new(8, charge).unwrap().dense_index();
        calc.ion_spectrum(idx, &point(t, 1.0)).total()
    };
    // Low charge wins cold; high charge wins hot. (The Kramers cross
    // section scales as I^2, giving O+8 a ~256x per-ion advantage, so
    // the cold point must be cold enough for the population contrast to
    // dominate.)
    assert!(flux_of(2, 5e4) > flux_of(8, 5e4));
    assert!(flux_of(8, 3e7) > flux_of(2, 3e7));
}
