//! Golden regression pin: the exact per-bin emissivity of a small fixed
//! configuration. Any change to the physics constants, the level
//! census, the CIE populations, or the Simpson arithmetic will move
//! these numbers — which is precisely the alarm this test provides.
//! (If a change is *intended* to alter the physics, regenerate the
//! constants below and say so in the commit.)

use atomdb::{AtomDatabase, DatabaseConfig};
use rrc_spectral::{EnergyGrid, GridPoint, Integrator, SerialCalculator};

/// H..Be, 12 bins over 50-500 eV, T = 1.2e6 K, Simpson-64.
const GOLDEN: [f64; 12] = [
    5.212240990094297e-26,
    3.991164870097384e-26,
    2.7771964438707676e-26,
    1.932473433408076e-26,
    1.344684704360853e-26,
    9.356801098341646e-27,
    6.510799617410912e-27,
    4.530449158055865e-27,
    3.1524498955308145e-27,
    2.1935883169908184e-27,
    1.5263778533832627e-27,
    1.0621087527011331e-27,
];

#[test]
fn small_spectrum_matches_pinned_values() {
    let db = AtomDatabase::generate(DatabaseConfig {
        max_z: 4,
        ..DatabaseConfig::default()
    });
    let grid = EnergyGrid::linear(50.0, 500.0, 12);
    let point = GridPoint {
        temperature_k: 1.2e6,
        density_cm3: 1.0,
        time_s: 0.0,
        index: 0,
    };
    let spectrum =
        SerialCalculator::new(db, grid, Integrator::Simpson { panels: 64 }).spectrum_at(&point);
    for (i, (&got, &want)) in spectrum.bins().iter().zip(&GOLDEN).enumerate() {
        // Allow a few ulps of cross-platform libm drift, nothing more.
        assert!(
            (got - want).abs() <= 1e-12 * want.abs(),
            "bin {i}: {got:e} vs pinned {want:e}"
        );
    }
}
