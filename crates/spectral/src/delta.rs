//! Delta classification for incremental spectrum recalculation.
//!
//! A parameter sweep or a fan-out of *similar* requests changes the
//! plasma state `(T, n_e)` by small amounts between spectra. Because
//! the prepared RRC integrand is a pure decaying exponential above its
//! threshold,
//!
//! ```text
//! f(E) = coeff · exp(-(E - I) / kT)      for E ≥ I,   0 below,
//! ```
//!
//! the pointwise ratio between the *new* and *old* state of one level is
//!
//! ```text
//! r(E) = (coeff'/coeff) · exp(-(E - I) · (1/kT' - 1/kT)),
//! ```
//!
//! which is **monotone in `E`** — its extremes over a level's
//! integration domain sit exactly at the domain endpoints. That gives a
//! cheap, *analytic* bound on how much an ion's per-bin partial can
//! have changed, with no integration at all: evaluate the ratio at the
//! clamped window start and at the upper edge of the last in-window bin
//! (the hydrogenic level windows of
//! [`window_bin_range`](crate::calculator::window_bin_range)), take the
//! worst deviation from 1 across levels, and compare against a
//! tolerance. Ions within tolerance keep their resident partials
//! verbatim; only the rest are re-integrated.
//!
//! Soundness notes:
//!
//! - The bound is exact for the continuum integral under any
//!   positive-weight rule (Simpson, Gauss–Legendre, adaptive QAGS):
//!   nonnegative integrands scaled pointwise by `r(E) ∈ [lo, hi]`
//!   produce integrals scaled by a factor in `[lo, hi]`. Romberg's
//!   Richardson extrapolation mixes estimates with signed weights, so
//!   its *numerical* value can wiggle slightly outside the continuum
//!   bound; [`BOUND_SAFETY`] absorbs that (and FP slop in the bound
//!   arithmetic itself).
//! - A computed bound of zero does **not** imply bitwise-equal
//!   partials (a ratio can round to exactly 1.0 while the partials
//!   differ in their last ulp), and the *measured* difference between
//!   two computed partials carries the kernels' own rounding noise, so
//!   inexact levels add [`BOUND_NOISE_FLOOR`] to the bound. Bitwise
//!   reuse is only ever granted through [`DeltaClass::Identical`],
//!   which demands provably identical arithmetic: both populations
//!   zero, all windows empty, or bitwise equal `(coeff, 1/kT)` with
//!   identical bin ranges.
//! - Any structural change — the ion's population flipping between
//!   zero and nonzero, or a level's `(skip, end, clamped_lo)` bin range
//!   moving — is [`DeltaClass::Affected`]: the zero set of the partial
//!   changes and no ratio bound applies.

use atomdb::AtomDatabase;

use crate::calculator::{ion_integrands, level_window, window_bin_range};
use crate::params::GridPoint;

/// Multiplier applied to the analytic ratio bound before it is
/// compared with a tolerance, absorbing floating-point slop in the
/// bound arithmetic and rule-level wiggle (see module docs).
pub const BOUND_SAFETY: f64 = 1.01;

/// Additive floor on the bound of any inexact level. The *measured*
/// per-bin difference between two computed partials carries the
/// accumulated rounding noise of the ~129-sample kernels (sequential
/// positive sums: worst case a few hundred ulp ≈ 6e-14 relative) on
/// top of the analytic ratio, so a sound bound must cover that noise.
/// Consequently tolerances below this floor behave like tolerance
/// zero: only provably bitwise-identical ions are reused.
pub const BOUND_NOISE_FLOOR: f64 = 1e-13;

/// How one ion's partial spectrum relates across two plasma states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaClass {
    /// The partial is provably **bitwise identical** at both states
    /// (zero population at both, all level windows empty, or bitwise
    /// equal prepared parameters with identical bin ranges). Reusable
    /// at any tolerance, including zero.
    Identical,
    /// Every bin of the partial changes by at most this relative
    /// factor. Reusable when the bound is within the caller's
    /// tolerance; never below [`BOUND_NOISE_FLOOR`], so a tolerance of
    /// zero always recomputes inexact ions.
    Bounded(f64),
    /// No bound applies: the population flipped between zero and
    /// nonzero, a level's bin range moved, or the ratio arithmetic
    /// degenerated. Must be recomputed.
    Affected,
}

impl DeltaClass {
    /// Whether a resident partial classified as `self` may be reused
    /// in place of recomputation at `tolerance` (the maximum per-bin
    /// relative deviation the caller accepts).
    #[must_use]
    pub fn reusable(&self, tolerance: f64) -> bool {
        match *self {
            DeltaClass::Identical => true,
            DeltaClass::Bounded(b) => b <= tolerance,
            DeltaClass::Affected => false,
        }
    }

    /// The relative-change bound, if one applies (`Identical` ⇒ 0).
    #[must_use]
    pub fn bound(&self) -> Option<f64> {
        match *self {
            DeltaClass::Identical => Some(0.0),
            DeltaClass::Bounded(b) => Some(b),
            DeltaClass::Affected => None,
        }
    }
}

/// Classify how ion `ion_index`'s partial spectrum over `bins` changes
/// between plasma states `old` and `new`.
///
/// `bins` must be the same ascending `(lo, hi)` bin list the partials
/// were integrated over — the classification keys on the exact
/// `(skip, end, clamped_lo)` window resolution the kernels use.
///
/// # Panics
/// Panics if `ion_index` is out of range for `db`.
#[must_use]
pub fn classify_ion(
    db: &AtomDatabase,
    ion_index: usize,
    old: &GridPoint,
    new: &GridPoint,
    bins: &[(f64, f64)],
) -> DeltaClass {
    let levels = db.levels_by_index(ion_index).len();
    let old_int = ion_integrands(db, ion_index, 0..levels, old);
    let new_int = ion_integrands(db, ion_index, 0..levels, new);
    let (old_int, new_int) = match (old_int, new_int) {
        // Zero population at both states: the partial is all zeros both
        // times — bitwise identical by construction.
        (None, None) => return DeltaClass::Identical,
        // Population flipped between zero and nonzero.
        (Some(_), None) | (None, Some(_)) => return DeltaClass::Affected,
        (Some(o), Some(n)) => (o, n),
    };
    debug_assert_eq!(old_int.len(), new_int.len(), "same level list");

    let kt_old = old.kt_ev();
    let kt_new = new.kt_ev();
    let mut bound = 0.0f64;
    let mut exact = true;
    for (o, n) in old_int.iter().zip(&new_int) {
        let w_old = level_window(o.binding_ev, kt_old);
        let w_new = level_window(n.binding_ev, kt_new);
        let (s_o, e_o, c_o) = window_bin_range(bins, w_old.0, w_old.1);
        let (s_n, e_n, c_n) = window_bin_range(bins, w_new.0, w_new.1);
        let empty_o = s_o >= e_o;
        let empty_n = s_n >= e_n;
        if empty_o && empty_n {
            // The level touches no bin at either state: identically
            // zero contribution both times.
            continue;
        }
        if empty_o != empty_n || s_o != s_n || e_o != e_n || c_o.to_bits() != c_n.to_bits() {
            // The zero set of the contribution moved; no ratio bound.
            return DeltaClass::Affected;
        }
        let p_o = o.prepare();
        let p_n = n.prepare();
        debug_assert_eq!(
            p_o.threshold_ev.to_bits(),
            p_n.threshold_ev.to_bits(),
            "same level, same binding energy"
        );
        if p_o.coeff.to_bits() == p_n.coeff.to_bits()
            && p_o.inv_kt.to_bits() == p_n.inv_kt.to_bits()
        {
            // Bitwise-equal prepared parameters over an identical bin
            // range: the level's contribution is bitwise identical.
            continue;
        }
        let positive = |c: f64| matches!(c.partial_cmp(&0.0), Some(std::cmp::Ordering::Greater));
        if !positive(p_o.coeff) || !positive(p_n.coeff) {
            // Degenerate prefactor (zero, negative, or NaN): the ratio
            // argument collapses.
            return DeltaClass::Affected;
        }
        // The integration domain of this level is [clamped window
        // start, upper edge of the last in-window bin]; the ratio is
        // monotone in E, so these endpoints bracket it exactly.
        let e_lo = c_o;
        let e_hi = bins[e_o - 1].1;
        let r0 = p_n.coeff / p_o.coeff;
        let d_ik = p_n.inv_kt - p_o.inv_kt;
        let r_lo = r0 * (-(e_lo - p_o.threshold_ev) * d_ik).exp();
        let r_hi = r0 * (-(e_hi - p_o.threshold_ev) * d_ik).exp();
        if !r_lo.is_finite() || !r_hi.is_finite() {
            return DeltaClass::Affected;
        }
        let lo = r_lo.min(r_hi);
        let hi = r_lo.max(r_hi);
        bound = bound.max((hi - 1.0).max(1.0 - lo));
        exact = false;
    }
    if exact {
        DeltaClass::Identical
    } else {
        DeltaClass::Bounded(bound * BOUND_SAFETY + BOUND_NOISE_FLOOR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculator::{emissivity_into_mode, Integrator};
    use crate::grid::EnergyGrid;
    use quadrature::{MathMode, QagsWorkspace};

    fn db() -> AtomDatabase {
        AtomDatabase::generate(atomdb::DatabaseConfig {
            max_z: 8,
            ..Default::default()
        })
    }

    fn grid() -> EnergyGrid {
        EnergyGrid::linear(50.0, 2000.0, 96)
    }

    fn point(t: f64, n: f64) -> GridPoint {
        GridPoint {
            temperature_k: t,
            density_cm3: n,
            time_s: 0.0,
            index: 0,
        }
    }

    /// Reference partial: the same fused Simpson path the engine uses.
    fn partial(db: &AtomDatabase, ion: usize, p: &GridPoint, grid: &EnergyGrid) -> Vec<f64> {
        let mut out = vec![0.0; grid.bins()];
        let mut ws = QagsWorkspace::new();
        let levels = db.levels_by_index(ion).len();
        emissivity_into_mode(
            db,
            ion,
            0..levels,
            p,
            grid,
            Integrator::Simpson { panels: 64 },
            &mut ws,
            &mut out,
            MathMode::Exact,
        );
        out
    }

    #[test]
    fn identical_states_classify_identical() {
        let db = db();
        let grid = grid();
        let bins = grid.bin_pairs();
        let p = point(1.0e7, 1.0);
        for ion in 0..db.ions().len() {
            assert_eq!(
                classify_ion(&db, ion, &p, &p, &bins),
                DeltaClass::Identical,
                "ion {ion}"
            );
        }
    }

    /// Satellite property (a): whenever an ion's contribution actually
    /// changes by more than the classifier's bound, the classifier must
    /// not have authorized reuse at that bound — i.e. the affected set
    /// at any tolerance is a superset of the truly-changed-beyond-
    /// tolerance set. Checked in its strongest form: the measured
    /// per-bin relative change never exceeds the claimed bound, and
    /// `Identical` ions are bitwise unchanged.
    #[test]
    fn bound_dominates_measured_change() {
        let db = db();
        let grid = grid();
        let bins = grid.bin_pairs();
        let base = point(1.0e7, 1.0);
        let deltas = [
            (1.0 + 1e-14, 1.0),
            (1.0 + 1e-10, 1.0),
            (1.0 + 1e-6, 1.0 + 1e-6),
            (1.0, 1.0 + 1e-8),
            (1.0 - 3e-11, 1.0 + 2e-9),
        ];
        let mut bounded_seen = 0usize;
        for (ft, fd) in deltas {
            let new = point(base.temperature_k * ft, base.density_cm3 * fd);
            for ion in 0..db.ions().len() {
                let class = classify_ion(&db, ion, &base, &new, &bins);
                let old_p = partial(&db, ion, &base, &grid);
                let new_p = partial(&db, ion, &new, &grid);
                match class {
                    DeltaClass::Identical => {
                        for (b, (o, n)) in old_p.iter().zip(&new_p).enumerate() {
                            assert_eq!(o.to_bits(), n.to_bits(), "ion {ion} bin {b}");
                        }
                    }
                    DeltaClass::Bounded(bound) => {
                        bounded_seen += 1;
                        for (b, (o, n)) in old_p.iter().zip(&new_p).enumerate() {
                            if *o == 0.0 && *n == 0.0 {
                                continue;
                            }
                            assert!(
                                *o > 0.0 && *n > 0.0,
                                "ranges equal ⇒ zero sets equal (ion {ion} bin {b})"
                            );
                            let rel = (n - o).abs() / o;
                            assert!(
                                rel <= bound,
                                "ion {ion} bin {b}: measured {rel:e} > bound {bound:e}"
                            );
                        }
                    }
                    DeltaClass::Affected => {}
                }
            }
        }
        assert!(bounded_seen > 0, "fixture too degenerate to test bounds");
    }

    #[test]
    fn tiny_steps_stay_within_default_tolerance() {
        // The bench sweep relies on this: a 1e-15 relative temperature
        // step bounds every populated ion well under 1e-12.
        let db = db();
        let bins = grid().bin_pairs();
        let base = point(1.0e7, 1.0);
        let new = point(1.0e7 * (1.0 + 1e-15), 1.0);
        for ion in 0..db.ions().len() {
            let class = classify_ion(&db, ion, &base, &new, &bins);
            assert!(
                class.reusable(1e-12),
                "ion {ion}: {class:?} not reusable at 1e-12"
            );
        }
    }

    #[test]
    fn large_steps_are_not_reusable_at_tight_tolerance() {
        let db = db();
        let bins = grid().bin_pairs();
        let base = point(1.0e7, 1.0);
        let new = point(2.0e7, 1.0);
        let any_blocked = (0..db.ions().len())
            .any(|ion| !classify_ion(&db, ion, &base, &new, &bins).reusable(1e-12));
        assert!(any_blocked, "doubling T must affect someone");
    }

    #[test]
    fn tolerance_zero_reuses_only_identical() {
        let db = db();
        let bins = grid().bin_pairs();
        let base = point(1.0e7, 1.0);
        let new = point(1.0e7 * (1.0 + 1e-15), 1.0);
        for ion in 0..db.ions().len() {
            let class = classify_ion(&db, ion, &base, &new, &bins);
            if class.reusable(0.0) {
                assert_eq!(class, DeltaClass::Identical, "ion {ion}");
            }
        }
    }

    #[test]
    fn population_flip_is_affected() {
        // The CIE log-normal never underflows a stage's fraction to an
        // exact zero across temperature, so the real zero↔nonzero flip
        // is the electron density dropping to zero ("plasma off"):
        // classify must refuse to bound across it.
        let db = db();
        let bins = grid().bin_pairs();
        let on = point(1.0e7, 1.0);
        let off = point(1.0e7, 0.0);
        let mut flips = 0usize;
        for ion in 0..db.ions().len() {
            let levels = db.levels_by_index(ion).len();
            let at_on = ion_integrands(&db, ion, 0..levels, &on).is_some();
            let at_off = ion_integrands(&db, ion, 0..levels, &off).is_some();
            if at_on != at_off {
                flips += 1;
                assert_eq!(
                    classify_ion(&db, ion, &on, &off, &bins),
                    DeltaClass::Affected,
                    "ion {ion}"
                );
                assert_eq!(
                    classify_ion(&db, ion, &off, &on, &bins),
                    DeltaClass::Affected,
                    "ion {ion} reversed"
                );
            }
        }
        assert!(flips > 0, "fixture should produce population flips");
    }
}
