//! The RRC integrand (paper Eq. 1).
//!
//! For a free electron of a Maxwellian plasma at temperature `kT`
//! recombining onto level `n` (binding energy `I = I_{Z,j,n}`) of ion
//! `(Z, j)`, the differential emitted power per photon energy is
//!
//! ```text
//! dP/dE = n_e * n_{Z,j+1} * 4 * (E_g - I)/kT * sqrt(1/(2 pi m_e kT)) * A
//! A     = sigma_rec_n(E_g - I) * exp(-(E_g - I)/kT) * E_g
//! ```
//!
//! The photon energy `E_g` must exceed the binding energy: below
//! threshold the integrand is identically zero, which puts a kink at the
//! recombination edge — the feature that makes per-bin adaptive
//! quadrature worthwhile near edges.

use atomdb::recombination_cross_section_times_energy;

use crate::ME_C2_EV;

/// The fully bound RRC integrand for one (ion, level, plasma state)
/// triple: a reusable `E_gamma -> dP/dE` function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RrcIntegrand {
    /// Plasma temperature as `kT` in eV.
    pub kt_ev: f64,
    /// Level binding energy `I_{Z,j,n}` in eV.
    pub binding_ev: f64,
    /// Principal quantum number of the capturing level.
    pub n: u16,
    /// Electron density `n_e` in cm^-3.
    pub electron_density: f64,
    /// Density of the recombining ion `n_{Z,j+1}` in cm^-3.
    pub ion_density: f64,
}

impl RrcIntegrand {
    /// The Maxwellian prefactor `4/kT * sqrt(1/(2 pi m_e kT))` with the
    /// electron mass expressed through its rest energy (natural units:
    /// the overall absolute scale is arbitrary for a normalized-flux
    /// spectrum, the *shape* in `kT` is what matters).
    #[must_use]
    pub fn prefactor(&self) -> f64 {
        self.electron_density * self.ion_density * 4.0 / self.kt_ev
            * (1.0 / (2.0 * std::f64::consts::PI * ME_C2_EV * self.kt_ev)).sqrt()
    }

    /// Evaluate `dP/dE` at photon energy `e_gamma_ev`. Zero below the
    /// recombination threshold; *at* threshold the `1/E_e` divergence of
    /// the Kramers cross section cancels the Maxwellian `E_e` factor, so
    /// the continuous limit value is returned (closed quadrature rules
    /// sample the threshold endpoint).
    #[must_use]
    pub fn evaluate(&self, e_gamma_ev: f64) -> f64 {
        let electron_ev = e_gamma_ev - self.binding_ev;
        if electron_ev < 0.0 || self.kt_ev <= 0.0 {
            return 0.0;
        }
        let sigma_e =
            recombination_cross_section_times_energy(self.n, self.binding_ev, electron_ev);
        let a = sigma_e * (-electron_ev / self.kt_ev).exp() * e_gamma_ev;
        self.prefactor() * a / self.kt_ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrand() -> RrcIntegrand {
        RrcIntegrand {
            kt_ev: 862.0, // ~1e7 K
            binding_ev: 870.0,
            n: 1,
            electron_density: 1.0,
            ion_density: 1e-4,
        }
    }

    #[test]
    fn zero_below_threshold_finite_at_threshold() {
        let f = integrand();
        assert_eq!(f.evaluate(f.binding_ev - 1.0), 0.0);
        assert_eq!(f.evaluate(0.0), 0.0);
        // At the edge the continuous limit is positive and matches the
        // just-above-threshold value.
        let at = f.evaluate(f.binding_ev);
        let above = f.evaluate(f.binding_ev + 1e-9);
        assert!(at > 0.0);
        assert!((at - above).abs() / at < 1e-9);
    }

    #[test]
    fn positive_above_threshold() {
        let f = integrand();
        assert!(f.evaluate(f.binding_ev + 1.0) > 0.0);
        assert!(f.evaluate(f.binding_ev + 500.0) > 0.0);
    }

    #[test]
    fn exponential_cutoff_far_above_threshold() {
        let f = integrand();
        let near = f.evaluate(f.binding_ev + f.kt_ev);
        let far = f.evaluate(f.binding_ev + 20.0 * f.kt_ev);
        assert!(far < near * 1e-4);
    }

    #[test]
    fn scales_linearly_with_densities() {
        let f = integrand();
        let mut f2 = f;
        f2.electron_density *= 3.0;
        f2.ion_density *= 2.0;
        let e = f.binding_ev + 100.0;
        assert!((f2.evaluate(e) / f.evaluate(e) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hotter_plasma_has_harder_tail() {
        let cold = integrand();
        let hot = RrcIntegrand {
            kt_ev: 4.0 * cold.kt_ev,
            ..cold
        };
        let e = cold.binding_ev + 10.0 * cold.kt_ev;
        // Relative to its near-threshold value, the hot plasma keeps more
        // flux far above threshold.
        let cold_ratio = cold.evaluate(e) / cold.evaluate(cold.binding_ev + cold.kt_ev);
        let hot_ratio = hot.evaluate(e) / hot.evaluate(cold.binding_ev + cold.kt_ev);
        assert!(hot_ratio > cold_ratio);
    }

    #[test]
    fn integrand_is_finite_and_smooth_above_edge() {
        let f = integrand();
        let mut prev = f.evaluate(f.binding_ev + 1e-6);
        assert!(prev.is_finite());
        for i in 1..1000 {
            let e = f.binding_ev + 1e-6 + i as f64;
            let v = f.evaluate(e);
            assert!(v.is_finite());
            // No wild oscillation: neighbouring samples stay within 10x.
            if prev > 0.0 && v > 0.0 {
                let r = v / prev;
                assert!(r < 10.0 && r > 0.1, "jump at {e}: {r}");
            }
            prev = v;
        }
    }
}
