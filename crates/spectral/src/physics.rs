//! The RRC integrand (paper Eq. 1).
//!
//! For a free electron of a Maxwellian plasma at temperature `kT`
//! recombining onto level `n` (binding energy `I = I_{Z,j,n}`) of ion
//! `(Z, j)`, the differential emitted power per photon energy is
//!
//! ```text
//! dP/dE = n_e * n_{Z,j+1} * 4 * (E_g - I)/kT * sqrt(1/(2 pi m_e kT)) * A
//! A     = sigma_rec_n(E_g - I) * exp(-(E_g - I)/kT) * E_g
//! ```
//!
//! The photon energy `E_g` must exceed the binding energy: below
//! threshold the integrand is identically zero, which puts a kink at the
//! recombination edge — the feature that makes per-bin adaptive
//! quadrature worthwhile near edges.
//!
//! # The prepared hot path
//!
//! Everything in Eq. 1 except the `exp` depends only on the
//! (ion, level, plasma-state) triple, not on the sample energy: with the
//! Kramers cross section `sigma_rec_n(E_e) = sigma_0 I^2 / (n E_e E_g)`
//! the `E_e` and `E_g` factors cancel and the whole integrand collapses
//! to
//!
//! ```text
//! dP/dE = C * exp(-(E_g - I)/kT),   C = prefactor * sigma_0 I^2 / (n kT)
//! ```
//!
//! [`PreparedIntegrand`] hoists `C`, `1/kT` and the threshold out of the
//! per-sample path, leaving one compare, one subtract, one multiply and
//! one `exp` per sample. This is the form the serial calculator, the
//! QAGS fallback and the SIMT kernel all evaluate.

use atomdb::recombination_cross_section_times_energy;

use crate::ME_C2_EV;

/// The fully bound RRC integrand for one (ion, level, plasma state)
/// triple: a reusable `E_gamma -> dP/dE` function.
///
/// Constructed with [`RrcIntegrand::new`], which precomputes the
/// per-sample invariants once; the descriptive fields stay public for
/// reading, and the cached [`PreparedIntegrand`] keeps them consistent
/// by being derived at construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RrcIntegrand {
    /// Plasma temperature as `kT` in eV.
    pub kt_ev: f64,
    /// Level binding energy `I_{Z,j,n}` in eV.
    pub binding_ev: f64,
    /// Principal quantum number of the capturing level.
    pub n: u16,
    /// Electron density `n_e` in cm^-3.
    pub electron_density: f64,
    /// Density of the recombining ion `n_{Z,j+1}` in cm^-3.
    pub ion_density: f64,
    /// Cached per-sample invariants (kept private so it cannot drift
    /// from the fields above).
    prepared: PreparedIntegrand,
}

/// The per-sample invariants of one RRC integrand, hoisted out of the
/// evaluation loop: `dP/dE = coeff * exp(-(E_g - threshold) * inv_kt)`
/// above threshold, zero below.
///
/// `Copy` and 24 bytes — kernels copy it into their hot loop instead of
/// chasing the full [`RrcIntegrand`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedIntegrand {
    /// Recombination threshold (the level binding energy), eV.
    pub threshold_ev: f64,
    /// `1/kT` in 1/eV.
    pub inv_kt: f64,
    /// The collapsed constant `prefactor * sigma_0 I^2 / (n kT)`.
    pub coeff: f64,
}

impl PreparedIntegrand {
    /// Evaluate `dP/dE` at photon energy `e_gamma_ev`: the hot-path
    /// form, one compare + subtract + multiply + `exp`.
    #[inline]
    #[must_use]
    pub fn evaluate(&self, e_gamma_ev: f64) -> f64 {
        let electron_ev = e_gamma_ev - self.threshold_ev;
        if electron_ev < 0.0 {
            return 0.0;
        }
        self.coeff * (-electron_ev * self.inv_kt).exp()
    }
}

/// Batched evaluation for the quadrature hot path.
///
/// On the (uniform, ascending) node grids the bin-range quadrature
/// routines produce, the collapsed integrand `C * exp(-(x - t)/kT)`
/// advances from node to node by the constant factor `exp(-h/kT)` — so
/// a whole grid costs one `exp` (re-anchored every few hundred nodes to
/// bound round-off drift) plus one multiply per node, instead of one
/// `exp` per node. Nodes below threshold stay exactly zero, matching
/// [`PreparedIntegrand::evaluate`]. Grids that are not uniform and
/// ascending fall back to per-node evaluation, so results are only ever
/// *faster*, never different by more than ~1e-13 relative (recurrence
/// drift plus the grid's deviation from exact uniformity).
impl quadrature::BatchSampler for PreparedIntegrand {
    #[inline]
    fn sample(&mut self, x: f64) -> f64 {
        self.evaluate(x)
    }

    fn sample_batch(&mut self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "xs / out length mismatch");
        let n = xs.len();
        let per_node = |out: &mut [f64]| {
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = self.evaluate(x);
            }
        };
        if n < 4 || self.coeff == 0.0 {
            return per_node(out);
        }
        let x0 = xs[0];
        let step = (xs[n - 1] - x0) / (n - 1) as f64;
        // The grid must be ascending and uniform to within a few ulps of
        // the node magnitudes (the rounding scale of affine node
        // computation); anything else takes the exact per-node path.
        let tol = 8.0 * f64::EPSILON * xs[0].abs().max(xs[n - 1].abs());
        if step <= 0.0
            || xs
                .iter()
                .enumerate()
                .any(|(j, &x)| (x - (x0 + j as f64 * step)).abs() > tol)
        {
            return per_node(out);
        }
        // Zero prefix below threshold, same predicate as `evaluate`.
        let zeros = xs.partition_point(|&x| x - self.threshold_ev < 0.0);
        for o in &mut out[..zeros] {
            *o = 0.0;
        }
        let decay = (-step * self.inv_kt).exp();
        // Fresh anchor every 256 nodes: drift stays under ~3e-14.
        let mut j = zeros;
        while j < n {
            let run_end = (j + 256).min(n);
            let mut v = self.coeff * (-(xs[j] - self.threshold_ev) * self.inv_kt).exp();
            out[j] = v;
            for o in &mut out[j + 1..run_end] {
                v *= decay;
                *o = v;
            }
            j = run_end;
        }
    }
}

/// The `MathMode::Vector` sampler: a [`PreparedIntegrand`] whose
/// batches evaluate whole node grids through the lane-parallel
/// [`quadrature::vexp`] instead of the scalar exp-recurrence.
///
/// Uniform ascending grids (the case every fixed-rule quadrature
/// routine produces) take a *lane-parallel* geometric recurrence: one
/// `vexp` call seeds [`LANES`] anchor values, and from there the batch
/// advances [`LANES`] independent multiply chains by the constant
/// `exp(-LANES·h/kT)` — the vector analogue of the `Exact` sampler's
/// single serial chain, with the same 256-node re-anchoring to bound
/// round-off drift. Non-uniform grids get an independent exponential
/// per node, so arbitrary (even unsorted) batches still work; nodes
/// below threshold come out exactly zero on either path (their
/// argument is forced to `-∞`, which `vexp` flushes to `0.0`).
/// Relative deviation from the `Exact` sampler stays bounded by
/// `vexp`'s ≤ 1e−14 per-element budget plus the shared recurrence
/// drift — comfortably inside the documented 1e−12 spectral budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorPrepared(pub PreparedIntegrand);

/// Lane width of the geometric recurrence (matches
/// [`quadrature::simd::LANES`]).
const LANES: usize = quadrature::simd::LANES;

impl VectorPrepared {
    /// Per-node path: fill the argument grid, one `vexp` pass, then
    /// the coefficient multiply.
    fn sample_vexp(&self, xs: &[f64], out: &mut [f64]) {
        for (o, &x) in out.iter_mut().zip(xs) {
            let dx = x - self.0.threshold_ev;
            *o = if dx < 0.0 {
                f64::NEG_INFINITY
            } else {
                -dx * self.0.inv_kt
            };
        }
        quadrature::vexp(out);
        for o in out.iter_mut() {
            *o *= self.0.coeff;
        }
    }
}

impl quadrature::BatchSampler for VectorPrepared {
    #[inline]
    fn sample(&mut self, x: f64) -> f64 {
        let dx = x - self.0.threshold_ev;
        if dx < 0.0 {
            return 0.0;
        }
        let mut one = [-dx * self.0.inv_kt];
        quadrature::vexp(&mut one);
        self.0.coeff * one[0]
    }

    fn sample_batch(&mut self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "xs / out length mismatch");
        let n = xs.len();
        if n < 4 * LANES || self.0.coeff == 0.0 {
            return self.sample_vexp(xs, out);
        }
        // Same uniformity predicate as the Exact recurrence: ascending
        // and affine to within a few ulps of the node magnitudes. The
        // deviation is accumulated per lane with no early exit so the
        // whole pass vectorizes.
        let x0 = xs[0];
        let step = (xs[n - 1] - x0) / (n - 1) as f64;
        let tol = 8.0 * f64::EPSILON * xs[0].abs().max(xs[n - 1].abs());
        let mut dev = [0.0f64; LANES];
        let mut chunks = xs.chunks_exact(LANES);
        let mut base = 0.0f64;
        for chunk in &mut chunks {
            for (l, d) in dev.iter_mut().enumerate() {
                *d = d.max((chunk[l] - (x0 + (base + l as f64) * step)).abs());
            }
            base += LANES as f64;
        }
        let mut worst = dev.iter().fold(0.0f64, |a, &d| a.max(d));
        for (l, &x) in chunks.remainder().iter().enumerate() {
            worst = worst.max((x - (x0 + (base + l as f64) * step)).abs());
        }
        if step <= 0.0 || worst > tol {
            return self.sample_vexp(xs, out);
        }
        // Zero prefix below threshold, same predicate as `evaluate`.
        let zeros = xs.partition_point(|&x| x - self.0.threshold_ev < 0.0);
        for o in &mut out[..zeros] {
            *o = 0.0;
        }
        // Two vectors' worth of independent chains: the multiply
        // latency of one chain hides behind the other's.
        const STRIDE: usize = 2 * LANES;
        // exp(-STRIDE·h/kT): the per-step decay of each lane chain.
        let growth = quadrature::vexp1(-(STRIDE as f64 * step) * self.0.inv_kt);
        let mut j = zeros;
        while j < n {
            // Fresh vexp anchors every 256 nodes, like the Exact path.
            let run_end = (j + 256).min(n);
            let seed = STRIDE.min(run_end - j);
            self.sample_vexp(&xs[j..j + seed], &mut out[j..j + seed]);
            if seed == STRIDE {
                let mut carry = [0.0f64; STRIDE];
                carry.copy_from_slice(&out[j..j + STRIDE]);
                let mut i = j + STRIDE;
                while i + STRIDE <= run_end {
                    for (l, c) in carry.iter_mut().enumerate() {
                        *c *= growth;
                        out[i + l] = *c;
                    }
                    i += STRIDE;
                }
                for l in 0..run_end - i {
                    out[i + l] = carry[l] * growth;
                }
            }
            j = run_end;
        }
    }
}

impl RrcIntegrand {
    /// Bind an integrand, precomputing the per-sample invariants (the
    /// Maxwellian prefactor, `1/kT`, and the collapsed cross-section
    /// constant) once.
    #[must_use]
    pub fn new(
        kt_ev: f64,
        binding_ev: f64,
        n: u16,
        electron_density: f64,
        ion_density: f64,
    ) -> RrcIntegrand {
        let prepared = if kt_ev > 0.0 {
            let prefactor = electron_density * ion_density * 4.0 / kt_ev
                * (1.0 / (2.0 * std::f64::consts::PI * ME_C2_EV * kt_ev)).sqrt();
            // sigma_rec_n(E_e) * E_e * E_g = sigma_0 I^2 / n for the
            // Kramers cross section, so the sample-dependent factors
            // collapse; `times_energy` at E_e = 0 yields sigma_0 I / n,
            // hence the extra factor of I.
            let sigma_const =
                recombination_cross_section_times_energy(n, binding_ev, 0.0) * binding_ev;
            PreparedIntegrand {
                threshold_ev: binding_ev,
                inv_kt: 1.0 / kt_ev,
                coeff: prefactor * sigma_const / kt_ev,
            }
        } else {
            PreparedIntegrand {
                threshold_ev: binding_ev,
                inv_kt: 0.0,
                coeff: 0.0,
            }
        };
        RrcIntegrand {
            kt_ev,
            binding_ev,
            n,
            electron_density,
            ion_density,
            prepared,
        }
    }

    /// The Maxwellian prefactor `4/kT * sqrt(1/(2 pi m_e kT))` with the
    /// electron mass expressed through its rest energy (natural units:
    /// the overall absolute scale is arbitrary for a normalized-flux
    /// spectrum, the *shape* in `kT` is what matters). Cached at
    /// construction — this used to be recomputed per sample.
    #[must_use]
    pub fn prefactor(&self) -> f64 {
        if self.kt_ev <= 0.0 {
            return 0.0;
        }
        self.electron_density * self.ion_density * 4.0 / self.kt_ev
            * (1.0 / (2.0 * std::f64::consts::PI * ME_C2_EV * self.kt_ev)).sqrt()
    }

    /// The hoisted per-sample invariants, for hot loops that want the
    /// 24-byte form instead of `&self`.
    #[inline]
    #[must_use]
    pub fn prepare(&self) -> PreparedIntegrand {
        self.prepared
    }

    /// Evaluate `dP/dE` at photon energy `e_gamma_ev`. Zero below the
    /// recombination threshold; *at* threshold the `1/E_e` divergence of
    /// the Kramers cross section cancels the Maxwellian `E_e` factor, so
    /// the continuous limit value is returned (closed quadrature rules
    /// sample the threshold endpoint).
    ///
    /// Uses the cached [`PreparedIntegrand`]; agrees with the seed's
    /// unprepared arithmetic ([`RrcIntegrand::evaluate_unprepared`]) to
    /// a few ulp (well inside 1e-12 relative).
    #[inline]
    #[must_use]
    pub fn evaluate(&self, e_gamma_ev: f64) -> f64 {
        self.prepared.evaluate(e_gamma_ev)
    }

    /// The seed's per-sample arithmetic, kept verbatim (Maxwellian
    /// prefactor — `sqrt` and several divides — recomputed on every
    /// sample) as the A/B baseline for the hot-path benchmarks and as an
    /// independent numerical cross-check of the prepared form.
    #[must_use]
    pub fn evaluate_unprepared(&self, e_gamma_ev: f64) -> f64 {
        let electron_ev = e_gamma_ev - self.binding_ev;
        if electron_ev < 0.0 || self.kt_ev <= 0.0 {
            return 0.0;
        }
        let sigma_e =
            recombination_cross_section_times_energy(self.n, self.binding_ev, electron_ev);
        let a = sigma_e * (-electron_ev / self.kt_ev).exp() * e_gamma_ev;
        self.prefactor() * a / self.kt_ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrand() -> RrcIntegrand {
        RrcIntegrand::new(
            862.0, // ~1e7 K
            870.0, 1, 1.0, 1e-4,
        )
    }

    #[test]
    fn zero_below_threshold_finite_at_threshold() {
        let f = integrand();
        assert_eq!(f.evaluate(f.binding_ev - 1.0), 0.0);
        assert_eq!(f.evaluate(0.0), 0.0);
        // At the edge the continuous limit is positive and matches the
        // just-above-threshold value.
        let at = f.evaluate(f.binding_ev);
        let above = f.evaluate(f.binding_ev + 1e-9);
        assert!(at > 0.0);
        assert!((at - above).abs() / at < 1e-9);
    }

    #[test]
    fn positive_above_threshold() {
        let f = integrand();
        assert!(f.evaluate(f.binding_ev + 1.0) > 0.0);
        assert!(f.evaluate(f.binding_ev + 500.0) > 0.0);
    }

    #[test]
    fn exponential_cutoff_far_above_threshold() {
        let f = integrand();
        let near = f.evaluate(f.binding_ev + f.kt_ev);
        let far = f.evaluate(f.binding_ev + 20.0 * f.kt_ev);
        assert!(far < near * 1e-4);
    }

    #[test]
    fn scales_linearly_with_densities() {
        let f = integrand();
        let f2 = RrcIntegrand::new(
            f.kt_ev,
            f.binding_ev,
            f.n,
            f.electron_density * 3.0,
            f.ion_density * 2.0,
        );
        let e = f.binding_ev + 100.0;
        assert!((f2.evaluate(e) / f.evaluate(e) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hotter_plasma_has_harder_tail() {
        let cold = integrand();
        let hot = RrcIntegrand::new(
            4.0 * cold.kt_ev,
            cold.binding_ev,
            cold.n,
            cold.electron_density,
            cold.ion_density,
        );
        let e = cold.binding_ev + 10.0 * cold.kt_ev;
        // Relative to its near-threshold value, the hot plasma keeps more
        // flux far above threshold.
        let cold_ratio = cold.evaluate(e) / cold.evaluate(cold.binding_ev + cold.kt_ev);
        let hot_ratio = hot.evaluate(e) / hot.evaluate(cold.binding_ev + cold.kt_ev);
        assert!(hot_ratio > cold_ratio);
    }

    #[test]
    fn integrand_is_finite_and_smooth_above_edge() {
        let f = integrand();
        let mut prev = f.evaluate(f.binding_ev + 1e-6);
        assert!(prev.is_finite());
        for i in 1..1000 {
            let e = f.binding_ev + 1e-6 + i as f64;
            let v = f.evaluate(e);
            assert!(v.is_finite());
            // No wild oscillation: neighbouring samples stay within 10x.
            if prev > 0.0 && v > 0.0 {
                let r = v / prev;
                assert!(r < 10.0 && r > 0.1, "jump at {e}: {r}");
            }
            prev = v;
        }
    }

    #[test]
    fn prepared_matches_unprepared_arithmetic() {
        // The collapsed form rearranges the seed arithmetic; over the
        // whole support (including 40 kT into the exponential tail) the
        // two must agree far inside the 1e-12 budget the accuracy
        // experiments assume.
        for (kt, binding, n) in [(862.0, 870.0, 1u16), (86.2, 13.6, 2), (8620.0, 5432.1, 5)] {
            let f = RrcIntegrand::new(kt, binding, n, 2.5, 3e-4);
            for i in 0..4000 {
                let e = binding + f64::from(i) * 0.01 * kt;
                let fast = f.evaluate(e);
                let slow = f.evaluate_unprepared(e);
                if slow == 0.0 {
                    assert_eq!(fast, 0.0);
                } else {
                    assert!(
                        ((fast - slow) / slow).abs() < 1e-13,
                        "kT={kt} e={e}: {fast} vs {slow}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_sampling_matches_per_node_within_budget() {
        use quadrature::BatchSampler;
        // Uniform ascending grids straddling the threshold: the batch
        // recurrence must agree with per-node evaluation inside the
        // fused pipeline's 1e-12 budget, with the zero prefix exact.
        for (kt, binding, n_level) in [(862.0, 870.0, 1u16), (8.62, 870.0, 3), (8620.0, 13.6, 2)] {
            let f = RrcIntegrand::new(kt, binding, n_level, 2.5, 3e-4);
            let mut p = f.prepare();
            let lo = binding - 2.0 * kt;
            let step = 40.0 * kt / 1000.0;
            let xs: Vec<f64> = (0..1000).map(|j| lo + f64::from(j) * step).collect();
            let mut out = vec![f64::NAN; xs.len()];
            p.sample_batch(&xs, &mut out);
            for (j, (&x, &got)) in xs.iter().zip(&out).enumerate() {
                let want = f.evaluate(x);
                if want == 0.0 {
                    assert_eq!(got, 0.0, "node {j}");
                } else {
                    assert!(
                        ((got - want) / want).abs() < 1e-13,
                        "kT={kt} node {j}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_sampling_falls_back_exactly_on_nonuniform_grids() {
        use quadrature::BatchSampler;
        let f = integrand();
        let mut p = f.prepare();
        // Geometric (non-uniform) grid: must take the per-node path and
        // therefore agree bitwise with evaluate().
        let xs: Vec<f64> = (0..64).map(|j| 800.0 * 1.01f64.powi(j)).collect();
        let mut out = vec![0.0; xs.len()];
        p.sample_batch(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            assert_eq!(got, f.evaluate(x));
        }
    }

    #[test]
    fn vector_sampler_matches_exact_within_vexp_budget() {
        use quadrature::BatchSampler;
        for (kt, binding, n_level) in [(862.0, 870.0, 1u16), (8.62, 870.0, 3), (8620.0, 13.6, 2)] {
            let f = RrcIntegrand::new(kt, binding, n_level, 2.5, 3e-4);
            let mut v = VectorPrepared(f.prepare());
            let lo = binding - 2.0 * kt;
            let step = 40.0 * kt / 777.0;
            let xs: Vec<f64> = (0..777).map(|j| lo + f64::from(j) * step).collect();
            let mut out = vec![f64::NAN; xs.len()];
            v.sample_batch(&xs, &mut out);
            for (j, (&x, &got)) in xs.iter().zip(&out).enumerate() {
                let want = f.evaluate(x);
                if want == 0.0 {
                    assert_eq!(got, 0.0, "below-threshold node {j} must be exactly zero");
                } else {
                    assert!(
                        ((got - want) / want).abs() <= 1e-13,
                        "kT={kt} node {j}: {got} vs {want}"
                    );
                }
                // Single-sample form agrees with the batch to within
                // the recurrence drift (bitwise at exact zeros).
                let single = v.sample(x);
                if got == 0.0 {
                    assert_eq!(single, 0.0, "node {j}");
                } else {
                    assert!(
                        ((single - got) / got).abs() <= 1e-13,
                        "node {j}: batch {got} vs single {single}"
                    );
                }
            }
        }
    }

    #[test]
    fn vector_sampler_needs_no_uniform_grid() {
        use quadrature::BatchSampler;
        let f = integrand();
        let mut v = VectorPrepared(f.prepare());
        // Geometric grid — the recurrence sampler's fallback case; the
        // vector sampler treats it like any other batch.
        let xs: Vec<f64> = (0..37).map(|j| 800.0 * 1.01f64.powi(j)).collect();
        let mut out = vec![0.0; xs.len()];
        v.sample_batch(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            let want = f.evaluate(x);
            if want == 0.0 {
                assert_eq!(got, 0.0);
            } else {
                assert!(((got - want) / want).abs() <= 1e-13);
            }
        }
    }

    #[test]
    fn zero_temperature_is_identically_zero() {
        let f = RrcIntegrand::new(0.0, 870.0, 1, 1.0, 1.0);
        assert_eq!(f.evaluate(1000.0), 0.0);
        assert_eq!(f.prefactor(), 0.0);
    }
}
