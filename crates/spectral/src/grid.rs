//! Energy-bin grids and wavelength conversion.

use crate::HC_EV_ANGSTROM;

/// A contiguous grid of photon-energy bins.
///
/// Paper Eq. 2 integrates the RRC emissivity over each bin
/// `[E0, E1]`; the bin count per level is the paper's "10^5 energy bins"
/// knob (we default far smaller so real-mode runs finish in seconds; the
/// DES performance model charges work for the full-size grid).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyGrid {
    min_ev: f64,
    max_ev: f64,
    bins: usize,
    log_spaced: bool,
    /// The `bins + 1` edge values, materialized once at construction.
    /// Log-spaced grids used to recompute `min_ev.ln()` / `max_ev.ln()`
    /// (and an `exp`) on *every* edge call; now [`EnergyGrid::edge`] is
    /// a table lookup with the same bit patterns.
    edges: Vec<f64>,
    /// `ln(min_ev)` and `ln(max_ev) - ln(min_ev)`, cached for
    /// [`EnergyGrid::locate`] (zeros on linear grids, never read).
    ln_min: f64,
    ln_span: f64,
}

impl EnergyGrid {
    fn build(min_ev: f64, max_ev: f64, bins: usize, log_spaced: bool) -> EnergyGrid {
        // These cached values are exactly the subexpressions the seed
        // evaluated per edge call, so the table entries are bitwise
        // identical to what `edge()` used to return.
        let ln_min = if log_spaced { min_ev.ln() } else { 0.0 };
        let ln_span = if log_spaced {
            max_ev.ln() - min_ev.ln()
        } else {
            0.0
        };
        let edges = (0..=bins)
            .map(|i| {
                let t = i as f64 / bins as f64;
                if log_spaced {
                    (ln_min + t * ln_span).exp()
                } else {
                    min_ev + t * (max_ev - min_ev)
                }
            })
            .collect();
        EnergyGrid {
            min_ev,
            max_ev,
            bins,
            log_spaced,
            edges,
            ln_min,
            ln_span,
        }
    }

    /// A linear grid of `bins` bins over `[min_ev, max_ev]`.
    ///
    /// # Panics
    /// Panics if the interval is empty/non-finite or `bins == 0`.
    #[must_use]
    pub fn linear(min_ev: f64, max_ev: f64, bins: usize) -> EnergyGrid {
        assert!(
            min_ev.is_finite() && max_ev.is_finite() && min_ev < max_ev,
            "bad energy range [{min_ev}, {max_ev}]"
        );
        assert!(bins > 0, "grid needs at least one bin");
        EnergyGrid::build(min_ev, max_ev, bins, false)
    }

    /// A logarithmic grid of `bins` bins over `[min_ev, max_ev]`
    /// (requires `min_ev > 0`).
    ///
    /// # Panics
    /// Panics on an empty/non-finite interval, `min_ev <= 0`, or
    /// `bins == 0`.
    #[must_use]
    pub fn logarithmic(min_ev: f64, max_ev: f64, bins: usize) -> EnergyGrid {
        assert!(
            min_ev.is_finite() && max_ev.is_finite() && 0.0 < min_ev && min_ev < max_ev,
            "bad energy range [{min_ev}, {max_ev}]"
        );
        assert!(bins > 0, "grid needs at least one bin");
        EnergyGrid::build(min_ev, max_ev, bins, true)
    }

    /// The grid covering the paper's plotted wavelength range, 10–45 Å
    /// (photon energies ~275.5–1239.8 eV).
    #[must_use]
    pub fn paper_waveband(bins: usize) -> EnergyGrid {
        EnergyGrid::linear(HC_EV_ANGSTROM / 45.0, HC_EV_ANGSTROM / 10.0, bins)
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Lower edge of the whole grid in eV.
    #[must_use]
    pub fn min_ev(&self) -> f64 {
        self.min_ev
    }

    /// Upper edge of the whole grid in eV.
    #[must_use]
    pub fn max_ev(&self) -> f64 {
        self.max_ev
    }

    /// The `i`-th bin edge, `i` in `0..=bins` — a lookup into the table
    /// built at construction.
    #[must_use]
    pub fn edge(&self, i: usize) -> f64 {
        debug_assert!(i <= self.bins);
        self.edges[i]
    }

    /// The `(lo, hi)` edges of bin `i`, `i` in `0..bins`.
    #[must_use]
    pub fn bin(&self, i: usize) -> (f64, f64) {
        (self.edge(i), self.edge(i + 1))
    }

    /// Midpoint energy of bin `i` in eV.
    #[must_use]
    pub fn center_ev(&self, i: usize) -> f64 {
        let (lo, hi) = self.bin(i);
        0.5 * (lo + hi)
    }

    /// Midpoint wavelength of bin `i` in Å.
    #[must_use]
    pub fn center_angstrom(&self, i: usize) -> f64 {
        HC_EV_ANGSTROM / self.center_ev(i)
    }

    /// Materialize every bin as a `(lo, hi)` pair, reusing `out`'s
    /// allocation. Adjacent bins share their edge value bitwise (each
    /// edge is computed once), which is what lets the fused quadrature
    /// path ([`quadrature`'s `integrate_bins`]) reuse edge samples.
    pub fn fill_bin_pairs(&self, out: &mut Vec<(f64, f64)>) {
        out.clear();
        out.reserve(self.bins);
        let mut lo = self.edge(0);
        for i in 0..self.bins {
            let hi = self.edge(i + 1);
            out.push((lo, hi));
            lo = hi;
        }
    }

    /// [`EnergyGrid::fill_bin_pairs`] into a fresh vector.
    #[must_use]
    pub fn bin_pairs(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        self.fill_bin_pairs(&mut out);
        out
    }

    /// Which bin contains `energy_ev`, or `None` outside the grid.
    #[must_use]
    pub fn locate(&self, energy_ev: f64) -> Option<usize> {
        if energy_ev < self.min_ev || energy_ev >= self.max_ev {
            return None;
        }
        let t = if self.log_spaced {
            (energy_ev.ln() - self.ln_min) / self.ln_span
        } else {
            (energy_ev - self.min_ev) / (self.max_ev - self.min_ev)
        };
        Some(((t * self.bins as f64) as usize).min(self.bins - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_edges_are_uniform() {
        let g = EnergyGrid::linear(0.0, 10.0, 5);
        for i in 0..5 {
            let (lo, hi) = g.bin(i);
            assert!((hi - lo - 2.0).abs() < 1e-12);
        }
        assert_eq!(g.edge(0), 0.0);
        assert_eq!(g.edge(5), 10.0);
    }

    #[test]
    fn log_edges_have_constant_ratio() {
        let g = EnergyGrid::logarithmic(1.0, 16.0, 4);
        for i in 0..4 {
            let (lo, hi) = g.bin(i);
            assert!((hi / lo - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bins_partition_the_range() {
        for g in [
            EnergyGrid::linear(3.0, 47.0, 13),
            EnergyGrid::logarithmic(0.5, 99.0, 13),
        ] {
            for i in 0..g.bins() - 1 {
                assert_eq!(g.bin(i).1, g.bin(i + 1).0);
            }
        }
    }

    #[test]
    fn locate_finds_containing_bin() {
        let g = EnergyGrid::linear(0.0, 100.0, 10);
        for i in 0..10 {
            let c = g.center_ev(i);
            assert_eq!(g.locate(c), Some(i));
        }
        assert_eq!(g.locate(-1.0), None);
        assert_eq!(g.locate(100.0), None);
        assert_eq!(g.locate(0.0), Some(0));
    }

    #[test]
    fn paper_waveband_covers_10_to_45_angstrom() {
        let g = EnergyGrid::paper_waveband(100);
        let wl_max = HC_EV_ANGSTROM / g.min_ev();
        let wl_min = HC_EV_ANGSTROM / g.max_ev();
        assert!((wl_max - 45.0).abs() < 1e-9);
        assert!((wl_min - 10.0).abs() < 1e-9);
    }

    #[test]
    fn wavelength_center_is_consistent() {
        let g = EnergyGrid::linear(100.0, 200.0, 4);
        for i in 0..4 {
            let wl = g.center_angstrom(i);
            assert!((wl * g.center_ev(i) - HC_EV_ANGSTROM).abs() < 1e-6);
        }
    }

    #[test]
    fn edge_table_matches_the_seed_formula_bitwise() {
        // The table must reproduce exactly what the per-call formula
        // used to return, or every downstream bitwise-parity guarantee
        // (shared bin edges, windowing) silently shifts.
        let lin = EnergyGrid::linear(3.25, 47.5, 29);
        let log = EnergyGrid::logarithmic(0.75, 99.5, 29);
        for i in 0..=29usize {
            let t = i as f64 / 29f64;
            let lin_want = 3.25 + t * (47.5 - 3.25);
            let log_want = (0.75f64.ln() + t * (99.5f64.ln() - 0.75f64.ln())).exp();
            assert_eq!(lin.edge(i).to_bits(), lin_want.to_bits(), "linear edge {i}");
            assert_eq!(log.edge(i).to_bits(), log_want.to_bits(), "log edge {i}");
        }
    }

    #[test]
    #[should_panic(expected = "bad energy range")]
    fn rejects_reversed_range() {
        let _ = EnergyGrid::linear(10.0, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn rejects_zero_bins() {
        let _ = EnergyGrid::linear(0.0, 1.0, 0);
    }
}
