//! Accumulated spectra, normalization and error analysis.

use crate::grid::EnergyGrid;

/// A spectrum: per-bin integrated emissivity `Lambda_RRC(E_bin)`
/// (paper Eq. 2) on an [`EnergyGrid`].
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    grid: EnergyGrid,
    bins: Vec<f64>,
}

impl Spectrum {
    /// An all-zero spectrum on `grid`.
    #[must_use]
    pub fn zeros(grid: EnergyGrid) -> Spectrum {
        let bins = vec![0.0; grid.bins()];
        Spectrum { grid, bins }
    }

    /// Wrap existing per-bin values.
    ///
    /// # Panics
    /// Panics if `bins.len() != grid.bins()`.
    #[must_use]
    pub fn from_bins(grid: EnergyGrid, bins: Vec<f64>) -> Spectrum {
        assert_eq!(bins.len(), grid.bins(), "bin count mismatch");
        Spectrum { grid, bins }
    }

    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &EnergyGrid {
        &self.grid
    }

    /// Per-bin values.
    #[must_use]
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Mutable per-bin values (accumulation target for calculators).
    pub fn bins_mut(&mut self) -> &mut [f64] {
        &mut self.bins
    }

    /// Add another spectrum on the same grid bin-by-bin.
    ///
    /// # Panics
    /// Panics if the grids differ.
    pub fn accumulate(&mut self, other: &Spectrum) {
        assert_eq!(self.grid, other.grid, "grid mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
    }

    /// Total (sum over bins) emissivity.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// The spectrum scaled so its peak bin is 1 — the "normalized flux"
    /// of paper Fig. 7. Returns an all-zero spectrum if empty.
    #[must_use]
    pub fn normalized(&self) -> Spectrum {
        let peak = self.bins.iter().cloned().fold(0.0f64, f64::max);
        let mut out = self.clone();
        if peak > 0.0 {
            for v in &mut out.bins {
                *v /= peak;
            }
        }
        out
    }

    /// Signed per-bin relative error of `self` against `reference`, in
    /// percent, skipping bins where the reference is zero — the raw data
    /// behind paper Fig. 8.
    #[must_use]
    pub fn relative_errors_percent(&self, reference: &Spectrum) -> Vec<f64> {
        assert_eq!(self.grid, reference.grid, "grid mismatch");
        self.bins
            .iter()
            .zip(&reference.bins)
            .filter(|&(_, &r)| r != 0.0)
            .map(|(&v, &r)| 100.0 * (v - r) / r)
            .collect()
    }

    /// Like [`Spectrum::relative_errors_percent`] but only over bins
    /// whose reference flux is at least `floor_fraction` of the reference
    /// peak. Bins in the exponentially dead tail carry relative errors
    /// dominated by round-off, not by integration method — the paper's
    /// Fig. 8 distribution is implicitly over the flux-carrying band.
    #[must_use]
    pub fn significant_relative_errors_percent(
        &self,
        reference: &Spectrum,
        floor_fraction: f64,
    ) -> Vec<f64> {
        assert_eq!(self.grid, reference.grid, "grid mismatch");
        let peak = reference.bins.iter().cloned().fold(0.0f64, f64::max);
        let floor = peak * floor_fraction;
        self.bins
            .iter()
            .zip(&reference.bins)
            .filter(|&(_, &r)| r > floor && r != 0.0)
            .map(|(&v, &r)| 100.0 * (v - r) / r)
            .collect()
    }

    /// `(wavelength_angstrom, value)` series in increasing wavelength,
    /// for plotting against paper Fig. 7.
    #[must_use]
    pub fn wavelength_series(&self) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = (0..self.grid.bins())
            .map(|i| (self.grid.center_angstrom(i), self.bins[i]))
            .collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite wavelengths"));
        out
    }
}

/// A histogram of relative errors — the "probability (%)" curve of paper
/// Fig. 8.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorHistogram {
    /// Left edges of the histogram bins, in percent.
    pub edges: Vec<f64>,
    /// Probability (percent of samples) per bin.
    pub probability: Vec<f64>,
    /// Smallest observed error (percent).
    pub min: f64,
    /// Largest observed error (percent).
    pub max: f64,
}

impl ErrorHistogram {
    /// Histogram `errors` (percent) into `bins` equal-width bins.
    /// Returns an empty histogram when `errors` is empty.
    #[must_use]
    pub fn build(errors: &[f64], bins: usize) -> ErrorHistogram {
        let bins = bins.max(1);
        if errors.is_empty() {
            return ErrorHistogram {
                edges: vec![],
                probability: vec![],
                min: 0.0,
                max: 0.0,
            };
        }
        let min = errors.iter().cloned().fold(f64::MAX, f64::min);
        let max = errors.iter().cloned().fold(f64::MIN, f64::max);
        let width = ((max - min) / bins as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; bins];
        for &e in errors {
            let idx = (((e - min) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let n = errors.len() as f64;
        ErrorHistogram {
            edges: (0..bins).map(|i| min + i as f64 * width).collect(),
            probability: counts.iter().map(|&c| 100.0 * c as f64 / n).collect(),
            min,
            max,
        }
    }

    /// Fraction (percent) of samples with absolute value below
    /// `threshold` percent — the paper's ">99% of errors within
    /// 0–0.0005%" claim.
    #[must_use]
    pub fn fraction_within(errors: &[f64], threshold: f64) -> f64 {
        if errors.is_empty() {
            return 100.0;
        }
        let n = errors.iter().filter(|e| e.abs() <= threshold).count();
        100.0 * n as f64 / errors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> EnergyGrid {
        EnergyGrid::linear(100.0, 200.0, 4)
    }

    #[test]
    fn accumulate_adds_binwise() {
        let mut a = Spectrum::from_bins(grid(), vec![1.0, 2.0, 3.0, 4.0]);
        let b = Spectrum::from_bins(grid(), vec![0.5, 0.5, 0.5, 0.5]);
        a.accumulate(&b);
        assert_eq!(a.bins(), &[1.5, 2.5, 3.5, 4.5]);
        assert_eq!(a.total(), 12.0);
    }

    #[test]
    fn normalized_peak_is_one() {
        let s = Spectrum::from_bins(grid(), vec![1.0, 5.0, 2.0, 0.0]);
        let n = s.normalized();
        assert_eq!(n.bins(), &[0.2, 1.0, 0.4, 0.0]);
    }

    #[test]
    fn normalizing_zero_spectrum_is_safe() {
        let s = Spectrum::zeros(grid());
        assert_eq!(s.normalized().bins(), &[0.0; 4]);
    }

    #[test]
    fn relative_errors_skip_zero_reference_bins() {
        let a = Spectrum::from_bins(grid(), vec![1.01, 2.0, 0.0, 4.0]);
        let r = Spectrum::from_bins(grid(), vec![1.0, 2.0, 0.0, 5.0]);
        let errs = a.relative_errors_percent(&r);
        assert_eq!(errs.len(), 3);
        assert!((errs[0] - 1.0).abs() < 1e-9);
        assert_eq!(errs[1], 0.0);
        assert!((errs[2] + 20.0).abs() < 1e-9);
    }

    #[test]
    fn wavelength_series_is_increasing() {
        let s = Spectrum::from_bins(grid(), vec![1.0, 2.0, 3.0, 4.0]);
        let series = s.wavelength_series();
        for w in series.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        // Highest energy bin = shortest wavelength = first entry.
        assert_eq!(series[0].1, 4.0);
    }

    #[test]
    fn histogram_probabilities_sum_to_100() {
        let errors = vec![0.0, 0.1, 0.1, 0.2, 0.4, 0.9];
        let h = ErrorHistogram::build(&errors, 5);
        let sum: f64 = h.probability.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 0.9);
    }

    #[test]
    fn histogram_of_empty_input() {
        let h = ErrorHistogram::build(&[], 10);
        assert!(h.edges.is_empty());
        assert_eq!(ErrorHistogram::fraction_within(&[], 0.1), 100.0);
    }

    #[test]
    fn fraction_within_counts_correctly() {
        let errors = vec![0.0001, -0.0002, 0.5, 0.0004];
        assert!((ErrorHistogram::fraction_within(&errors, 0.0005) - 75.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn from_bins_checks_length() {
        let _ = Spectrum::from_bins(grid(), vec![1.0]);
    }
}
