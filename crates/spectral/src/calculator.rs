//! The serial reference spectral calculator and the shared per-ion
//! kernel body.
//!
//! [`ion_emissivity_into`] is the *single* implementation of "compute
//! the RRC emissivity of one ion into the energy bins": the serial
//! calculator, the CPU fallback path of the hybrid runtime, and the
//! simulated GPU kernel all call it (with different integrator choices),
//! so accuracy comparisons measure integration method differences only —
//! exactly what paper Fig. 7/8 compare.

use atomdb::AtomDatabase;
use quadrature::{
    integrate_bins_sampled_mode, qags_with, romberg, simpson, AdaptiveConfig, BatchSampler,
    BinRule, MathMode, QagsWorkspace,
};

use crate::grid::EnergyGrid;
use crate::ionpop::ion_density;
use crate::params::GridPoint;
use crate::physics::{RrcIntegrand, VectorPrepared};
use crate::spectrum::Spectrum;

/// The integration back-end used for each energy-bin integral.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Integrator {
    /// Adaptive QAGS — the paper's serial / CPU-fallback method.
    Qags {
        /// Absolute tolerance.
        errabs: f64,
        /// Relative tolerance.
        errrel: f64,
    },
    /// Composite Simpson with a fixed panel count — the paper's GPU
    /// default ("64 equal pieces").
    Simpson {
        /// Panels per bin.
        panels: usize,
    },
    /// Romberg with `k` dichotomy levels — the paper's high-accuracy GPU
    /// variant (Fig. 6 / Table I sweep k = 7, 9, 11, 13).
    Romberg {
        /// Dichotomy levels.
        k: u32,
    },
}

impl Integrator {
    /// The paper's CPU reference configuration.
    #[must_use]
    pub fn paper_cpu() -> Integrator {
        Integrator::Qags {
            errabs: 1e-30,
            errrel: 1e-10,
        }
    }

    /// The paper's GPU configuration (Simpson over 64 pieces).
    #[must_use]
    pub fn paper_gpu() -> Integrator {
        Integrator::Simpson { panels: 64 }
    }

    /// Integrate `f` over `[lo, hi]`.
    ///
    /// QAGS failure (subdivision limit on a kinky edge bin) falls back to
    /// the carried best estimate — the spectral loops must never abort on
    /// one awkward bin, matching APEC's tolerant use of QUADPACK.
    pub fn integrate<F: FnMut(f64) -> f64>(
        self,
        ws: &mut QagsWorkspace,
        f: F,
        lo: f64,
        hi: f64,
    ) -> f64 {
        match self {
            Integrator::Qags { errabs, errrel } => {
                let cfg = AdaptiveConfig {
                    errabs,
                    errrel,
                    ..AdaptiveConfig::default()
                };
                match qags_with(ws, cfg, f, lo, hi) {
                    Ok(est) => est.value,
                    Err(quadrature::QuadError::MaxSubdivisions { best, .. })
                    | Err(quadrature::QuadError::RoundoffDetected { best }) => best.value,
                    Err(_) => 0.0,
                }
            }
            Integrator::Simpson { panels } => simpson(f, lo, hi, panels).value,
            Integrator::Romberg { k } => romberg(f, lo, hi, k).value,
        }
    }

    /// The fused bin-range rule equivalent to this integrator, when one
    /// exists. Fixed-node rules (Simpson, Romberg) fuse — their shared
    /// bin-edge samples can be reused across a contiguous run of bins;
    /// adaptive QAGS places nodes per bin and stays on the per-bin path.
    #[must_use]
    pub fn bin_rule(self) -> Option<BinRule> {
        match self {
            Integrator::Qags { .. } => None,
            Integrator::Simpson { panels } => Some(BinRule::Simpson { panels }),
            Integrator::Romberg { k } => Some(BinRule::Romberg { k }),
        }
    }
}

/// Multiples of `kT` past the recombination edge beyond which the RRC
/// integrand is treated as zero (`exp(-40) ~ 4e-18` of the edge value).
/// Shared by the CPU path and the GPU kernel window so both paths skip
/// exactly the same bins.
pub const CUTOFF_KT: f64 = 40.0;

/// The support window `(threshold, cutoff)` of one level's integrand:
/// nonzero only for photon energies in `[binding, binding + 40 kT)`.
#[must_use]
pub fn level_window(binding_ev: f64, kt_ev: f64) -> (f64, f64) {
    (binding_ev, binding_ev + CUTOFF_KT * kt_ev)
}

/// Build the bound integrands (one per level in `level_range`) of an
/// ion at a plasma state, or `None` when the ion's population is zero
/// there. Shared by the CPU path and the GPU kernel builder.
#[must_use]
pub fn ion_integrands(
    db: &AtomDatabase,
    ion_index: usize,
    level_range: std::ops::Range<usize>,
    point: &GridPoint,
) -> Option<Vec<RrcIntegrand>> {
    let ion = db.ions()[ion_index];
    let levels = db.levels_by_index(ion_index);
    let n_ion = ion_density(ion.z, ion.charge, point.temperature_k, point.density_cm3);
    if n_ion <= 0.0 {
        return None;
    }
    let kt = point.kt_ev();
    Some(
        levels[level_range]
            .iter()
            .map(|level| {
                RrcIntegrand::new(
                    kt,
                    level.binding_energy_ev,
                    level.n,
                    point.density_cm3,
                    n_ion,
                )
            })
            .collect(),
    )
}

/// Resolve a level's support window to the bin-index range it touches:
/// `(skip, end, clamped_lo)` — bins `skip..end` overlap the window, and
/// the leading bin's lower limit is clamped up to the threshold
/// (`clamped_lo > bins[skip].0` exactly when the threshold falls inside
/// that bin). Shared by the serial fused path and the SIMT kernel so
/// both skip exactly the same bins.
#[must_use]
pub fn window_bin_range(bins: &[(f64, f64)], threshold: f64, cutoff: f64) -> (usize, usize, f64) {
    let skip = bins.partition_point(|&(_, hi)| hi <= threshold);
    let end = bins.partition_point(|&(lo, _)| lo < cutoff);
    let clamped_lo = if skip < end {
        bins[skip].0.max(threshold)
    } else {
        0.0
    };
    (skip, end, clamped_lo)
}

/// Accumulate the emissivity of pre-built `integrands` into `out` with
/// the fused bin-range quadrature: per level, the contiguous run of
/// in-window bins is integrated in one [`integrate_bins_sampled`] call (shared
/// bin edges evaluated once), with a threshold-clamped leading bin
/// integrated on its own. The prepared integrand samples each bin's
/// uniform node grid with its exponential-recurrence batch path, so
/// per-bin results agree with the per-bin path under the same rule to
/// within a few parts in `1e13` relative (see
/// [`crate::physics::PreparedIntegrand`]'s `sample_batch`).
///
/// Returns the number of bin integrals evaluated (the same work measure
/// [`emissivity_into`] reports).
///
/// # Panics
/// Panics if `out.len() != bins.len()`.
pub fn emissivity_fused_into(
    integrands: &[RrcIntegrand],
    kt_ev: f64,
    rule: BinRule,
    bins: &[(f64, f64)],
    out: &mut [f64],
) -> u64 {
    emissivity_fused_into_mode(integrands, kt_ev, rule, bins, out, MathMode::Exact)
}

/// [`emissivity_fused_into`] with an explicit [`MathMode`].
///
/// `Exact` is the seed behavior (recurrence sampler, scalar
/// accumulation, bitwise reproducible). `Vector` samples every level's
/// node grids through the lane-parallel [`quadrature::vexp`]
/// ([`VectorPrepared`]) and accumulates with chunked partial sums —
/// per-bin relative deviation from `Exact` stays ≤ 1e−12.
///
/// # Panics
/// Panics if `out.len() != bins.len()`.
pub fn emissivity_fused_into_mode(
    integrands: &[RrcIntegrand],
    kt_ev: f64,
    rule: BinRule,
    bins: &[(f64, f64)],
    out: &mut [f64],
    math: MathMode,
) -> u64 {
    assert_eq!(out.len(), bins.len(), "output slice / bins mismatch");
    let mut integrals = 0u64;
    for integrand in integrands {
        let prepared = integrand.prepare();
        integrals += match math {
            MathMode::Exact => {
                fused_level(prepared, integrand.binding_ev, kt_ev, rule, bins, out, math)
            }
            MathMode::Vector => fused_level(
                VectorPrepared(prepared),
                integrand.binding_ev,
                kt_ev,
                rule,
                bins,
                out,
                math,
            ),
        };
    }
    integrals
}

/// One level of the fused path, generic over the sampler the math mode
/// selected.
fn fused_level<S: BatchSampler>(
    mut p: S,
    binding_ev: f64,
    kt_ev: f64,
    rule: BinRule,
    bins: &[(f64, f64)],
    out: &mut [f64],
    math: MathMode,
) -> u64 {
    let (threshold, cutoff) = level_window(binding_ev, kt_ev);
    let (skip, end, clamped_lo) = window_bin_range(bins, threshold, cutoff);
    if skip >= end {
        return 0;
    }
    let mut start = skip;
    if clamped_lo > bins[skip].0 {
        // The threshold bin: integrated alone over the clamped
        // sub-interval, exactly as the per-bin path does.
        integrate_bins_sampled_mode(
            rule,
            &mut p,
            &[(clamped_lo, bins[skip].1)],
            std::slice::from_mut(&mut out[skip]),
            math,
        );
        start += 1;
    }
    if start < end {
        integrate_bins_sampled_mode(rule, &mut p, &bins[start..end], &mut out[start..end], math);
    }
    (end - skip) as u64
}

/// Accumulate the RRC emissivity of levels `level_range` of the
/// `ion_index`-th ion of `db` at plasma state `point` into `out` (one
/// slot per grid bin).
///
/// This is the body of paper Algorithm 2 seen from the physics side:
/// for every level and every energy bin, one small definite integral of
/// Eq. 1 over the bin (Eq. 2), accumulated per bin.
///
/// Returns the number of integrals evaluated (level-bin pairs actually
/// above threshold), which the cost models use as the work measure.
///
/// # Panics
/// Panics if `out.len() != grid.bins()`, `ion_index` is out of range,
/// or `level_range` exceeds the ion's level list.
#[allow(clippy::too_many_arguments)] // mirrors the QUADPACK-style call contract
pub fn emissivity_into(
    db: &AtomDatabase,
    ion_index: usize,
    level_range: std::ops::Range<usize>,
    point: &GridPoint,
    grid: &EnergyGrid,
    integrator: Integrator,
    ws: &mut QagsWorkspace,
    out: &mut [f64],
) -> u64 {
    emissivity_into_mode(
        db,
        ion_index,
        level_range,
        point,
        grid,
        integrator,
        ws,
        out,
        MathMode::Exact,
    )
}

/// [`emissivity_into`] with an explicit [`MathMode`].
///
/// The mode only touches the fixed-rule fused path; adaptive QAGS stays
/// scalar in either mode — its node placement is data-dependent (each
/// bisection decision consumes the previous samples), so there is no
/// whole-grid batch to hand to the vector layer.
///
/// # Panics
/// Panics if `out.len() != grid.bins()`, `ion_index` is out of range,
/// or `level_range` exceeds the ion's level list.
#[allow(clippy::too_many_arguments)]
pub fn emissivity_into_mode(
    db: &AtomDatabase,
    ion_index: usize,
    level_range: std::ops::Range<usize>,
    point: &GridPoint,
    grid: &EnergyGrid,
    integrator: Integrator,
    ws: &mut QagsWorkspace,
    out: &mut [f64],
    math: MathMode,
) -> u64 {
    assert_eq!(out.len(), grid.bins(), "output slice / grid mismatch");
    let Some(integrands) = ion_integrands(db, ion_index, level_range, point) else {
        return 0;
    };
    let kt = point.kt_ev();
    if let Some(rule) = integrator.bin_rule() {
        let bins = grid.bin_pairs();
        return emissivity_fused_into_mode(&integrands, kt, rule, &bins, out, math);
    }
    let mut integrals = 0u64;
    for integrand in &integrands {
        let p = integrand.prepare();
        let (threshold, cutoff) = level_window(integrand.binding_ev, kt);
        for (bin, slot) in out.iter_mut().enumerate() {
            let (lo, hi) = grid.bin(bin);
            if hi <= threshold || lo >= cutoff {
                continue;
            }
            let a = lo.max(threshold);
            let value = integrator.integrate(ws, |e| p.evaluate(e), a, hi);
            *slot += value;
            integrals += 1;
        }
    }
    integrals
}

/// The seed's bin-at-a-time loop, kept as the A/B baseline for the
/// hot-path benchmarks: every bin is an independent
/// [`Integrator::integrate`] call (shared bin edges evaluated twice,
/// integrand invariants not hoisted past the closure). Results agree
/// with [`emissivity_into`] under the same fixed rule to within the
/// fused pipeline's `1e-13`-relative accuracy budget.
#[allow(clippy::too_many_arguments)]
pub fn emissivity_per_bin_into(
    db: &AtomDatabase,
    ion_index: usize,
    level_range: std::ops::Range<usize>,
    point: &GridPoint,
    grid: &EnergyGrid,
    integrator: Integrator,
    ws: &mut QagsWorkspace,
    out: &mut [f64],
) -> u64 {
    assert_eq!(out.len(), grid.bins(), "output slice / grid mismatch");
    let Some(integrands) = ion_integrands(db, ion_index, level_range, point) else {
        return 0;
    };
    let kt = point.kt_ev();
    let mut integrals = 0u64;
    for integrand in &integrands {
        let (threshold, cutoff) = level_window(integrand.binding_ev, kt);
        for (bin, slot) in out.iter_mut().enumerate() {
            let (lo, hi) = grid.bin(bin);
            if hi <= threshold || lo >= cutoff {
                continue;
            }
            let a = lo.max(threshold);
            let value = integrator.integrate(ws, |e| integrand.evaluate(e), a, hi);
            *slot += value;
            integrals += 1;
        }
    }
    integrals
}

/// [`emissivity_into`] over all levels of the ion — the Ion-granularity
/// task body.
pub fn ion_emissivity_into(
    db: &AtomDatabase,
    ion_index: usize,
    point: &GridPoint,
    grid: &EnergyGrid,
    integrator: Integrator,
    ws: &mut QagsWorkspace,
    out: &mut [f64],
) -> u64 {
    let levels = db.levels_by_index(ion_index).len();
    emissivity_into(db, ion_index, 0..levels, point, grid, integrator, ws, out)
}

/// [`ion_emissivity_into`] with an explicit [`MathMode`].
#[allow(clippy::too_many_arguments)]
pub fn ion_emissivity_into_mode(
    db: &AtomDatabase,
    ion_index: usize,
    point: &GridPoint,
    grid: &EnergyGrid,
    integrator: Integrator,
    ws: &mut QagsWorkspace,
    out: &mut [f64],
    math: MathMode,
) -> u64 {
    let levels = db.levels_by_index(ion_index).len();
    emissivity_into_mode(
        db,
        ion_index,
        0..levels,
        point,
        grid,
        integrator,
        ws,
        out,
        math,
    )
}

/// The "original serial APEC": computes the whole spectrum of a grid
/// point by looping ions → levels → bins on one thread.
///
/// ```
/// use atomdb::{AtomDatabase, DatabaseConfig};
/// use rrc_spectral::{EnergyGrid, GridPoint, Integrator, SerialCalculator};
///
/// let db = AtomDatabase::generate(DatabaseConfig { max_z: 4, ..Default::default() });
/// let calc = SerialCalculator::new(
///     db,
///     EnergyGrid::linear(50.0, 500.0, 32),
///     Integrator::Simpson { panels: 64 },
/// );
/// let point = GridPoint { temperature_k: 2e6, density_cm3: 1.0, time_s: 0.0, index: 0 };
/// let spectrum = calc.spectrum_at(&point);
/// assert!(spectrum.total() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SerialCalculator {
    db: AtomDatabase,
    grid: EnergyGrid,
    integrator: Integrator,
}

impl SerialCalculator {
    /// Build a calculator over `db` and `grid` using `integrator` for
    /// every bin.
    #[must_use]
    pub fn new(db: AtomDatabase, grid: EnergyGrid, integrator: Integrator) -> SerialCalculator {
        SerialCalculator {
            db,
            grid,
            integrator,
        }
    }

    /// The database in use.
    #[must_use]
    pub fn database(&self) -> &AtomDatabase {
        &self.db
    }

    /// The grid in use.
    #[must_use]
    pub fn grid(&self) -> &EnergyGrid {
        &self.grid
    }

    /// Emissivity spectrum of one ion at `point`.
    #[must_use]
    pub fn ion_spectrum(&self, ion_index: usize, point: &GridPoint) -> Spectrum {
        let mut spectrum = Spectrum::zeros(self.grid.clone());
        let mut ws = QagsWorkspace::new();
        ion_emissivity_into(
            &self.db,
            ion_index,
            point,
            &self.grid,
            self.integrator,
            &mut ws,
            spectrum.bins_mut(),
        );
        spectrum
    }

    /// Full spectrum of `point`: the sum over all ions.
    #[must_use]
    pub fn spectrum_at(&self, point: &GridPoint) -> Spectrum {
        let mut spectrum = Spectrum::zeros(self.grid.clone());
        let mut ws = QagsWorkspace::new();
        for ion_index in 0..self.db.ions().len() {
            ion_emissivity_into(
                &self.db,
                ion_index,
                point,
                &self.grid,
                self.integrator,
                &mut ws,
                spectrum.bins_mut(),
            );
        }
        spectrum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomdb::DatabaseConfig;

    fn small_db() -> AtomDatabase {
        AtomDatabase::generate(DatabaseConfig {
            max_z: 8,
            ..DatabaseConfig::default()
        })
    }

    fn point() -> GridPoint {
        GridPoint {
            temperature_k: 1e7,
            density_cm3: 1.0,
            time_s: 0.0,
            index: 0,
        }
    }

    fn grid() -> EnergyGrid {
        EnergyGrid::linear(50.0, 2000.0, 64)
    }

    #[test]
    fn spectrum_is_nonnegative_and_nonzero() {
        let calc = SerialCalculator::new(small_db(), grid(), Integrator::paper_gpu());
        let s = calc.spectrum_at(&point());
        assert!(s.bins().iter().all(|&v| v >= 0.0));
        assert!(s.total() > 0.0);
    }

    #[test]
    fn qags_and_simpson_agree_closely() {
        // The paper's accuracy claim (Fig. 8): GPU Simpson vs serial QAGS
        // relative errors are tiny.
        let db = small_db();
        let g = grid();
        let serial = SerialCalculator::new(db.clone(), g.clone(), Integrator::paper_cpu());
        let gpu = SerialCalculator::new(db, g, Integrator::paper_gpu());
        let a = serial.spectrum_at(&point());
        let b = gpu.spectrum_at(&point());
        let errs = b.significant_relative_errors_percent(&a, 1e-6);
        assert!(!errs.is_empty());
        let worst = errs.iter().cloned().fold(0.0f64, |m, e| m.max(e.abs()));
        assert!(worst < 0.01, "worst relative error {worst}%");
    }

    #[test]
    fn ion_spectra_sum_to_total() {
        let calc = SerialCalculator::new(small_db(), grid(), Integrator::paper_gpu());
        let p = point();
        let total = calc.spectrum_at(&p);
        let mut summed = Spectrum::zeros(calc.grid().clone());
        for i in 0..calc.database().ions().len() {
            summed.accumulate(&calc.ion_spectrum(i, &p));
        }
        for (a, b) in total.bins().iter().zip(summed.bins()) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1e-300));
        }
    }

    #[test]
    fn work_count_tracks_bins_above_threshold() {
        let db = small_db();
        let g = EnergyGrid::linear(50.0, 2000.0, 32);
        let p = point();
        let mut out = vec![0.0; g.bins()];
        let mut ws = QagsWorkspace::new();
        // Oxygen fully-stripped ion (z=8, charge 8): dense index of (8,8).
        let idx = atomdb::Ion::new(8, 8).unwrap().dense_index();
        let n = ion_emissivity_into(&db, idx, &p, &g, Integrator::paper_gpu(), &mut ws, &mut out);
        assert!(n > 0);
        // Upper bound: every level-bin pair.
        let levels = db.levels_by_index(idx).len() as u64;
        assert!(n <= levels * g.bins() as u64);
    }

    #[test]
    fn hotter_point_shifts_spectrum_blueward() {
        let calc = SerialCalculator::new(small_db(), grid(), Integrator::paper_gpu());
        let cold = calc.spectrum_at(&GridPoint {
            temperature_k: 3e6,
            ..point()
        });
        let hot = calc.spectrum_at(&GridPoint {
            temperature_k: 3e7,
            ..point()
        });
        // Flux-weighted mean photon energy increases with temperature.
        let mean = |s: &Spectrum| {
            let mut num = 0.0;
            let mut den = 0.0;
            for i in 0..s.grid().bins() {
                num += s.grid().center_ev(i) * s.bins()[i];
                den += s.bins()[i];
            }
            num / den
        };
        assert!(mean(&hot) > mean(&cold));
    }

    #[test]
    fn vector_mode_tracks_exact_within_budget() {
        // The Vector math mode re-associates sums and swaps libm exp
        // for vexp: every populated bin must stay within 1e-12
        // relative of the Exact path, for both fusable rules.
        let db = small_db();
        let g = grid();
        let p = point();
        for integrator in [Integrator::paper_gpu(), Integrator::Romberg { k: 5 }] {
            let mut ws = QagsWorkspace::new();
            let mut exact = vec![0.0; g.bins()];
            let mut vector = vec![0.0; g.bins()];
            let mut n_exact = 0;
            let mut n_vector = 0;
            for ion in 0..db.ions().len() {
                n_exact += ion_emissivity_into_mode(
                    &db,
                    ion,
                    &p,
                    &g,
                    integrator,
                    &mut ws,
                    &mut exact,
                    MathMode::Exact,
                );
                n_vector += ion_emissivity_into_mode(
                    &db,
                    ion,
                    &p,
                    &g,
                    integrator,
                    &mut ws,
                    &mut vector,
                    MathMode::Vector,
                );
            }
            assert_eq!(n_exact, n_vector, "same work in either mode");
            assert!(exact.iter().sum::<f64>() > 0.0);
            for (i, (&a, &b)) in exact.iter().zip(&vector).enumerate() {
                let scale = a.abs().max(1e-300);
                assert!(
                    ((b - a) / scale).abs() <= 1e-12,
                    "{integrator:?} bin {i}: {b} vs {a}"
                );
            }
        }
    }

    #[test]
    fn exact_mode_is_the_default_bitwise() {
        // The delegating wrappers must keep today's results untouched.
        let db = small_db();
        let g = grid();
        let p = point();
        let mut ws = QagsWorkspace::new();
        let mut a = vec![0.0; g.bins()];
        let mut b = vec![0.0; g.bins()];
        for ion in 0..db.ions().len() {
            ion_emissivity_into(&db, ion, &p, &g, Integrator::paper_gpu(), &mut ws, &mut a);
            ion_emissivity_into_mode(
                &db,
                ion,
                &p,
                &g,
                Integrator::paper_gpu(),
                &mut ws,
                &mut b,
                MathMode::Exact,
            );
        }
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn romberg_matches_qags_tightly() {
        let db = small_db();
        let g = EnergyGrid::linear(200.0, 1500.0, 24);
        let serial = SerialCalculator::new(db.clone(), g.clone(), Integrator::paper_cpu());
        let romb = SerialCalculator::new(db, g, Integrator::Romberg { k: 9 });
        let a = serial.spectrum_at(&point());
        let b = romb.spectrum_at(&point());
        let errs = b.significant_relative_errors_percent(&a, 1e-6);
        let worst = errs.iter().cloned().fold(0.0f64, |m, e| m.max(e.abs()));
        assert!(worst < 0.01, "worst relative error {worst}%");
    }
}
