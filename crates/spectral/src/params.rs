//! The three-dimensional parameter space of paper Fig. 1.

/// One sampled point of the parameter space: a determinate
/// `(temperature, density, time)` triple. Every point spawns the three
/// nested loops (ions → levels → bins) of the spectral calculation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Electron temperature in kelvin.
    pub temperature_k: f64,
    /// Electron density in cm^-3.
    pub density_cm3: f64,
    /// Simulation epoch in seconds (used by time-dependent workloads;
    /// the equilibrium RRC spectrum itself does not depend on it).
    pub time_s: f64,
    /// Flat index of this point in its parameter space.
    pub index: usize,
}

impl GridPoint {
    /// `kT` of this point in eV.
    #[must_use]
    pub fn kt_ev(&self) -> f64 {
        self.temperature_k * atomdb::K_BOLTZMANN_EV_PER_K
    }
}

/// A rectangular (temperature × density × time) sampling, "often given by
/// a result of astrophysical simulation or a configuration file".
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterSpace {
    /// Sampled temperatures in kelvin.
    pub temperatures_k: Vec<f64>,
    /// Sampled electron densities in cm^-3.
    pub densities_cm3: Vec<f64>,
    /// Sampled epochs in seconds.
    pub times_s: Vec<f64>,
}

impl ParameterSpace {
    /// A small cube around typical hot-plasma conditions with `n` samples
    /// per axis (so `n^3` points).
    #[must_use]
    pub fn cube(n: usize) -> ParameterSpace {
        let n = n.max(1);
        let sample = |lo: f64, hi: f64, i: usize| {
            if n == 1 {
                0.5 * (lo + hi)
            } else {
                lo + (hi - lo) * i as f64 / (n - 1) as f64
            }
        };
        ParameterSpace {
            temperatures_k: (0..n).map(|i| sample(8e6, 1.2e7, i)).collect(),
            densities_cm3: (0..n).map(|i| sample(0.5, 2.0, i)).collect(),
            times_s: (0..n).map(|i| sample(0.0, 3.15e10, i)).collect(),
        }
    }

    /// The paper's test space: 24 grid points "within a small region", so
    /// per-point work is approximately equal. We lay them out as
    /// 24 temperatures × 1 density × 1 time.
    #[must_use]
    pub fn paper_test_space() -> ParameterSpace {
        ParameterSpace {
            temperatures_k: (0..24).map(|i| 9.0e6 + 5e4 * i as f64).collect(),
            densities_cm3: vec![1.0],
            times_s: vec![0.0],
        }
    }

    /// Total number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.temperatures_k.len() * self.densities_cm3.len() * self.times_s.len()
    }

    /// Whether the space is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `index`-th point (time-major, then density, then temperature).
    #[must_use]
    pub fn point(&self, index: usize) -> Option<GridPoint> {
        let nt = self.temperatures_k.len();
        let nd = self.densities_cm3.len();
        if index >= self.len() {
            return None;
        }
        let it = index % nt;
        let id = (index / nt) % nd;
        let ix = index / (nt * nd);
        Some(GridPoint {
            temperature_k: self.temperatures_k[it],
            density_cm3: self.densities_cm3[id],
            time_s: self.times_s[ix],
            index,
        })
    }

    /// Iterate over all points in index order.
    pub fn points(&self) -> impl Iterator<Item = GridPoint> + '_ {
        (0..self.len()).map(|i| self.point(i).expect("index in range"))
    }

    /// Split the space into `parts` contiguous index ranges, as the
    /// paper's main program does "by dividing the whole parameter space
    /// into several equal subspaces". Earlier parts get the remainder.
    #[must_use]
    pub fn partition(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        let parts = parts.max(1);
        let total = self.len();
        let base = total / parts;
        let extra = total % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let size = base + usize::from(p < extra);
            out.push(start..start + size);
            start += size;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_has_n_cubed_points() {
        assert_eq!(ParameterSpace::cube(3).len(), 27);
        assert_eq!(ParameterSpace::cube(1).len(), 1);
    }

    #[test]
    fn paper_test_space_has_24_points() {
        let s = ParameterSpace::paper_test_space();
        assert_eq!(s.len(), 24);
        // All close together: temperatures within ~13%.
        let min = s.temperatures_k.iter().cloned().fold(f64::MAX, f64::min);
        let max = s.temperatures_k.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max / min < 1.15);
    }

    #[test]
    fn point_indexing_roundtrips() {
        let s = ParameterSpace::cube(3);
        for (i, p) in s.points().enumerate() {
            assert_eq!(p.index, i);
            assert_eq!(s.point(i).unwrap(), p);
        }
        assert!(s.point(s.len()).is_none());
    }

    #[test]
    fn partition_covers_everything_disjointly() {
        let s = ParameterSpace::paper_test_space();
        for parts in [1usize, 3, 5, 24, 30] {
            let ranges = s.partition(parts);
            assert_eq!(ranges.len(), parts);
            let mut covered = 0usize;
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
                covered += r.len();
            }
            assert_eq!(covered, s.len());
            // No part differs from another by more than one point.
            let sizes: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn kt_conversion() {
        let p = GridPoint {
            temperature_k: 1e7,
            density_cm3: 1.0,
            time_s: 0.0,
            index: 0,
        };
        assert!((p.kt_ev() - 861.7).abs() < 1.0);
    }
}
