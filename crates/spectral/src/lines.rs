//! Line emission — the other half of APEC.
//!
//! The paper accelerates the *continuum* (RRC) part of APEC, but APEC
//! itself "calculates both line and continuum emissivity" (paper §II-C
//! / Smith et al. 2001). This module provides the line side over the
//! same synthetic database so the assembled spectra are
//! APEC-complete:
//!
//! * hydrogenic transition energies `E = Ry q^2 (1/n_lo^2 - 1/n_up^2)`,
//! * Kramers-scaling Einstein A coefficients,
//! * a coronal excitation model (collisional excitation from the ground
//!   state balanced by radiative decay — valid in the low-density
//!   regime the paper's plasmas occupy),
//! * thermal Doppler broadening, Gaussian profiles binned onto the
//!   energy grid.

use atomdb::{AtomDatabase, Ion};

use crate::grid::EnergyGrid;
use crate::ionpop::ion_density;
use crate::params::GridPoint;
use crate::spectrum::Spectrum;

/// Proton rest energy in eV (Doppler widths scale with the emitter
/// mass `A m_p`).
const MP_C2_EV: f64 = 938.272e6;

/// Base Einstein-A scale for the hydrogenic 2→1 transition of hydrogen,
/// in 1/s.
const A0_PER_S: f64 = 4.7e8;

/// Coronal excitation normalization (cm³/s scale); only the relative
/// line strengths matter for normalized spectra.
const C0_EXCITATION: f64 = 8.6e-8;

/// One bound-bound transition of an ion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// Upper principal quantum number.
    pub n_up: u16,
    /// Lower principal quantum number.
    pub n_lo: u16,
    /// Photon energy in eV.
    pub energy_ev: f64,
    /// Excitation energy of the upper level from the ground state, eV
    /// (what the exciting electron must supply in the coronal model).
    pub excitation_ev: f64,
    /// Einstein A coefficient, 1/s.
    pub einstein_a: f64,
}

/// All lines of `ion` that fall inside `[min_ev, max_ev]`, built from
/// the database's level census for that ion.
#[must_use]
pub fn lines_for_ion(db: &AtomDatabase, ion: Ion, min_ev: f64, max_ev: f64) -> Vec<Line> {
    let Some(levels) = db.levels(ion) else {
        return Vec::new();
    };
    let q = ion.effective_charge();
    let ground_binding = levels[0].binding_energy_ev;
    let mut out = Vec::new();
    for (i, lo) in levels.iter().enumerate() {
        for up in &levels[i + 1..] {
            let energy = lo.binding_energy_ev - up.binding_energy_ev;
            if energy < min_ev || energy > max_ev {
                continue;
            }
            let nu = f64::from(up.n);
            let nl = f64::from(lo.n);
            // Kramers scaling of the hydrogenic A-value.
            let einstein_a =
                A0_PER_S * q.powi(4) / (nu.powi(3) * nl * (nu * nu - nl * nl).max(1.0));
            out.push(Line {
                n_up: up.n,
                n_lo: lo.n,
                energy_ev: energy,
                excitation_ev: ground_binding - up.binding_energy_ev,
                einstein_a,
            });
        }
    }
    out
}

/// Coronal line emissivity of one transition: electron-impact
/// excitation of the *upper level from the ground state*
/// (`exp(-E_exc/kT)/sqrt(kT)` Arrhenius shape) times the photon
/// energy; every excitation radiates (coronal limit).
#[must_use]
pub fn line_power(line: &Line, kt_ev: f64, ne_cm3: f64, ion_density_cm3: f64) -> f64 {
    if kt_ev <= 0.0 {
        return 0.0;
    }
    let excitation = C0_EXCITATION * (-line.excitation_ev / kt_ev).exp() / kt_ev.sqrt();
    ne_cm3 * ion_density_cm3 * excitation * line.energy_ev
}

/// Thermal Doppler width (1-sigma, in eV) of a line from an emitter of
/// mass number `a` at temperature `kt_ev`.
#[must_use]
pub fn doppler_sigma_ev(energy_ev: f64, kt_ev: f64, a: f64) -> f64 {
    energy_ev * (kt_ev / (a.max(1.0) * MP_C2_EV)).sqrt()
}

/// Accumulate the line emission of the `ion_index`-th ion at `point`
/// into `out` (one slot per grid bin), Gaussian-broadened. Returns the
/// number of lines deposited.
///
/// # Panics
/// Panics if `out.len() != grid.bins()`.
pub fn ion_lines_into(
    db: &AtomDatabase,
    ion_index: usize,
    point: &GridPoint,
    grid: &EnergyGrid,
    out: &mut [f64],
) -> usize {
    assert_eq!(out.len(), grid.bins(), "output slice / grid mismatch");
    let ion = db.ions()[ion_index];
    let n_ion = ion_density(ion.z, ion.charge, point.temperature_k, point.density_cm3);
    if n_ion <= 0.0 {
        return 0;
    }
    let kt = point.kt_ev();
    // Mass number ~ 2 Z for everything heavier than hydrogen.
    let a = if ion.z == 1 {
        1.0
    } else {
        2.0 * f64::from(ion.z)
    };
    let lines = lines_for_ion(db, ion, grid.min_ev(), grid.max_ev());
    let mut deposited = 0;
    for line in &lines {
        let power = line_power(line, kt, point.density_cm3, n_ion)
            * (line.einstein_a / (line.einstein_a + A0_PER_S * 1e-3));
        if power <= 0.0 {
            continue;
        }
        let sigma = doppler_sigma_ev(line.energy_ev, kt, a).max(1e-6);
        deposit_gaussian(grid, line.energy_ev, sigma, power, out);
        deposited += 1;
    }
    deposited
}

/// Deposit a Gaussian of total weight `power` centred at `center` with
/// width `sigma` onto the grid, by integrating the profile over each
/// bin (erf differences — exact binning, no sampling artifacts).
fn deposit_gaussian(grid: &EnergyGrid, center: f64, sigma: f64, power: f64, out: &mut [f64]) {
    // Only bins within 6 sigma matter.
    let lo = center - 6.0 * sigma;
    let hi = center + 6.0 * sigma;
    let first = grid.locate(lo).unwrap_or(0);
    let last = grid.locate(hi).unwrap_or(grid.bins() - 1);
    let norm = 1.0 / (sigma * std::f64::consts::SQRT_2);
    for (bin, slot) in out.iter_mut().enumerate().take(last + 1).skip(first) {
        let (a, b) = grid.bin(bin);
        let weight = 0.5 * (erf((b - center) * norm) - erf((a - center) * norm));
        *slot += power * weight;
    }
}

/// Abramowitz–Stegun 7.1.26 rational approximation of erf (max error
/// 1.5e-7 — far below the physics accuracy of the coronal model).
pub(crate) fn erf_pub(x: f64) -> f64 {
    erf(x)
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A complete APEC-style spectrum: RRC continuum plus coronal lines.
#[must_use]
pub fn full_spectrum(
    db: &AtomDatabase,
    point: &GridPoint,
    grid: &EnergyGrid,
    continuum_integrator: crate::calculator::Integrator,
) -> Spectrum {
    let mut spectrum = Spectrum::zeros(grid.clone());
    let mut ws = quadrature::QagsWorkspace::new();
    for ion_index in 0..db.ions().len() {
        crate::calculator::ion_emissivity_into(
            db,
            ion_index,
            point,
            grid,
            continuum_integrator,
            &mut ws,
            spectrum.bins_mut(),
        );
        ion_lines_into(db, ion_index, point, grid, spectrum.bins_mut());
    }
    spectrum
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomdb::{DatabaseConfig, RYDBERG_EV};

    fn db() -> AtomDatabase {
        AtomDatabase::generate(DatabaseConfig {
            max_z: 8,
            ..DatabaseConfig::default()
        })
    }

    fn point() -> GridPoint {
        GridPoint {
            temperature_k: 3e6,
            density_cm3: 1.0,
            time_s: 0.0,
            index: 0,
        }
    }

    #[test]
    fn hydrogenic_line_energies_are_rydberg_series() {
        let d = db();
        // O+8 recombined (hydrogen-like oxygen): Lyman-alpha at
        // Ry * 64 * (1 - 1/4) = 653.1 eV.
        let ion = Ion::new(8, 8).unwrap();
        let lines = lines_for_ion(&d, ion, 1.0, 2000.0);
        let lya = lines
            .iter()
            .find(|l| l.n_up == 2 && l.n_lo == 1)
            .expect("Ly-alpha present");
        let expected = RYDBERG_EV * 64.0 * 0.75;
        assert!((lya.energy_ev - expected).abs() < 1e-9);
    }

    #[test]
    fn a_values_fall_with_upper_level() {
        let d = db();
        let ion = Ion::new(8, 8).unwrap();
        let lines = lines_for_ion(&d, ion, 1.0, 2000.0);
        let a2 = lines.iter().find(|l| l.n_up == 2 && l.n_lo == 1).unwrap();
        let a5 = lines.iter().find(|l| l.n_up == 5 && l.n_lo == 1).unwrap();
        assert!(a2.einstein_a > a5.einstein_a);
    }

    #[test]
    fn line_deposition_conserves_power() {
        let grid = EnergyGrid::linear(100.0, 1000.0, 256);
        let mut out = vec![0.0; grid.bins()];
        deposit_gaussian(&grid, 500.0, 2.0, 3.5, &mut out);
        let total: f64 = out.iter().sum();
        assert!((total - 3.5).abs() < 1e-4, "total {total}");
    }

    #[test]
    fn lines_near_the_grid_edge_lose_the_clipped_tail() {
        let grid = EnergyGrid::linear(100.0, 1000.0, 128);
        let mut out = vec![0.0; grid.bins()];
        deposit_gaussian(&grid, 100.5, 3.0, 1.0, &mut out);
        let total: f64 = out.iter().sum();
        assert!(total < 0.99 && total > 0.4, "total {total}");
    }

    #[test]
    fn ion_lines_land_in_the_spectrum() {
        let d = db();
        let grid = EnergyGrid::linear(50.0, 1000.0, 512);
        let mut out = vec![0.0; grid.bins()];
        let idx = Ion::new(8, 8).unwrap().dense_index();
        let n = ion_lines_into(&d, idx, &point(), &grid, &mut out);
        assert!(n > 0, "no lines deposited");
        assert!(out.iter().sum::<f64>() > 0.0);
        // The strongest feature should be Ly-alpha at ~653 eV. Compare
        // alignment-robust window sums (a line can straddle a bin edge).
        let window = |center: f64| -> f64 {
            out.iter()
                .enumerate()
                .filter(|(i, _)| (grid.center_ev(*i) - center).abs() < 3.0)
                .map(|(_, &v)| v)
                .sum()
        };
        let lya = window(653.1); // 2 -> 1
        let lyb = window(774.0); // 3 -> 1
        assert!(lya > lyb, "Ly-a {lya} should beat Ly-b {lyb}");
        assert!(lya > 0.0);
    }

    #[test]
    fn hotter_lines_are_broader() {
        let cold = doppler_sigma_ev(650.0, 100.0, 16.0);
        let hot = doppler_sigma_ev(650.0, 1000.0, 16.0);
        assert!(hot > cold * 3.0 * 0.99);
    }

    #[test]
    fn full_spectrum_exceeds_continuum_alone() {
        let d = db();
        let grid = EnergyGrid::linear(50.0, 1000.0, 128);
        let p = point();
        let integrator = crate::calculator::Integrator::Simpson { panels: 64 };
        let full = full_spectrum(&d, &p, &grid, integrator);
        let continuum =
            crate::calculator::SerialCalculator::new(d, grid, integrator).spectrum_at(&p);
        assert!(full.total() > continuum.total());
        for (f, c) in full.bins().iter().zip(continuum.bins()) {
            assert!(f >= c, "line emission is additive");
        }
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }
}
