//! Instrument response folding.
//!
//! The paper's motivation is fitting *observed* spectra ("it is a
//! common task for modern astronomers to fit the observed spectrum with
//! the spectrum calculated from theoretical models"). An observation is
//! the model spectrum folded through the telescope's response: an
//! energy-dependent effective area and a finite energy resolution.
//! This module provides a simple diagonal-plus-Gaussian response — the
//! standard first-order model of an X-ray CCD — so survey examples can
//! produce realistic mock observations.

use crate::spectrum::Spectrum;

/// A simplified X-ray instrument response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrumentResponse {
    /// Peak effective area, cm².
    pub area_cm2: f64,
    /// Energy (eV) where the effective area peaks (vignetting rolls the
    /// area off quadratically in `log E` away from it).
    pub area_peak_ev: f64,
    /// Width (dex) of the effective-area rolloff.
    pub area_width_dex: f64,
    /// Energy resolution: FWHM (eV) at the reference energy.
    pub fwhm_ev_at_1kev: f64,
    /// Exposure time, seconds.
    pub exposure_s: f64,
}

impl InstrumentResponse {
    /// A CCD-like response loosely shaped on Chandra-era instruments
    /// (the telescopes the paper's spectra target).
    #[must_use]
    pub fn ccd() -> InstrumentResponse {
        InstrumentResponse {
            area_cm2: 600.0,
            area_peak_ev: 1000.0,
            area_width_dex: 0.8,
            fwhm_ev_at_1kev: 60.0,
            exposure_s: 1.0e4,
        }
    }

    /// Effective area at `energy_ev`, cm².
    #[must_use]
    pub fn effective_area(&self, energy_ev: f64) -> f64 {
        if energy_ev <= 0.0 {
            return 0.0;
        }
        let d = (energy_ev / self.area_peak_ev).log10() / self.area_width_dex;
        self.area_cm2 * (-0.5 * d * d).exp()
    }

    /// Gaussian resolution sigma at `energy_ev` (FWHM scales like
    /// `sqrt(E)`, the Fano-noise law of a CCD).
    #[must_use]
    pub fn sigma_ev(&self, energy_ev: f64) -> f64 {
        let fwhm = self.fwhm_ev_at_1kev * (energy_ev.max(1.0) / 1000.0).sqrt();
        fwhm / (8.0f64 * 2.0f64.ln()).sqrt()
    }

    /// Fold a model spectrum into expected counts per bin:
    /// `counts_j = exposure * sum_i model_i * area(E_i) * R(i -> j)`
    /// with `R` the Gaussian redistribution, bin-integrated.
    #[must_use]
    pub fn fold(&self, model: &Spectrum) -> Vec<f64> {
        let grid = model.grid();
        let mut counts = vec![0.0; grid.bins()];
        for i in 0..grid.bins() {
            let e = grid.center_ev(i);
            let weight = model.bins()[i] * self.effective_area(e) * self.exposure_s;
            if weight <= 0.0 {
                continue;
            }
            let sigma = self.sigma_ev(e).max(1e-9);
            // Redistribute over +/- 5 sigma with erf-differenced bins.
            let norm = 1.0 / (sigma * std::f64::consts::SQRT_2);
            let first = grid.locate(e - 5.0 * sigma).unwrap_or(0);
            let last = grid.locate(e + 5.0 * sigma).unwrap_or(grid.bins() - 1);
            for (j, slot) in counts.iter_mut().enumerate().take(last + 1).skip(first) {
                let (a, b) = grid.bin(j);
                let w = 0.5
                    * (crate::lines::erf_pub((b - e) * norm)
                        - crate::lines::erf_pub((a - e) * norm));
                *slot += weight * w;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::EnergyGrid;

    fn flat_spectrum(grid: EnergyGrid) -> Spectrum {
        let bins = vec![1.0; grid.bins()];
        Spectrum::from_bins(grid, bins)
    }

    #[test]
    fn area_peaks_where_configured() {
        let r = InstrumentResponse::ccd();
        let at_peak = r.effective_area(1000.0);
        assert!((at_peak - 600.0).abs() < 1e-9);
        assert!(r.effective_area(300.0) < at_peak);
        assert!(r.effective_area(4000.0) < at_peak);
        assert_eq!(r.effective_area(-1.0), 0.0);
    }

    #[test]
    fn resolution_follows_fano_scaling() {
        let r = InstrumentResponse::ccd();
        let s1 = r.sigma_ev(1000.0);
        let s4 = r.sigma_ev(4000.0);
        assert!((s4 / s1 - 2.0).abs() < 1e-9);
        // FWHM = 60 eV at 1 keV -> sigma ~ 25.5 eV.
        assert!((s1 - 60.0 / 2.3548).abs() < 0.01);
    }

    #[test]
    fn folding_conserves_counts_away_from_edges() {
        // A flat model on a wide grid: interior counts must equal
        // model * area * exposure.
        let grid = EnergyGrid::linear(200.0, 2000.0, 200);
        let model = flat_spectrum(grid.clone());
        let r = InstrumentResponse::ccd();
        let counts = r.fold(&model);
        let mid = 100;
        let e = grid.center_ev(mid);
        // Sum the redistribution of nearby bins back into balance: for a
        // locally flat input, output ~ input locally.
        let expected = 1.0 * r.effective_area(e) * r.exposure_s;
        // The neighbouring bins have slightly different areas; allow 2%.
        assert!(
            (counts[mid] - expected).abs() / expected < 0.02,
            "{} vs {expected}",
            counts[mid]
        );
    }

    #[test]
    fn folding_broadens_a_line() {
        let grid = EnergyGrid::linear(500.0, 1500.0, 500); // 2 eV bins
        let mut bins = vec![0.0; grid.bins()];
        bins[250] = 1.0; // delta line at ~1000 eV
        let model = Spectrum::from_bins(grid.clone(), bins);
        let r = InstrumentResponse::ccd();
        let counts = r.fold(&model);
        let populated = counts.iter().filter(|&&c| c > 1e-6).count();
        // sigma ~ 25 eV over 2 eV bins: tens of populated bins.
        assert!(populated > 20, "only {populated} bins populated");
        // Total counts conserved (line far from edges).
        let total: f64 = counts.iter().sum();
        let expected = r.effective_area(grid.center_ev(250)) * r.exposure_s;
        assert!((total - expected).abs() / expected < 1e-3);
    }

    #[test]
    fn zero_exposure_gives_zero_counts() {
        let grid = EnergyGrid::linear(200.0, 2000.0, 50);
        let model = flat_spectrum(grid);
        let mut r = InstrumentResponse::ccd();
        r.exposure_s = 0.0;
        assert!(r.fold(&model).iter().all(|&c| c == 0.0));
    }
}
