//! Mini-APEC: Radiative Recombination Continuum (RRC) spectral
//! calculation.
//!
//! This crate is the spectral substrate of the hybrid system — the part
//! of APEC the paper actually accelerates. It provides:
//!
//! * [`physics`] — the RRC integrand of paper Eq. 1: the differential
//!   emitted power `dP/dE` for recombination of an electron onto one
//!   level of one ion in a Maxwellian plasma,
//! * [`grid`] — energy-bin grids and wavelength conversion (the paper's
//!   spectra are plotted over 10–45 Å),
//! * [`params`] — the three-dimensional (temperature, density, time)
//!   parameter space of paper Fig. 1,
//! * [`ionpop`] — a simple collisional-ionization-equilibrium population
//!   model supplying the ion densities `n_{Z,j+1}`,
//! * [`spectrum`] — accumulated per-bin emissivity, normalization and
//!   spectrum comparison (relative-error distribution, paper Fig. 8),
//! * [`calculator`] — the serial reference calculator ("original serial
//!   APEC"): three nested loops — ions, levels, energy bins — each bin
//!   being one small definite integral (paper Eq. 2).

pub mod calculator;
pub mod delta;
pub mod grid;
pub mod ionpop;
pub mod lines;
pub mod params;
pub mod physics;
pub mod response;
pub mod spectrum;

pub use calculator::{
    emissivity_fused_into, emissivity_fused_into_mode, emissivity_into, emissivity_into_mode,
    emissivity_per_bin_into, ion_emissivity_into, ion_emissivity_into_mode, ion_integrands,
    level_window, window_bin_range, Integrator, SerialCalculator,
};
pub use delta::{classify_ion, DeltaClass};
pub use grid::EnergyGrid;
pub use ionpop::cie_fractions;
pub use lines::{full_spectrum, ion_lines_into, lines_for_ion, Line};
pub use params::{GridPoint, ParameterSpace};
pub use physics::{PreparedIntegrand, RrcIntegrand, VectorPrepared};
pub use response::InstrumentResponse;
pub use spectrum::{ErrorHistogram, Spectrum};

/// Planck constant times speed of light in eV·Å: converts photon energy
/// to wavelength, `lambda_angstrom = HC_EV_ANGSTROM / energy_ev`.
pub const HC_EV_ANGSTROM: f64 = 12_398.419_84;

/// Electron rest energy in eV, used in the Maxwellian prefactor.
pub const ME_C2_EV: f64 = 510_998.95;
