//! Ion population model.
//!
//! The emissivity (paper Eq. 1) needs the density `n_{Z,j+1}` of each
//! recombining ion. APEC takes these from a collisional-ionization-
//! equilibrium (CIE) calculation; we use a compact analytic stand-in
//! with the right qualitative behaviour: each charge state `j` of
//! element `Z` peaks at a formation temperature proportional to its
//! ionization potential, with a log-normal profile around the peak, and
//! the fractions of an element sum to one.

use atomdb::{IonStage, K_BOLTZMANN_EV_PER_K};

/// Width (in dex of temperature) of each charge state's formation peak.
const PEAK_WIDTH_DEX: f64 = 0.35;

/// Formation temperature of a stage: the temperature where `kT` is about
/// one sixth of the stage's ionization potential — the familiar CIE rule
/// of thumb for collisionally ionized plasmas.
fn formation_temperature_k(stage: IonStage) -> f64 {
    stage.ionization_potential_ev() / (6.0 * K_BOLTZMANN_EV_PER_K)
}

/// Equilibrium charge-state fractions of element `z` at `temperature_k`:
/// returns `z + 1` values (charge 0..=z) summing to 1.
///
/// Returns all population in the neutral stage for non-positive
/// temperatures.
#[must_use]
pub fn cie_fractions(z: u8, temperature_k: f64) -> Vec<f64> {
    let stages = usize::from(z) + 1;
    let mut out = vec![0.0; stages];
    if temperature_k <= 0.0 {
        out[0] = 1.0;
        return out;
    }
    let log_t = temperature_k.log10();
    // Fill the Gaussian arguments -d²/2 for every stage, then take all
    // the exponentials in one lane-parallel `vexp` pass (this loop used
    // to pay one scalar `exp` per stage).
    for (charge, slot) in out.iter_mut().enumerate() {
        let stage = IonStage::new(z, charge as u8).expect("charge <= z");
        let peak = formation_temperature_k(stage).log10();
        let d = (log_t - peak) / PEAK_WIDTH_DEX;
        *slot = -0.5 * d * d;
    }
    quadrature::vexp(&mut out);
    let total: f64 = out.iter().sum();
    if total <= f64::MIN_POSITIVE {
        // Far outside every peak: everything in the extreme stage.
        let idx = if log_t > formation_temperature_k(IonStage::new(z, z).expect("valid")).log10() {
            stages - 1
        } else {
            0
        };
        out.iter_mut().for_each(|v| *v = 0.0);
        out[idx] = 1.0;
        return out;
    }
    for v in &mut out {
        *v /= total;
    }
    out
}

/// Density (cm^-3) of the recombining ion `(z, charge)` in a plasma of
/// electron density `ne_cm3` at `temperature_k`: element abundance ×
/// charge-state fraction × electron density.
#[must_use]
pub fn ion_density(z: u8, charge: u8, temperature_k: f64, ne_cm3: f64) -> f64 {
    let Some(element) = atomdb::Element::by_z(z) else {
        return 0.0;
    };
    if charge > z {
        return 0.0;
    }
    let fractions = cie_fractions(z, temperature_k);
    element.abundance() * fractions[usize::from(charge)] * ne_cm3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        for z in [1u8, 2, 8, 26] {
            for t in [1e4, 1e6, 1e7, 1e9] {
                let f = cie_fractions(z, t);
                assert_eq!(f.len(), usize::from(z) + 1);
                let sum: f64 = f.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "z={z} t={t}: {sum}");
                assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }
    }

    #[test]
    fn cold_plasma_is_neutral() {
        let f = cie_fractions(8, 1e3);
        let argmax = f
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 0);
    }

    #[test]
    fn hot_plasma_is_fully_stripped() {
        let f = cie_fractions(8, 1e9);
        let argmax = f
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 8);
    }

    #[test]
    fn dominant_charge_rises_with_temperature() {
        let dominant = |t: f64| {
            cie_fractions(26, t)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        let d1 = dominant(1e5);
        let d2 = dominant(1e7);
        let d3 = dominant(5e8);
        assert!(d1 <= d2 && d2 <= d3);
        assert!(d3 > d1);
    }

    #[test]
    fn batched_weights_match_scalar_exp_reference() {
        // The vexp batch must reproduce the seed's per-stage scalar
        // `(-0.5 d²).exp()` pipeline within the vector error budget.
        for z in [1u8, 2, 6, 8, 14, 26, 30] {
            for t in [3e3, 1e5, 2.5e6, 1e7, 4e8, 1e9] {
                let got = cie_fractions(z, t);
                // Scalar reference, same arithmetic up to the `exp`.
                let log_t = t.log10();
                let weights: Vec<f64> = (0..=z)
                    .map(|charge| {
                        let stage = IonStage::new(z, charge).expect("charge <= z");
                        let peak = formation_temperature_k(stage).log10();
                        let d = (log_t - peak) / PEAK_WIDTH_DEX;
                        (-0.5 * d * d).exp()
                    })
                    .collect();
                let total: f64 = weights.iter().sum();
                for (charge, (&g, &w)) in got.iter().zip(&weights).enumerate() {
                    let want = w / total;
                    let scale = want.abs().max(1e-300);
                    assert!(
                        ((g - want) / scale).abs() <= 1e-12,
                        "z={z} t={t} charge={charge}: {g} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_temperature_is_handled() {
        let f = cie_fractions(6, 0.0);
        assert_eq!(f[0], 1.0);
        assert!(f[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn ion_density_scales_with_ne_and_abundance() {
        let d_h = ion_density(1, 1, 2e5, 1.0);
        let d_h2 = ion_density(1, 1, 2e5, 2.0);
        assert!((d_h2 / d_h - 2.0).abs() < 1e-12);
        // Lithium is ~11 dex rarer than hydrogen.
        let d_li = ion_density(3, 1, 2e5, 1.0);
        assert!(d_li < d_h);
    }

    #[test]
    fn ion_density_out_of_range_is_zero() {
        assert_eq!(ion_density(99, 1, 1e6, 1.0), 0.0);
        assert_eq!(ion_density(8, 9, 1e6, 1.0), 0.0);
    }
}
