//! Validation of the discrete-event kernel against queueing theory:
//! if the simulator is right, an M/M/1 queue must reproduce the
//! closed-form utilization and a two-server system must match M/M/2.

use desim::{rng, Simulation};

struct World {
    served: u64,
    remaining_arrivals: u64,
}

/// Drive an M/M/c queue: Poisson arrivals (rate lambda), exponential
/// service (rate mu), c servers. Returns (simulated span, busy time of
/// the resource, served count).
fn run_mmc(lambda: f64, mu: f64, servers: usize, arrivals: u64, seed: u64) -> (f64, f64, u64) {
    let mut sim = Simulation::new(World {
        served: 0,
        remaining_arrivals: arrivals,
    });
    let res = sim.create_resource(servers);
    let mut r = rng(seed);

    // Pre-draw all randomness so event closures stay 'static.
    let mut arrival_gaps = Vec::with_capacity(arrivals as usize);
    let mut services = Vec::with_capacity(arrivals as usize);
    for _ in 0..arrivals {
        let u: f64 = r.gen_range(1e-12..1.0);
        arrival_gaps.push(-u.ln() / lambda);
        let u: f64 = r.gen_range(1e-12..1.0);
        services.push(-u.ln() / mu);
    }
    let mut t = 0.0;
    for i in 0..arrivals as usize {
        t += arrival_gaps[i];
        let service = services[i];
        sim.schedule_at(t, move |sim| {
            sim.world.remaining_arrivals -= 1;
            sim.acquire(res, move |sim| {
                sim.schedule(service, move |sim| {
                    sim.world.served += 1;
                    sim.release(res);
                });
            });
        });
    }
    let end = sim.run();
    let stats = sim.resource_stats(res);
    (end, stats.busy_time, sim.world.served)
}

#[test]
fn mm1_utilization_matches_theory() {
    // rho = lambda/mu = 0.6; long-run busy fraction must approach rho.
    let (span, busy, served) = run_mmc(0.6, 1.0, 1, 20_000, 42);
    assert_eq!(served, 20_000);
    let rho = busy / span;
    assert!(
        (rho - 0.6).abs() < 0.02,
        "measured utilization {rho}, theory 0.6"
    );
}

#[test]
fn mm2_shares_load_across_servers() {
    // Two servers at rho = 0.7 each: busy-server integral / span ~ 1.4.
    let (span, busy, served) = run_mmc(1.4, 1.0, 2, 20_000, 7);
    assert_eq!(served, 20_000);
    let busy_servers = busy / span;
    assert!(
        (busy_servers - 1.4).abs() < 0.05,
        "mean busy servers {busy_servers}, theory 1.4"
    );
}

#[test]
fn overloaded_queue_grows_linearly() {
    // rho > 1: the backlog at the end must be of order (lambda-mu)*T.
    let lambda = 2.0;
    let mu = 1.0;
    let arrivals = 10_000u64;
    let mut sim = Simulation::new(World {
        served: 0,
        remaining_arrivals: arrivals,
    });
    let res = sim.create_resource(1);
    let mut r = rng(3);
    let mut t = 0.0;
    for _ in 0..arrivals {
        let u: f64 = r.gen_range(1e-12..1.0);
        t += -u.ln() / lambda;
        let u: f64 = r.gen_range(1e-12..1.0);
        let service = -u.ln() / mu;
        sim.schedule_at(t, move |sim| {
            sim.acquire(res, move |sim| {
                sim.schedule(service, move |sim| {
                    sim.world.served += 1;
                    sim.release(res);
                });
            });
        });
    }
    let horizon = t; // arrival of the last job
    sim.run_until(horizon);
    let backlog = sim.load(res) as f64;
    let expected = (lambda - mu) * horizon;
    assert!(
        (backlog - expected).abs() / expected < 0.15,
        "backlog {backlog}, expected ~{expected}"
    );
    sim.run(); // drain
    assert_eq!(sim.world.served, arrivals);
}

#[test]
fn little_law_holds_for_mm1() {
    // L = lambda_eff * W. Measure L from the load histogram and W from
    // span/served round trips — on a long run both sides must agree.
    let lambda = 0.5;
    let mu = 1.0;
    let (span, _busy, served) = run_mmc(lambda, mu, 1, 30_000, 11);
    // For M/M/1: L = rho/(1-rho) = 1.0 at rho=0.5; W = 1/(mu-lambda) = 2.
    // Check the identity L = lambda * W using theory on one side and the
    // simulated throughput on the other.
    let throughput = served as f64 / span;
    let w_theory = 1.0 / (mu - lambda);
    let l_from_littles = throughput * w_theory;
    assert!(
        (l_from_littles - 1.0).abs() < 0.1,
        "L from Little's law: {l_from_littles}"
    );
}
