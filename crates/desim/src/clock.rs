//! Request-time primitives: a shareable clock, absolute deadlines, and
//! priority classes.
//!
//! The service and routing tiers above this crate attach an SLO to
//! every request: an absolute [`Deadline`] on a [`VirtualClock`] plus a
//! [`Priority`] class. The clock abstracts *whose* time the deadline is
//! measured against — production uses [`VirtualClock::real`] (anchored
//! monotonic wall time), tests use [`VirtualClock::manual`] and advance
//! it explicitly so admission and breaker cooldown decisions replay
//! bit-for-bit. Placing these types here (the lowest crate in the
//! workspace) lets the scheduler, engine, service, and router all speak
//! the same deadline vocabulary without a dependency cycle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monotonic seconds source shared across threads.
///
/// Cloning is cheap (an `Arc` handle); every clone reads the same
/// timeline. The manual mode stores seconds as `f64` bits in an atomic
/// and only ever moves forward.
#[derive(Clone)]
pub struct VirtualClock {
    inner: Arc<ClockInner>,
}

enum ClockInner {
    /// Wall time, anchored at construction so `now()` starts near 0.
    Real(Instant),
    /// Test time: advanced explicitly, never by itself.
    Manual(AtomicU64),
}

impl std::fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &*self.inner {
            ClockInner::Real(_) => write!(f, "VirtualClock::Real({:.6}s)", self.now()),
            ClockInner::Manual(_) => write!(f, "VirtualClock::Manual({:.6}s)", self.now()),
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::real()
    }
}

impl VirtualClock {
    /// A clock reading anchored monotonic wall time (production).
    #[must_use]
    pub fn real() -> VirtualClock {
        VirtualClock {
            inner: Arc::new(ClockInner::Real(Instant::now())),
        }
    }

    /// A clock that stands still until [`advance`](Self::advance)d
    /// (deterministic tests).
    #[must_use]
    pub fn manual() -> VirtualClock {
        VirtualClock {
            inner: Arc::new(ClockInner::Manual(AtomicU64::new(0f64.to_bits()))),
        }
    }

    /// Seconds elapsed on this clock's timeline.
    #[must_use]
    pub fn now(&self) -> f64 {
        match &*self.inner {
            ClockInner::Real(anchor) => anchor.elapsed().as_secs_f64(),
            ClockInner::Manual(bits) => f64::from_bits(bits.load(Ordering::Acquire)),
        }
    }

    /// Move a manual clock forward by `seconds` (no-op on a real clock;
    /// negative or non-finite amounts are ignored — time never runs
    /// backwards).
    pub fn advance(&self, seconds: f64) {
        if !(seconds.is_finite() && seconds > 0.0) {
            return;
        }
        if let ClockInner::Manual(bits) = &*self.inner {
            // CAS loop: concurrent advancers must both land.
            let mut cur = bits.load(Ordering::Acquire);
            loop {
                let next = (f64::from_bits(cur) + seconds).to_bits();
                match bits.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// An absolute deadline `budget_s` seconds from now on this clock.
    #[must_use]
    pub fn deadline_in(&self, budget_s: f64) -> Deadline {
        Deadline {
            at_s: self.now() + budget_s.max(0.0),
        }
    }
}

/// An absolute point on a [`VirtualClock`] timeline by which a request
/// must complete.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deadline {
    /// Absolute clock seconds.
    pub at_s: f64,
}

impl Deadline {
    /// A deadline at absolute clock second `at_s`.
    #[must_use]
    pub fn at(at_s: f64) -> Deadline {
        Deadline { at_s }
    }

    /// Budget left on `clock` (negative once the deadline has passed).
    #[must_use]
    pub fn remaining(&self, clock: &VirtualClock) -> f64 {
        self.at_s - clock.now()
    }

    /// Whether the deadline has already passed on `clock`.
    #[must_use]
    pub fn expired(&self, clock: &VirtualClock) -> bool {
        self.remaining(clock) <= 0.0
    }
}

/// Request priority class. Two tiers are enough to separate latency-
/// sensitive interactive sweeps from bulk precompute; the ordering
/// (`Interactive` first) is the dequeue preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive foreground work (default).
    #[default]
    Interactive,
    /// Throughput-oriented background precompute.
    Bulk,
}

impl Priority {
    /// All classes in dequeue preference order.
    pub const ALL: [Priority; 2] = [Priority::Interactive, Priority::Bulk];

    /// Stable index for per-class arrays (`ALL[p.index()] == p`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Bulk => 1,
        }
    }

    /// Stable lower-case label for CLI flags and JSON snapshots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Bulk => "bulk",
        }
    }

    /// Parse a CLI label (`interactive` | `bulk`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "bulk" => Some(Priority::Bulk),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_only_explicitly() {
        let clock = VirtualClock::manual();
        assert_eq!(clock.now(), 0.0);
        clock.advance(1.5);
        assert_eq!(clock.now(), 1.5);
        clock.advance(-3.0); // ignored
        clock.advance(f64::NAN); // ignored
        assert_eq!(clock.now(), 1.5);
    }

    #[test]
    fn clones_share_the_timeline() {
        let clock = VirtualClock::manual();
        let other = clock.clone();
        clock.advance(2.0);
        assert_eq!(other.now(), 2.0);
    }

    #[test]
    fn real_clock_moves_forward() {
        let clock = VirtualClock::real();
        let a = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(clock.now() > a);
        clock.advance(100.0); // no-op on real clocks
        assert!(clock.now() < 50.0);
    }

    #[test]
    fn deadline_remaining_and_expiry() {
        let clock = VirtualClock::manual();
        let d = clock.deadline_in(2.0);
        assert_eq!(d.remaining(&clock), 2.0);
        assert!(!d.expired(&clock));
        clock.advance(2.5);
        assert_eq!(d.remaining(&clock), -0.5);
        assert!(d.expired(&clock));
    }

    #[test]
    fn negative_budget_clamps_to_now() {
        let clock = VirtualClock::manual();
        clock.advance(5.0);
        let d = clock.deadline_in(-3.0);
        assert_eq!(d.at_s, 5.0);
    }

    #[test]
    fn priority_roundtrips() {
        for p in Priority::ALL {
            assert_eq!(Priority::ALL[p.index()], p);
            assert_eq!(Priority::parse(p.label()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
        assert_eq!(Priority::default(), Priority::Interactive);
    }
}
