//! Seeded, reproducible randomness for workload jitter.
//!
//! A self-contained xoshiro256** generator seeded through splitmix64
//! (the reference seeding procedure from Blackman & Vigna). The
//! workspace builds hermetically, so this replaces the external
//! `rand`/`rand_chacha` pair; determinism is the only property the
//! simulations need, and the generator is fixed so two runs with the
//! same seed agree on every platform.

use std::ops::Range;

/// Reproducible RNG for simulations.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// Construct the standard simulation RNG from a seed.
#[must_use]
pub fn rng(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

impl SimRng {
    /// Expand a 64-bit seed into the full generator state via
    /// splitmix64, guaranteeing a non-zero state for any seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> SimRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[range.start, range.end)`.
    pub fn gen_range(&mut self, range: Range<f64>) -> f64 {
        range.start + (range.end - range.start) * self.next_f64()
    }

    /// Uniform integer draw in `[range.start, range.end)` via rejection
    /// sampling (unbiased).
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        let span = (range.end - range.start) as u64;
        assert!(span > 0, "empty range");
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let draw = self.next_u64();
            if draw < zone {
                return range.start + (draw % span) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng(9);
        let mut b = rng(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rng(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_stay_in_range() {
        let mut r = rng(1234);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&y));
        }
    }

    #[test]
    fn usize_draws_cover_the_range() {
        let mut r = rng(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range_usize(0..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = rng(2026);
        let n = 100_000;
        let mean = (0..n).map(|_| r.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
