//! Time-series tracing of simulation signals.
//!
//! Where [`crate::stats::LoadHistogram`] aggregates *how long* a signal
//! sat at each level, a [`TimeSeries`] keeps the *trajectory*: every
//! `(time, value)` change event, with change-point compression and an
//! optional resampler for plotting. The experiment drivers use it to
//! export queue-depth timelines alongside the paper's aggregate
//! figures.

/// A recorded step function: the value changes at each sample time and
/// holds until the next.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    #[must_use]
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Record that the signal became `value` at `time`. Consecutive
    /// identical values are compressed away; out-of-order times are
    /// clamped to the last recorded time.
    pub fn record(&mut self, time: f64, value: f64) {
        let time = match self.points.last() {
            Some(&(t_last, v_last)) => {
                if v_last == value {
                    return; // change-point compression
                }
                time.max(t_last)
            }
            None => time,
        };
        self.points.push((time, value));
    }

    /// The raw change points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of recorded change points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The signal's value at `time` (step semantics; the value before
    /// the first record is 0).
    #[must_use]
    pub fn at(&self, time: f64) -> f64 {
        match self.points.partition_point(|&(t, _)| t <= time) {
            0 => 0.0,
            idx => self.points[idx - 1].1,
        }
    }

    /// Resample onto `n` uniform instants across `[t0, t1]` — the shape
    /// a plotting tool wants.
    #[must_use]
    pub fn resample(&self, t0: f64, t1: f64, n: usize) -> Vec<(f64, f64)> {
        let n = n.max(2);
        (0..n)
            .map(|i| {
                let t = t0 + (t1 - t0) * i as f64 / (n - 1) as f64;
                (t, self.at(t))
            })
            .collect()
    }

    /// Time-weighted mean over `[t0, t1]`.
    #[must_use]
    pub fn mean(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return self.at(t0);
        }
        // Integrate the step function across the window.
        let mut acc = 0.0;
        let mut t_prev = t0;
        let mut v_prev = self.at(t0);
        for &(t, v) in &self.points {
            if t <= t0 {
                continue;
            }
            if t >= t1 {
                break;
            }
            acc += v_prev * (t - t_prev);
            t_prev = t;
            v_prev = v;
        }
        acc += v_prev * (t1 - t_prev);
        acc / (t1 - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_steps() {
        let mut ts = TimeSeries::new();
        ts.record(1.0, 2.0);
        ts.record(3.0, 5.0);
        assert_eq!(ts.at(0.5), 0.0);
        assert_eq!(ts.at(1.0), 2.0);
        assert_eq!(ts.at(2.9), 2.0);
        assert_eq!(ts.at(3.0), 5.0);
        assert_eq!(ts.at(100.0), 5.0);
    }

    #[test]
    fn compresses_repeated_values() {
        let mut ts = TimeSeries::new();
        ts.record(1.0, 4.0);
        ts.record(2.0, 4.0);
        ts.record(3.0, 4.0);
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn clamps_out_of_order_times() {
        let mut ts = TimeSeries::new();
        ts.record(5.0, 1.0);
        ts.record(3.0, 2.0); // goes backwards: lands at t=5
        assert_eq!(ts.points(), &[(5.0, 1.0), (5.0, 2.0)]);
        assert_eq!(ts.at(5.0), 2.0);
    }

    #[test]
    fn resamples_uniformly() {
        let mut ts = TimeSeries::new();
        ts.record(0.0, 1.0);
        ts.record(5.0, 3.0);
        let samples = ts.resample(0.0, 10.0, 5);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0], (0.0, 1.0));
        assert_eq!(samples[2], (5.0, 3.0));
        assert_eq!(samples[4], (10.0, 3.0));
    }

    #[test]
    fn mean_is_time_weighted() {
        let mut ts = TimeSeries::new();
        ts.record(0.0, 0.0);
        ts.record(2.0, 10.0);
        // Over [0, 4]: half at 0, half at 10.
        assert!((ts.mean(0.0, 4.0) - 5.0).abs() < 1e-12);
        // Degenerate window.
        assert_eq!(ts.mean(3.0, 3.0), 10.0);
    }

    #[test]
    fn empty_series_is_zero_everywhere() {
        let ts = TimeSeries::new();
        assert_eq!(ts.at(7.0), 0.0);
        assert_eq!(ts.mean(0.0, 5.0), 0.0);
        assert!(ts.is_empty());
    }
}
