//! Deterministic discrete-event simulation kernel.
//!
//! The paper evaluates its hybrid runtime on a 2011 testbed (2× Xeon
//! E5-2640 + 4× Tesla C2075). To reproduce the *timing* figures without
//! that hardware, the whole hybrid system — MPI ranks, the shared-memory
//! scheduler, the PCIe bus, per-GPU queues and contended CPU cores — is
//! replayed on a virtual clock by this engine (see `DESIGN.md`,
//! substitution table).
//!
//! Design:
//!
//! * [`Simulation<W>`] owns the virtual clock, the event queue, all
//!   resources, and a user world `W`. Events are boxed `FnOnce`
//!   continuations; everything is strictly ordered by `(time, sequence)`
//!   so runs are bit-deterministic.
//! * Resources are FCFS servers with a fixed capacity: `acquire`
//!   either grants immediately or enqueues the continuation; `release`
//!   wakes the next waiter. Each resource keeps a time-weighted
//!   [`LoadHistogram`] (the raw data behind paper Fig. 6) plus busy-time
//!   and grant counters.
//! * [`rng()`](rng) provides seeded, reproducible randomness for
//!   workload jitter.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

pub mod clock;
pub mod rng;
pub mod stats;
pub mod timeseries;

pub use clock::{Deadline, Priority, VirtualClock};
pub use rng::{rng, SimRng};
pub use stats::{LatencyHistogram, LoadHistogram};
pub use timeseries::TimeSeries;

type EventFn<W> = Box<dyn FnOnce(&mut Simulation<W>)>;

struct ScheduledEvent<W: 'static> {
    time: f64,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for ScheduledEvent<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for ScheduledEvent<W> {}
impl<W> PartialOrd for ScheduledEvent<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for ScheduledEvent<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (time, seq)
        // pops first. Times are finite by construction.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite event times")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Identifier of a resource within its simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

/// A FCFS server pool inside the simulation.
struct Resource<W: 'static> {
    capacity: usize,
    busy: usize,
    waiters: VecDeque<EventFn<W>>,
    stats: ResourceStats,
}

/// Counters and time-weighted statistics of one resource.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceStats {
    /// Total number of grants handed out.
    pub grants: u64,
    /// Integral of busy servers over time (busy-server-seconds).
    pub busy_time: f64,
    /// Time-weighted histogram of the *load* (busy + queued).
    pub load: LoadHistogram,
}

/// The simulation: virtual clock, event queue, resources and a user
/// world `W` that events may freely mutate.
///
/// ```
/// use desim::Simulation;
///
/// let mut sim = Simulation::new(0u32);
/// sim.schedule(2.0, |sim| {
///     sim.world += 1;
///     sim.schedule(3.0, |sim| sim.world += 10);
/// });
/// let end = sim.run();
/// assert_eq!((end, sim.world), (5.0, 11));
/// ```
pub struct Simulation<W: 'static> {
    now: f64,
    seq: u64,
    queue: BinaryHeap<ScheduledEvent<W>>,
    resources: Vec<Resource<W>>,
    executed: u64,
    /// User state, reachable from every event continuation.
    pub world: W,
}

impl<W: 'static> Simulation<W> {
    /// Create a simulation at virtual time 0 owning `world`.
    pub fn new(world: W) -> Simulation<W> {
        Simulation {
            now: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
            resources: Vec::new(),
            executed: 0,
            world,
        }
    }

    /// Current virtual time in seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Schedule `event` to run after `delay` seconds of virtual time.
    /// Negative or non-finite delays are clamped to zero (events never
    /// travel back in time).
    pub fn schedule<F>(&mut self, delay: f64, event: F)
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
    {
        let delay = if delay.is_finite() && delay > 0.0 {
            delay
        } else {
            0.0
        };
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at absolute virtual time `time` (clamped to now).
    pub fn schedule_at<F>(&mut self, time: f64, event: F)
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
    {
        let time = if time.is_finite() && time > self.now {
            time
        } else {
            self.now
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(ScheduledEvent {
            time,
            seq,
            run: Box::new(event),
        });
    }

    /// Create a FCFS resource with `capacity` concurrent slots
    /// (`capacity >= 1`).
    pub fn create_resource(&mut self, capacity: usize) -> ResourceId {
        self.resources.push(Resource {
            capacity: capacity.max(1),
            busy: 0,
            waiters: VecDeque::new(),
            stats: ResourceStats::default(),
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Request one slot of `id`. `granted` runs (as an event at the grant
    /// time) once a slot is available — immediately if the resource has
    /// capacity, otherwise after FIFO queueing. The caller must
    /// eventually [`release`](Simulation::release) the slot.
    pub fn acquire<F>(&mut self, id: ResourceId, granted: F)
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
    {
        let now = self.now;
        let res = &mut self.resources[id.0];
        res.stats
            .load
            .record(now, (res.busy + res.waiters.len() + 1) as u32);
        if res.busy < res.capacity {
            res.busy += 1;
            res.stats.grants += 1;
            // Run as a scheduled zero-delay event, keeping execution
            // order deterministic relative to other same-time events.
            self.schedule(0.0, granted);
        } else {
            res.waiters.push_back(Box::new(granted));
        }
    }

    /// Release one slot of `id`, waking the oldest waiter if any.
    ///
    /// # Panics
    /// Panics if the resource has no outstanding grant.
    pub fn release(&mut self, id: ResourceId) {
        let now = self.now;
        let res = &mut self.resources[id.0];
        assert!(res.busy > 0, "release without matching acquire");
        res.stats
            .load
            .record(now, (res.busy + res.waiters.len() - 1) as u32);
        if let Some(next) = res.waiters.pop_front() {
            // Slot transfers directly to the next waiter.
            res.stats.grants += 1;
            self.schedule(0.0, next);
        } else {
            res.busy -= 1;
        }
    }

    /// Current load (busy + queued) of `id`.
    #[must_use]
    pub fn load(&self, id: ResourceId) -> usize {
        let res = &self.resources[id.0];
        res.busy + res.waiters.len()
    }

    /// Statistics of `id`, finalized up to the current virtual time.
    #[must_use]
    pub fn resource_stats(&mut self, id: ResourceId) -> ResourceStats {
        let now = self.now;
        let capacity = self.resources[id.0].capacity;
        let res = &mut self.resources[id.0];
        let current = (res.busy + res.waiters.len()) as u32;
        res.stats.load.record(now, current); // flush elapsed time
        let mut stats = res.stats.clone();
        // Busy time = integral of min(load, capacity) over time.
        stats.busy_time = stats.load.busy_integral(capacity as u32);
        stats
    }

    /// Run until the event queue drains. Returns the final virtual time.
    pub fn run(&mut self) -> f64 {
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.time >= self.now, "time must be monotonic");
            self.now = ev.time;
            self.executed += 1;
            (ev.run)(self);
        }
        self.now
    }

    /// Run events with `time <= t`, then set the clock to exactly `t`.
    pub fn run_until(&mut self, t: f64) -> f64 {
        while let Some(ev) = self.queue.peek() {
            if ev.time > t {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.time;
            self.executed += 1;
            (ev.run)(self);
        }
        self.now = self.now.max(t);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(());
        for (delay, tag) in [(3.0, 'c'), (1.0, 'a'), (2.0, 'b')] {
            let log = Rc::clone(&log);
            sim.schedule(delay, move |_| log.borrow_mut().push(tag));
        }
        let end = sim.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(end, 3.0);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn same_time_events_run_in_schedule_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(());
        for tag in 0..10 {
            let log = Rc::clone(&log);
            sim.schedule(1.0, move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(0u32);
        sim.schedule(1.0, |sim| {
            sim.world += 1;
            sim.schedule(2.0, |sim| {
                sim.world += 10;
            });
        });
        let end = sim.run();
        assert_eq!(sim.world, 11);
        assert_eq!(end, 3.0);
    }

    #[test]
    fn negative_delay_clamps_to_now() {
        let mut sim = Simulation::new(Vec::<f64>::new());
        sim.schedule(5.0, |sim| {
            sim.schedule(-3.0, |sim| {
                let t = sim.now();
                sim.world.push(t);
            });
        });
        sim.run();
        assert_eq!(sim.world, vec![5.0]);
    }

    #[test]
    fn resource_grants_up_to_capacity_then_queues() {
        let mut sim = Simulation::new(Vec::<(f64, u32)>::new());
        let res = sim.create_resource(2);
        for i in 0..4u32 {
            sim.schedule(0.0, move |sim| {
                sim.acquire(res, move |sim| {
                    let t = sim.now();
                    sim.world.push((t, i));
                    // Hold the slot for 10 s.
                    sim.schedule(10.0, move |sim| sim.release(res));
                });
            });
        }
        sim.run();
        // First two granted at t=0, next two at t=10.
        assert_eq!(sim.world.len(), 4);
        assert_eq!(sim.world[0], (0.0, 0));
        assert_eq!(sim.world[1], (0.0, 1));
        assert_eq!(sim.world[2].0, 10.0);
        assert_eq!(sim.world[3].0, 10.0);
        // FIFO: waiter 2 before waiter 3.
        assert_eq!(sim.world[2].1, 2);
        assert_eq!(sim.world[3].1, 3);
    }

    #[test]
    fn load_counts_busy_plus_queued() {
        let mut sim = Simulation::new(());
        let res = sim.create_resource(1);
        for _ in 0..3 {
            sim.schedule(0.0, move |sim| {
                sim.acquire(res, move |sim| {
                    sim.schedule(5.0, move |sim| sim.release(res));
                });
            });
        }
        sim.run_until(1.0);
        assert_eq!(sim.load(res), 3); // 1 busy + 2 queued
        sim.run_until(6.0);
        assert_eq!(sim.load(res), 2);
        sim.run();
        assert_eq!(sim.load(res), 0);
    }

    #[test]
    fn stats_grants_and_busy_time() {
        let mut sim = Simulation::new(());
        let res = sim.create_resource(1);
        for _ in 0..2 {
            sim.schedule(0.0, move |sim| {
                sim.acquire(res, move |sim| {
                    sim.schedule(3.0, move |sim| sim.release(res));
                });
            });
        }
        sim.run();
        let stats = sim.resource_stats(res);
        assert_eq!(stats.grants, 2);
        // Server busy from t=0 to t=6 (two back-to-back 3 s services).
        assert!((stats.busy_time - 6.0).abs() < 1e-9, "{}", stats.busy_time);
    }

    #[test]
    #[should_panic(expected = "release without matching acquire")]
    fn release_without_acquire_panics() {
        let mut sim = Simulation::new(());
        let res = sim.create_resource(1);
        sim.schedule(0.0, move |sim| sim.release(res));
        sim.run();
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut sim = Simulation::new(0u32);
        sim.schedule(1.0, |sim| sim.world += 1);
        sim.schedule(2.0, |sim| sim.world += 1);
        sim.schedule(3.0, |sim| sim.world += 1);
        let t = sim.run_until(2.0);
        assert_eq!(t, 2.0);
        assert_eq!(sim.world, 2);
        sim.run();
        assert_eq!(sim.world, 3);
    }

    #[test]
    fn deterministic_rng() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rng(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn capacity_is_never_exceeded() {
        // Stress: many overlapping holders of a capacity-3 resource.
        struct World {
            active: usize,
            max_active: usize,
        }
        let mut sim = Simulation::new(World {
            active: 0,
            max_active: 0,
        });
        let res = sim.create_resource(3);
        let mut r = rng(7);
        for _ in 0..200 {
            let start: f64 = r.gen_range(0.0..50.0);
            let dur: f64 = r.gen_range(0.1..5.0);
            sim.schedule(start, move |sim| {
                sim.acquire(res, move |sim| {
                    sim.world.active += 1;
                    sim.world.max_active = sim.world.max_active.max(sim.world.active);
                    sim.schedule(dur, move |sim| {
                        sim.world.active -= 1;
                        sim.release(res);
                    });
                });
            });
        }
        sim.run();
        assert!(sim.world.max_active <= 3, "{}", sim.world.max_active);
        assert_eq!(sim.world.active, 0);
    }
}
