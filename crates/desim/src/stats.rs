//! Time-weighted statistics and latency histograms.

/// A time-weighted histogram of an integer-valued signal (e.g. the load
/// of a GPU task queue): for each observed level it accumulates the
/// virtual time the signal spent at that level.
///
/// Paper Fig. 6 ("the time percentage of load 0..6") is exactly this
/// histogram, normalized, for GPU device 0.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadHistogram {
    /// `durations[level]` = seconds spent at `level`.
    durations: Vec<f64>,
    last_time: f64,
    current: u32,
    started: bool,
}

impl LoadHistogram {
    /// An empty histogram (signal starts at level 0 at time 0).
    #[must_use]
    pub fn new() -> LoadHistogram {
        LoadHistogram::default()
    }

    /// Record that the signal changed to `level` at time `now`,
    /// attributing the elapsed time since the previous change to the
    /// previous level. Out-of-order times are clamped (no negative
    /// durations).
    pub fn record(&mut self, now: f64, level: u32) {
        if !self.started {
            self.started = true;
            self.last_time = now;
            self.current = level;
            return;
        }
        let dt = (now - self.last_time).max(0.0);
        if dt > 0.0 {
            let idx = self.current as usize;
            if self.durations.len() <= idx {
                self.durations.resize(idx + 1, 0.0);
            }
            self.durations[idx] += dt;
        }
        self.last_time = now;
        self.current = level;
    }

    /// Seconds spent at `level`.
    #[must_use]
    pub fn time_at(&self, level: u32) -> f64 {
        self.durations.get(level as usize).copied().unwrap_or(0.0)
    }

    /// Total observed time.
    #[must_use]
    pub fn total_time(&self) -> f64 {
        self.durations.iter().sum()
    }

    /// Fraction (percent) of the total time spent at `level`.
    /// Returns 0 when nothing has been observed.
    #[must_use]
    pub fn percent_at(&self, level: u32) -> f64 {
        let total = self.total_time();
        if total <= 0.0 {
            0.0
        } else {
            100.0 * self.time_at(level) / total
        }
    }

    /// Fraction (percent) of the total time spent at levels `>= level` —
    /// the paper's Table I "ratio of GPU load >= 3" column.
    #[must_use]
    pub fn percent_at_least(&self, level: u32) -> f64 {
        let total = self.total_time();
        if total <= 0.0 {
            return 0.0;
        }
        let above: f64 = self.durations.iter().skip(level as usize).sum();
        100.0 * above / total
    }

    /// Time-average of the signal.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let total = self.total_time();
        if total <= 0.0 {
            return 0.0;
        }
        let weighted: f64 = self
            .durations
            .iter()
            .enumerate()
            .map(|(level, &t)| level as f64 * t)
            .sum();
        weighted / total
    }

    /// Highest level with nonzero duration.
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.durations
            .iter()
            .rposition(|&t| t > 0.0)
            .map_or(0, |i| i as u32)
    }

    /// Integral over time of `min(level, cap)` — the busy-server-seconds
    /// of a capacity-`cap` FCFS resource whose load this histogram
    /// tracks.
    #[must_use]
    pub fn busy_integral(&self, cap: u32) -> f64 {
        self.durations
            .iter()
            .enumerate()
            .map(|(level, &t)| (level as u32).min(cap) as f64 * t)
            .sum()
    }
}

/// A log-bucketed latency histogram with quantile readout.
///
/// The service tier reports per-stage p50/p95/p99 latencies; exact
/// order statistics would need every sample retained, so samples land
/// in geometric buckets instead — `BUCKETS_PER_OCTAVE` buckets per
/// doubling of latency, covering 1 ns to ~4.7 hours. The relative
/// quantile error is bounded by one bucket width (`2^(1/8) - 1 ≈ 9 %`),
/// constant memory, O(1) record, and deterministic for a deterministic
/// sample stream (no sampling, no decay).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_s: f64,
    min_s: f64,
    max_s: f64,
}

/// Buckets per factor-of-two of latency.
const BUCKETS_PER_OCTAVE: usize = 8;
/// Smallest representable latency (seconds): one nanosecond.
const MIN_LATENCY_S: f64 = 1e-9;
/// Octaves covered above [`MIN_LATENCY_S`] (2^44 ns ≈ 4.9 h).
const OCTAVES: usize = 44;

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS_PER_OCTAVE * OCTAVES],
            count: 0,
            sum_s: 0.0,
            min_s: f64::INFINITY,
            max_s: 0.0,
        }
    }

    fn bucket_of(latency_s: f64) -> usize {
        let clamped = latency_s.max(MIN_LATENCY_S);
        let octaves = (clamped / MIN_LATENCY_S).log2();
        let idx = (octaves * BUCKETS_PER_OCTAVE as f64).floor() as usize;
        idx.min(BUCKETS_PER_OCTAVE * OCTAVES - 1)
    }

    /// Lower edge of bucket `i` in seconds.
    fn bucket_lo(i: usize) -> f64 {
        MIN_LATENCY_S * 2f64.powf(i as f64 / BUCKETS_PER_OCTAVE as f64)
    }

    /// Record one latency sample (seconds; non-finite and negative
    /// samples clamp to the smallest bucket).
    pub fn record(&mut self, latency_s: f64) {
        let v = if latency_s.is_finite() && latency_s > 0.0 {
            latency_s
        } else {
            MIN_LATENCY_S
        };
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum_s += v;
        self.min_s = self.min_s.min(v);
        self.max_s = self.max_s.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples (seconds); 0 when empty.
    #[must_use]
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Smallest recorded sample (seconds); 0 when empty.
    #[must_use]
    pub fn min_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_s
        }
    }

    /// Largest recorded sample (seconds); 0 when empty.
    #[must_use]
    pub fn max_s(&self) -> f64 {
        self.max_s
    }

    /// The `q`-quantile (`0 <= q <= 1`) in seconds, accurate to one
    /// bucket width (~9 % relative). Returns 0 when empty.
    #[must_use]
    pub fn quantile_s(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based ceil like classic
        // nearest-rank quantiles.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Geometric midpoint of the bucket, clamped to the
                // observed extremes so p0/p100 stay honest.
                let mid = Self::bucket_lo(i) * 2f64.powf(0.5 / BUCKETS_PER_OCTAVE as f64);
                return mid.clamp(self.min_s, self.max_s);
            }
        }
        self.max_s
    }

    /// Merge `other` into `self` (the combined sample stream).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_s += other.sum_s;
        if other.count > 0 {
            self.min_s = self.min_s.min(other.min_s);
            self.max_s = self.max_s.max(other.max_s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_time_to_previous_level() {
        let mut h = LoadHistogram::new();
        h.record(0.0, 2);
        h.record(3.0, 5); // 3 s at level 2
        h.record(4.0, 0); // 1 s at level 5
        h.record(10.0, 0); // 6 s at level 0
        assert_eq!(h.time_at(2), 3.0);
        assert_eq!(h.time_at(5), 1.0);
        assert_eq!(h.time_at(0), 6.0);
        assert_eq!(h.total_time(), 10.0);
    }

    #[test]
    fn percentages_sum_to_100() {
        let mut h = LoadHistogram::new();
        h.record(0.0, 0);
        h.record(1.0, 1);
        h.record(4.0, 2);
        h.record(10.0, 0);
        let sum: f64 = (0..=h.max_level()).map(|l| h.percent_at(l)).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn percent_at_least_is_complementary() {
        let mut h = LoadHistogram::new();
        h.record(0.0, 1);
        h.record(5.0, 3);
        h.record(10.0, 0);
        // 5 s at 1, 5 s at 3.
        assert!((h.percent_at_least(0) - 100.0).abs() < 1e-9);
        assert!((h.percent_at_least(2) - 50.0).abs() < 1e-9);
        assert!((h.percent_at_least(4) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn mean_is_time_weighted() {
        let mut h = LoadHistogram::new();
        h.record(0.0, 4);
        h.record(1.0, 0); // 1 s at 4
        h.record(4.0, 0); // 3 s at 0
        assert!((h.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_integral_caps_levels() {
        let mut h = LoadHistogram::new();
        h.record(0.0, 5);
        h.record(2.0, 1); // 2 s at load 5
        h.record(3.0, 0); // 1 s at load 1
                          // cap 2: min(5,2)*2 + min(1,2)*1 = 5.
        assert!((h.busy_integral(2) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LoadHistogram::new();
        assert_eq!(h.total_time(), 0.0);
        assert_eq!(h.percent_at(0), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_level(), 0);
    }

    #[test]
    fn out_of_order_records_are_clamped() {
        let mut h = LoadHistogram::new();
        h.record(5.0, 1);
        h.record(3.0, 2); // time went backwards: contributes 0
        assert_eq!(h.total_time(), 0.0);
        h.record(6.0, 0); // 3 s at level 2 (from t=3 clamped to 3->6)
        assert!(h.total_time() > 0.0);
    }

    #[test]
    fn latency_quantiles_within_bucket_tolerance() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 µs uniformly: p50 ≈ 500 µs, p99 ≈ 990 µs.
        for i in 1..=1000 {
            h.record(i as f64 * 1e-6);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_s(0.50);
        let p99 = h.quantile_s(0.99);
        assert!((p50 / 500e-6 - 1.0).abs() < 0.10, "p50 {p50:e}");
        assert!((p99 / 990e-6 - 1.0).abs() < 0.10, "p99 {p99:e}");
        assert!(p50 <= h.quantile_s(0.95));
        assert!(h.quantile_s(0.95) <= p99);
        assert!(h.quantile_s(1.0) <= h.max_s());
        assert!(h.quantile_s(0.0) >= h.min_s());
    }

    #[test]
    fn latency_mean_and_extremes_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(1e-3);
        h.record(3e-3);
        assert!((h.mean_s() - 2e-3).abs() < 1e-12);
        assert_eq!(h.min_s(), 1e-3);
        assert_eq!(h.max_s(), 3e-3);
    }

    #[test]
    fn latency_empty_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_s(0.5), 0.0);
        assert_eq!(h.mean_s(), 0.0);
        assert_eq!(h.min_s(), 0.0);
    }

    #[test]
    fn latency_degenerate_samples_clamp() {
        let mut h = LatencyHistogram::new();
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert!(h.quantile_s(0.5) <= 2e-9, "clamped to the 1 ns bucket");
    }

    #[test]
    fn latency_merge_matches_combined_stream() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for i in 1..=100 {
            let v = i as f64 * 1e-5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.counts, combined.counts);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min_s(), combined.min_s());
        assert_eq!(a.max_s(), combined.max_s());
        // Sums accumulate in a different order across the two streams,
        // so they agree to round-off, not bitwise.
        assert!((a.mean_s() - combined.mean_s()).abs() < 1e-12);
    }
}
