//! Time-weighted statistics.

/// A time-weighted histogram of an integer-valued signal (e.g. the load
/// of a GPU task queue): for each observed level it accumulates the
/// virtual time the signal spent at that level.
///
/// Paper Fig. 6 ("the time percentage of load 0..6") is exactly this
/// histogram, normalized, for GPU device 0.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadHistogram {
    /// `durations[level]` = seconds spent at `level`.
    durations: Vec<f64>,
    last_time: f64,
    current: u32,
    started: bool,
}

impl LoadHistogram {
    /// An empty histogram (signal starts at level 0 at time 0).
    #[must_use]
    pub fn new() -> LoadHistogram {
        LoadHistogram::default()
    }

    /// Record that the signal changed to `level` at time `now`,
    /// attributing the elapsed time since the previous change to the
    /// previous level. Out-of-order times are clamped (no negative
    /// durations).
    pub fn record(&mut self, now: f64, level: u32) {
        if !self.started {
            self.started = true;
            self.last_time = now;
            self.current = level;
            return;
        }
        let dt = (now - self.last_time).max(0.0);
        if dt > 0.0 {
            let idx = self.current as usize;
            if self.durations.len() <= idx {
                self.durations.resize(idx + 1, 0.0);
            }
            self.durations[idx] += dt;
        }
        self.last_time = now;
        self.current = level;
    }

    /// Seconds spent at `level`.
    #[must_use]
    pub fn time_at(&self, level: u32) -> f64 {
        self.durations.get(level as usize).copied().unwrap_or(0.0)
    }

    /// Total observed time.
    #[must_use]
    pub fn total_time(&self) -> f64 {
        self.durations.iter().sum()
    }

    /// Fraction (percent) of the total time spent at `level`.
    /// Returns 0 when nothing has been observed.
    #[must_use]
    pub fn percent_at(&self, level: u32) -> f64 {
        let total = self.total_time();
        if total <= 0.0 {
            0.0
        } else {
            100.0 * self.time_at(level) / total
        }
    }

    /// Fraction (percent) of the total time spent at levels `>= level` —
    /// the paper's Table I "ratio of GPU load >= 3" column.
    #[must_use]
    pub fn percent_at_least(&self, level: u32) -> f64 {
        let total = self.total_time();
        if total <= 0.0 {
            return 0.0;
        }
        let above: f64 = self.durations.iter().skip(level as usize).sum();
        100.0 * above / total
    }

    /// Time-average of the signal.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let total = self.total_time();
        if total <= 0.0 {
            return 0.0;
        }
        let weighted: f64 = self
            .durations
            .iter()
            .enumerate()
            .map(|(level, &t)| level as f64 * t)
            .sum();
        weighted / total
    }

    /// Highest level with nonzero duration.
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.durations
            .iter()
            .rposition(|&t| t > 0.0)
            .map_or(0, |i| i as u32)
    }

    /// Integral over time of `min(level, cap)` — the busy-server-seconds
    /// of a capacity-`cap` FCFS resource whose load this histogram
    /// tracks.
    #[must_use]
    pub fn busy_integral(&self, cap: u32) -> f64 {
        self.durations
            .iter()
            .enumerate()
            .map(|(level, &t)| (level as u32).min(cap) as f64 * t)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_time_to_previous_level() {
        let mut h = LoadHistogram::new();
        h.record(0.0, 2);
        h.record(3.0, 5); // 3 s at level 2
        h.record(4.0, 0); // 1 s at level 5
        h.record(10.0, 0); // 6 s at level 0
        assert_eq!(h.time_at(2), 3.0);
        assert_eq!(h.time_at(5), 1.0);
        assert_eq!(h.time_at(0), 6.0);
        assert_eq!(h.total_time(), 10.0);
    }

    #[test]
    fn percentages_sum_to_100() {
        let mut h = LoadHistogram::new();
        h.record(0.0, 0);
        h.record(1.0, 1);
        h.record(4.0, 2);
        h.record(10.0, 0);
        let sum: f64 = (0..=h.max_level()).map(|l| h.percent_at(l)).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn percent_at_least_is_complementary() {
        let mut h = LoadHistogram::new();
        h.record(0.0, 1);
        h.record(5.0, 3);
        h.record(10.0, 0);
        // 5 s at 1, 5 s at 3.
        assert!((h.percent_at_least(0) - 100.0).abs() < 1e-9);
        assert!((h.percent_at_least(2) - 50.0).abs() < 1e-9);
        assert!((h.percent_at_least(4) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn mean_is_time_weighted() {
        let mut h = LoadHistogram::new();
        h.record(0.0, 4);
        h.record(1.0, 0); // 1 s at 4
        h.record(4.0, 0); // 3 s at 0
        assert!((h.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_integral_caps_levels() {
        let mut h = LoadHistogram::new();
        h.record(0.0, 5);
        h.record(2.0, 1); // 2 s at load 5
        h.record(3.0, 0); // 1 s at load 1
                          // cap 2: min(5,2)*2 + min(1,2)*1 = 5.
        assert!((h.busy_integral(2) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LoadHistogram::new();
        assert_eq!(h.total_time(), 0.0);
        assert_eq!(h.percent_at(0), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_level(), 0);
    }

    #[test]
    fn out_of_order_records_are_clamped() {
        let mut h = LoadHistogram::new();
        h.record(5.0, 1);
        h.record(3.0, 2); // time went backwards: contributes 0
        assert_eq!(h.total_time(), 0.0);
        h.record(6.0, 0); // 3 s at level 2 (from t=3 clamped to 3->6)
        assert!(h.total_time() > 0.0);
    }
}
