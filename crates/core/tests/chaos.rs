//! Chaos tests: the engine under deterministic fault injection.
//!
//! The contract being proven: **faults change placement and timing,
//! never numerics or completeness**. With the deterministic kernel and
//! a shared bin rule, every ion partial must stay bitwise identical to
//! the fault-free [`SerialCalculator`] reference no matter which
//! injected launch refusals, kernel panics, stalls, DMA failures or
//! sticky device losses fire — and every submitted task must be
//! answered, with zero leaked scheduler grants, even while devices
//! quarantine and retries bounce between lanes mid-shutdown.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

use gpu_sim::{DeviceRule, FaultKind, FaultOp, FaultPlan, Precision};
use hybrid_sched::{HealthConfig, HealthState};
use hybrid_spectral::engine::{Engine, EngineConfig, IonJob, IonOutcome};
use hybrid_spectral::resilience::ResilienceConfig;
use hybrid_spectral::SchedPolicy;
use quadrature::MathMode;
use rrc_spectral::{EnergyGrid, GridPoint, Integrator, SerialCalculator};

fn point() -> GridPoint {
    GridPoint {
        temperature_k: 1.0e7,
        density_cm3: 1.0,
        time_s: 0.0,
        index: 0,
    }
}

fn chaos_config(gpus: usize, resilience: ResilienceConfig) -> EngineConfig {
    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig {
        max_z: 6,
        ..atomdb::DatabaseConfig::default()
    });
    EngineConfig {
        db: Arc::new(db),
        workers: 3,
        gpus,
        max_queue_len: 4,
        policy: SchedPolicy::CostAware,
        gpu_rule: DeviceRule::Simpson { panels: 64 },
        gpu_precision: Precision::Double,
        cpu_integrator: Integrator::Simpson { panels: 64 },
        fused: true,
        async_window: 1,
        queue_depth: 8,
        deterministic_kernel: true,
        math: MathMode::Exact,
        pack_threshold: 0,
        pack_max: 8,
        resilience,
        tuning: hybrid_sched::TuningConfig::default(),
    }
}

/// Fast ladder settings so tests spend microseconds, not milliseconds,
/// in backoff sleeps.
fn fast_ladder() -> ResilienceConfig {
    ResilienceConfig {
        backoff: Duration::from_micros(20),
        backoff_cap: Duration::from_micros(200),
        ..ResilienceConfig::default()
    }
}

/// Submit every ion of the engine's database `waves` times and collect
/// all outcomes, sorted (wave, ion) for deterministic comparison.
fn run_all_ions(engine: &Engine, grid: &EnergyGrid, waves: u64) -> Vec<IonOutcome> {
    let bins = Arc::new(grid.bin_pairs());
    let ions = engine.config().db.ions().len();
    let (tx, rx) = channel();
    for wave in 0..waves {
        for ion_index in 0..ions {
            let levels = engine.config().db.levels_by_index(ion_index).len();
            engine
                .submit(IonJob {
                    ion_index,
                    level_range: 0..levels,
                    point: point(),
                    grid: grid.clone(),
                    bins: Arc::clone(&bins),
                    tag: wave,
                    deadline: f64::INFINITY,
                    reply: tx.clone(),
                })
                .ok()
                .expect("engine accepts while live");
        }
    }
    drop(tx);
    let mut outcomes: Vec<IonOutcome> = rx.iter().collect();
    outcomes.sort_by_key(|o| (o.tag, o.ion_index));
    outcomes
}

fn serial_reference(config: &EngineConfig, grid: &EnergyGrid) -> Vec<Vec<f64>> {
    let serial = SerialCalculator::new(
        (*config.db).clone(),
        grid.clone(),
        Integrator::Simpson { panels: 64 },
    );
    (0..config.db.ions().len())
        .map(|i| serial.ion_spectrum(i, &point()).bins().to_vec())
        .collect()
}

fn assert_bitwise(outcomes: &[IonOutcome], reference: &[Vec<f64>], label: &str) {
    for outcome in outcomes {
        let expect = &reference[outcome.ion_index];
        assert_eq!(outcome.partial.len(), expect.len(), "{label}");
        for (bin, (&got, &want)) in outcome.partial.iter().zip(expect).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{label}: ion {} bin {bin} diverged ({got:e} vs {want:e}, path {:?})",
                outcome.ion_index,
                outcome.path,
            );
        }
    }
}

#[test]
fn random_fault_schedules_preserve_bitwise_parity_and_accounting() {
    // Property sweep: seeded random fault schedules × device counts ×
    // policies. Whatever fires, every task completes, every partial is
    // bitwise the serial reference, and scheduler accounting drains to
    // exactly zero.
    let grid = EnergyGrid::linear(50.0, 2000.0, 32);
    for seed in [11u64, 29] {
        for gpus in [0usize, 1, 2] {
            for policy in [SchedPolicy::CostAware, SchedPolicy::PaperCount] {
                let mut resilience = fast_ladder();
                resilience.faults = (0..gpus)
                    .map(|d| {
                        FaultPlan::seeded(seed.wrapping_mul(31).wrapping_add(d as u64))
                            .launch_error_rate(0.15)
                            .kernel_panic_rate(0.10)
                            .dma_error_rate(0.10)
                            .stall_rate(0.05, 1)
                    })
                    .collect();
                let mut cfg = chaos_config(gpus, resilience);
                cfg.policy = policy;
                let engine = Engine::start(cfg);
                let ions = engine.config().db.ions().len();
                let reference = serial_reference(engine.config(), &grid);
                let label = format!("seed={seed} gpus={gpus} policy={policy:?}");

                let outcomes = run_all_ions(&engine, &grid, 2);
                assert_eq!(outcomes.len(), 2 * ions, "{label}: every task answered");
                assert_bitwise(&outcomes, &reference, &label);

                let snap = engine.scheduler_snapshot();
                assert!(
                    snap.loads.iter().all(|&l| l == 0),
                    "{label}: loads drained, got {:?}",
                    snap.loads
                );
                assert!(
                    snap.weighted_loads.iter().all(|&w| w == 0),
                    "{label}: weighted backlog drained, got {:?}",
                    snap.weighted_loads
                );
                let report = engine.shutdown();
                assert_eq!(report.leaked_grants, 0, "{label}");
                assert_eq!(
                    report.gpu_tasks + report.cpu_tasks,
                    2 * ions as u64,
                    "{label}: completion accounting"
                );
                let retry_bound = u64::from(ResilienceConfig::default().max_retries) + 1;
                assert!(
                    report.max_task_attempts <= retry_bound,
                    "{label}: attempts {} exceed bound {retry_bound}",
                    report.max_task_attempts
                );
                assert_eq!(report.worker_panics, 0, "{label}: no engine thread died");
            }
        }
    }
}

#[test]
fn kernel_panic_mid_run_completes_without_deadlock() {
    // Satellite regression: a panic inside a device kernel must become
    // a task failure (retried, then recovered), never a poisoned lock
    // or a wedged stream — the run completes and stays bitwise clean.
    let mut resilience = fast_ladder();
    resilience.faults = vec![FaultPlan::default()
        .fire_at(FaultOp::Kernel, 0, FaultKind::KernelPanic)
        .fire_at(FaultOp::Kernel, 3, FaultKind::KernelPanic)];
    let engine = Engine::start(chaos_config(1, resilience));
    let grid = EnergyGrid::linear(50.0, 2000.0, 32);
    let ions = engine.config().db.ions().len();
    let reference = serial_reference(engine.config(), &grid);

    let outcomes = run_all_ions(&engine, &grid, 2);
    assert_eq!(outcomes.len(), 2 * ions);
    assert_bitwise(&outcomes, &reference, "kernel panic");

    let report = engine.shutdown();
    assert!(
        report.device_faults[0].kernel_panics >= 2,
        "both indexed panics fired: {:?}",
        report.device_faults[0]
    );
    assert!(report.task_faults >= 2, "failures rode the ladder");
    assert_eq!(report.leaked_grants, 0);
    assert_eq!(report.worker_panics, 0);
}

#[test]
fn sticky_loss_of_one_of_two_devices_completes_everything() {
    // The headline degradation gate: one of two devices dies for good
    // mid-run. Its tasks reassign to the surviving device (or the host
    // path), the health ladder quarantines it permanently, and every
    // task still answers with bitwise-clean partials.
    let mut resilience = fast_ladder();
    resilience.faults = vec![FaultPlan::default(), FaultPlan::default().lose_device_at(4)];
    let engine = Engine::start(chaos_config(2, resilience));
    let grid = EnergyGrid::linear(50.0, 2000.0, 32);
    let ions = engine.config().db.ions().len();
    let reference = serial_reference(engine.config(), &grid);

    let outcomes = run_all_ions(&engine, &grid, 3);
    assert_eq!(outcomes.len(), 3 * ions, "100% completion under loss");
    assert_bitwise(&outcomes, &reference, "sticky loss");

    let report = engine.shutdown();
    assert_eq!(report.leaked_grants, 0);
    assert!(report.device_faults[1].lost, "device 1 was lost");
    assert_eq!(
        report.device_health[1],
        HealthState::Quarantined,
        "a lost device stays quarantined"
    );
    assert_eq!(report.worker_panics, 0);
}

#[test]
fn shutdown_under_fault_does_not_hang() {
    // Satellite regression: close-and-drain while a device is sick and
    // retries are in flight. The drain must finish — a wedged pump or
    // a stranded retry would hang this forever, so run the shutdown on
    // a watchdog thread.
    let mut resilience = fast_ladder();
    resilience.health = HealthConfig {
        probation_cooldown: Duration::from_millis(1),
        ..HealthConfig::default()
    };
    resilience.faults = vec![
        FaultPlan::seeded(7)
            .launch_error_rate(0.5)
            .kernel_panic_rate(0.2)
            .dma_error_rate(0.2),
        FaultPlan::default().lose_device_at(2),
    ];
    let engine = Engine::start(chaos_config(2, resilience));
    let grid = EnergyGrid::linear(50.0, 2000.0, 24);
    let ions = engine.config().db.ions().len();
    let bins = Arc::new(grid.bin_pairs());
    let (tx, rx) = channel();
    for ion_index in 0..ions {
        let levels = engine.config().db.levels_by_index(ion_index).len();
        engine
            .submit(IonJob {
                ion_index,
                level_range: 0..levels,
                point: point(),
                grid: grid.clone(),
                bins: Arc::clone(&bins),
                tag: 0,
                deadline: f64::INFINITY,
                reply: tx.clone(),
            })
            .ok()
            .expect("live");
    }
    drop(tx);
    // Shut down immediately — jobs are still queued, staged, launching
    // and failing right now.
    let (done_tx, done_rx) = channel();
    std::thread::spawn(move || {
        let report = engine.shutdown();
        let _ = done_tx.send(report);
    });
    let report = done_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("shutdown under fault must complete, not hang");
    assert_eq!(report.leaked_grants, 0);
    // Every job was answered or is answerable: drain the reply stream.
    let answered = rx.iter().count();
    assert_eq!(answered, ions, "no task stranded by shutdown");
}

#[test]
fn quarantine_and_probation_cycle_recovers_a_flapping_device() {
    // Device 0 fails its first launches back-to-back, quarantines, sits
    // out the cooldown, earns its way back through probation, and
    // serves cleanly afterwards.
    let mut resilience = fast_ladder();
    resilience.health = HealthConfig {
        degraded_after: 1,
        quarantine_after: 2,
        probation_cooldown: Duration::from_millis(2),
        probation_successes: 1,
        ..HealthConfig::default()
    };
    resilience.faults = vec![
        FaultPlan::default()
            .fire_at(FaultOp::Launch, 0, FaultKind::LaunchError)
            .fire_at(FaultOp::Launch, 1, FaultKind::LaunchError),
        FaultPlan::default(),
    ];
    let engine = Engine::start(chaos_config(2, resilience));
    let grid = EnergyGrid::linear(50.0, 2000.0, 24);
    let ions = engine.config().db.ions().len();
    let mut total = 0usize;
    for _ in 0..4 {
        total += run_all_ions(&engine, &grid, 1).len();
        // Let the probation cooldown lapse between waves.
        std::thread::sleep(Duration::from_millis(4));
    }
    assert_eq!(total, 4 * ions);
    let report = engine.shutdown();
    assert!(report.quarantines >= 1, "device 0 quarantined: {report:?}");
    assert!(report.probations >= 1, "probation probe admitted");
    assert_eq!(report.leaked_grants, 0);
}
